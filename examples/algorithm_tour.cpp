//===- examples/algorithm_tour.cpp - All nine slicers, side by side -----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Runs every implemented algorithm over the paper's Figure 8-a program
/// and prints a comparison table: slice size, whether the slice is
/// behaviour-preserving on a random input batch, and how it relates to
/// the Figure 7 reference. A compact demonstration of the paper's whole
/// argument — who is precise, who is conservative, who is wrong.
///
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <random>

using namespace jslice;

int main() {
  const PaperExample &Ex = paperExample("fig8a");
  ErrorOr<Analysis> A = Analysis::fromSource(Ex.Source);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.diags().str().c_str());
    return 1;
  }
  ResolvedCriterion RC = *resolveCriterion(*A, Ex.Crit);
  SliceResult Reference = sliceAgrawal(*A, RC);

  std::printf("program: %s\ncriterion: (%s, line %u)\n\n",
              Ex.Caption.c_str(), Ex.Crit.Vars.front().c_str(),
              Ex.Crit.Line);

  const SliceAlgorithm All[] = {
      SliceAlgorithm::Conventional,   SliceAlgorithm::Agrawal,
      SliceAlgorithm::AgrawalLst,     SliceAlgorithm::Structured,
      SliceAlgorithm::Conservative,   SliceAlgorithm::BallHorwitz,
      SliceAlgorithm::Lyle,           SliceAlgorithm::Gallagher,
      SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser,
  };

  std::printf("%-20s %6s %10s %12s  %s\n", "algorithm", "lines",
              "vs fig-7", "behaviour", "line set");
  std::mt19937_64 Rng(2026);

  for (SliceAlgorithm Algorithm : All) {
    SliceResult R = computeSlice(*A, RC, Algorithm);
    std::set<unsigned> Lines = R.lineSet(A->cfg());

    // Relation to the Figure 7 reference slice.
    bool Subset =
        std::includes(Reference.Nodes.begin(), Reference.Nodes.end(),
                      R.Nodes.begin(), R.Nodes.end());
    bool Superset =
        std::includes(R.Nodes.begin(), R.Nodes.end(),
                      Reference.Nodes.begin(), Reference.Nodes.end());
    const char *Relation = Subset && Superset ? "equal"
                           : Superset         ? "superset"
                           : Subset           ? "SUBSET"
                                              : "mixed";

    // Behavioural check over a batch of random inputs.
    std::set<unsigned> Kept = R.Nodes;
    Kept.insert(A->cfg().exit());
    bool Preserves = true;
    for (unsigned Trial = 0; Trial != 32; ++Trial) {
      ExecOptions Opts;
      unsigned Len = static_cast<unsigned>(Rng() % 7);
      for (unsigned I = 0; I != Len; ++I)
        Opts.Input.push_back(static_cast<int64_t>(Rng() % 19) - 9);
      ExecResult Orig = runOriginal(*A, RC.Node, RC.VarIds, Opts);
      if (!Orig.Completed)
        continue;
      ExecResult Sliced = runProjection(*A, Kept, RC.Node, RC.VarIds, Opts);
      if (!Sliced.Completed || Sliced.CriterionValues != Orig.CriterionValues)
        Preserves = false;
    }

    std::printf("%-20s %6zu %10s %12s  %s\n", algorithmName(Algorithm),
                Lines.size(), Relation,
                Preserves ? "preserved" : "BROKEN",
                formatLineSet(Lines).c_str());
  }

  std::printf("\nexpected per the paper: conventional/gallagher/"
              "jiang-zhou-robson break behaviour on this program; "
              "agrawal == ball-horwitz; lyle is a superset.\n");
  return 0;
}
