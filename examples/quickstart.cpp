//===- examples/quickstart.cpp - Five-minute tour of the jslice API -----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Parses a small Mini-C program with a goto, computes its slice with
/// the paper's Figure 7 algorithm, and shows why the conventional slice
/// is wrong. Build and run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"

#include <cstdio>

using namespace jslice;

int main() {
  // The paper's Figure 3-a: a goto-structured summation loop.
  const char *Source = "sum = 0;\n"
                       "positives = 0;\n"
                       "L3: if (eof()) goto L14;\n"
                       "read(x);\n"
                       "if (x > 0) goto L8;\n"
                       "sum = sum + f1(x);\n"
                       "goto L13;\n"
                       "L8: positives = positives + 1;\n"
                       "if (x % 2 != 0) goto L12;\n"
                       "sum = sum + f2(x);\n"
                       "goto L13;\n"
                       "L12: sum = sum + f3(x);\n"
                       "L13: goto L3;\n"
                       "L14: write(sum);\n"
                       "write(positives);\n";

  // 1. Parse + semantic checks + CFG/PDG/tree construction, in one call.
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.diags().str().c_str());
    return 1;
  }

  // 2. Name the criterion the way the paper does: a variable at a line.
  Criterion Crit(15, {"positives"});

  // 3. Slice. Conventional slicing drops every unconditional jump...
  SliceResult Conventional =
      *computeSlice(*A, Crit, SliceAlgorithm::Conventional);
  std::printf("== conventional slice (misses the jumps) ==\n%s\n",
              printSlice(*A, Conventional).c_str());

  // ...while the paper's Figure 7 algorithm adds the required ones
  // (lines 7 and 13) and re-associates the orphaned label L14.
  SliceResult Correct = *computeSlice(*A, Crit, SliceAlgorithm::Agrawal);
  std::printf("== Figure 7 slice ==\n%s\n",
              printSlice(*A, Correct).c_str());
  std::printf("lines: %s, %u productive traversal(s)\n",
              summarizeSlice(*A, Correct).c_str(),
              Correct.ProductiveTraversals);

  // 4. Slices are executable: run both against the same input and watch
  // the conventional slice compute the wrong count.
  ResolvedCriterion RC = *resolveCriterion(*A, Crit);
  ExecOptions Opts;
  Opts.Input = {4, -2, 9, 3}; // three positives
  ExecResult Orig = runOriginal(*A, RC.Node, RC.VarIds, Opts);

  auto Project = [&](const SliceResult &R) {
    std::set<unsigned> Kept = R.Nodes;
    Kept.insert(A->cfg().exit());
    return runProjection(*A, Kept, RC.Node, RC.VarIds, Opts);
  };
  ExecResult Bad = Project(Conventional);
  ExecResult Good = Project(Correct);

  auto Show = [](const char *Name, const ExecResult &R) {
    std::printf("%-22s positives at line 15 =", Name);
    for (int64_t V : R.CriterionValues)
      std::printf(" %lld", static_cast<long long>(V));
    std::printf("\n");
  };
  Show("original program:", Orig);
  Show("figure-7 slice:", Good);
  Show("conventional slice:", Bad);
  return 0;
}
