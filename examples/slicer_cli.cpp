//===- examples/slicer_cli.cpp - Command-line slicer --------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// A small command-line front end:
///
///   slicer_cli FILE --line N [--vars a,b] [--algo NAME] [--all]
///              [--all-criteria] [--threads N] [--fallback]
///              [--max-steps N] [--deadline-ms N]
///
///   --line N         criterion line (required unless --all-criteria)
///   --vars a,b       criterion variables (default: those used on the line)
///   --algo NAME      conventional | agrawal-fig7 | agrawal-fig7-lst |
///                    structured-fig12 | conservative-fig13 | ball-horwitz |
///                    lyle | gallagher | jiang-zhou-robson | weiser
///                    (default agrawal-fig7)
///   --all            print every algorithm's line set instead of one slice
///   --all-criteria   slice every statement line through the batch engine
///                    (shared closure cache); prints one summary per line
///   --threads N      worker threads for --all-criteria (default: the
///                    JSLICE_THREADS env var, else hardware concurrency)
///   --fallback       on budget exhaustion, walk the service's
///                    precision-degradation ladder (requested algorithm,
///                    then conservative-fig13 where sound, then lyle)
///                    under progressively smaller budgets; the tier that
///                    served is reported on stderr
///   --max-steps N    resource budget: analysis/slicing checkpoint limit
///   --deadline-ms N  resource budget: soft wall-clock deadline
///
/// Exit-code taxonomy:
///   0  success
///   1  analysis error: unreadable file, malformed program, criterion
///      that resolves to nothing, or an exhausted resource budget —
///      a diagnostic is printed to stderr
///   2  usage error: unknown flag, missing/malformed flag argument,
///      missing FILE or --line, empty --vars list
///   3  served degraded: --fallback produced a sound slice, but from a
///      cheaper (more conservative) tier than the one requested
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"
#include "service/Ladder.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace jslice;

namespace {

enum ExitCode {
  ExitOk = 0,
  ExitAnalysisError = 1,
  ExitUsage = 2,
  ExitDegraded = 3,
};

const SliceAlgorithm AllAlgorithms[] = {
    SliceAlgorithm::Conventional,   SliceAlgorithm::Agrawal,
    SliceAlgorithm::AgrawalLst,     SliceAlgorithm::Structured,
    SliceAlgorithm::Conservative,   SliceAlgorithm::BallHorwitz,
    SliceAlgorithm::Lyle,           SliceAlgorithm::Gallagher,
    SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser,
};

std::optional<SliceAlgorithm> parseAlgorithm(const std::string &Name) {
  for (SliceAlgorithm Algorithm : AllAlgorithms)
    if (Name == algorithmName(Algorithm))
      return Algorithm;
  return std::nullopt;
}

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s FILE --line N [--vars a,b] [--algo NAME] [--all]\n"
               "       [--all-criteria] [--threads N] [--fallback]\n"
               "       [--max-steps N] [--deadline-ms N]\n"
               "exit codes: 0 ok, 1 analysis error, 2 usage error, "
               "3 served degraded\n",
               Prog);
  return ExitUsage;
}

/// Strict unsigned parse; nullopt on garbage, sign, or overflow.
std::optional<uint64_t> parseCount(const char *Text) {
  if (!*Text)
    return std::nullopt;
  uint64_t Value = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(*P - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(*P - '0');
  }
  return Value;
}

} // namespace

int main(int argc, char **argv) {
  std::string File;
  unsigned Line = 0;
  std::vector<std::string> Vars;
  SliceAlgorithm Algorithm = SliceAlgorithm::Agrawal;
  bool All = false;
  bool AllCriteria = false;
  bool Fallback = false;
  unsigned Threads = 0; // 0 = BatchSlicer::defaultThreads().
  Budget B;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };

    if (Arg == "--line") {
      const char *Value = NextValue("--line");
      if (!Value)
        return usage(argv[0]);
      std::optional<uint64_t> Parsed = parseCount(Value);
      if (!Parsed || *Parsed == 0 || *Parsed > 0xffffffffull) {
        std::fprintf(stderr, "error: --line expects a positive line number, "
                             "got '%s'\n",
                     Value);
        return usage(argv[0]);
      }
      Line = static_cast<unsigned>(*Parsed);
    } else if (Arg == "--vars") {
      const char *Value = NextValue("--vars");
      if (!Value)
        return usage(argv[0]);
      std::stringstream Stream(Value);
      std::string Var;
      Vars.clear();
      while (std::getline(Stream, Var, ','))
        if (!Var.empty())
          Vars.push_back(Var);
      if (Vars.empty()) {
        std::fprintf(stderr, "error: --vars requires at least one "
                             "variable name\n");
        return usage(argv[0]);
      }
    } else if (Arg == "--algo") {
      const char *Value = NextValue("--algo");
      if (!Value)
        return usage(argv[0]);
      std::optional<SliceAlgorithm> Parsed = parseAlgorithm(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", Value);
        return usage(argv[0]);
      }
      Algorithm = *Parsed;
    } else if (Arg == "--max-steps") {
      const char *Value = NextValue("--max-steps");
      if (!Value)
        return usage(argv[0]);
      std::optional<uint64_t> Parsed = parseCount(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: --max-steps expects a number, got "
                             "'%s'\n",
                     Value);
        return usage(argv[0]);
      }
      B.MaxSteps = *Parsed;
    } else if (Arg == "--deadline-ms") {
      const char *Value = NextValue("--deadline-ms");
      if (!Value)
        return usage(argv[0]);
      std::optional<uint64_t> Parsed = parseCount(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: --deadline-ms expects a number, got "
                             "'%s'\n",
                     Value);
        return usage(argv[0]);
      }
      B.DeadlineMs = *Parsed;
    } else if (Arg == "--all") {
      All = true;
    } else if (Arg == "--fallback") {
      Fallback = true;
    } else if (Arg == "--all-criteria") {
      AllCriteria = true;
    } else if (Arg == "--threads") {
      const char *Value = NextValue("--threads");
      if (!Value)
        return usage(argv[0]);
      std::optional<uint64_t> Parsed = parseCount(Value);
      if (!Parsed || *Parsed == 0 || *Parsed > 1024) {
        std::fprintf(stderr, "error: --threads expects a worker count in "
                             "[1, 1024], got '%s'\n",
                     Value);
        return usage(argv[0]);
      }
      Threads = static_cast<unsigned>(*Parsed);
    } else if (Arg.size() > 1 && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    } else if (File.empty()) {
      File = Arg;
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s' (input file "
                           "already given: %s)\n",
                   Arg.c_str(), File.c_str());
      return usage(argv[0]);
    }
  }
  if (File.empty()) {
    std::fprintf(stderr, "error: no input file\n");
    return usage(argv[0]);
  }
  if (Line == 0 && !AllCriteria) {
    std::fprintf(stderr, "error: --line is required (or use --all-criteria)\n");
    return usage(argv[0]);
  }
  if (AllCriteria && (Line != 0 || All)) {
    std::fprintf(stderr, "error: --all-criteria replaces --line/--all\n");
    return usage(argv[0]);
  }
  if (Fallback && (All || AllCriteria)) {
    std::fprintf(stderr,
                 "error: --fallback applies to a single slice only\n");
    return usage(argv[0]);
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return ExitAnalysisError;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  if (Fallback) {
    // The ladder runs the whole pipeline per rung itself.
    LadderOptions Opts;
    Opts.B = B;
    LadderResult Res =
        runLadder(Buffer.str(), Criterion(Line, Vars), Algorithm, Opts);
    for (const LadderAttempt &At : Res.Attempts)
      if (!At.Served)
        std::fprintf(stderr, "# %s: %s\n", algorithmName(At.Tier),
                     At.Skipped ? At.SkipReason.c_str() : At.Trip.c_str());
    if (!Res.Ok) {
      std::fprintf(stderr, "%s\n", Res.Diags.str().c_str());
      return ExitAnalysisError;
    }
    std::printf("%s", printSlice(*Res.A, Res.Result).c_str());
    std::fprintf(stderr, "# served by %s%s: %s\n", algorithmName(Res.Served),
                 Res.Degraded ? " (degraded)" : "",
                 summarizeSlice(*Res.A, Res.Result).c_str());
    return Res.Degraded ? ExitDegraded : ExitOk;
  }

  ErrorOr<Analysis> A = Analysis::fromSource(Buffer.str(), B);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.diags().str().c_str());
    return ExitAnalysisError;
  }

  if (AllCriteria) {
    BatchSlicer Batch(*A);
    BatchOptions Opts;
    Opts.Algorithm = Algorithm;
    Opts.Threads = Threads;
    std::vector<Criterion> Crits = allLineCriteria(*A);
    std::vector<BatchEntry> Entries = Batch.runAll(Crits, Opts);
    bool AnyFailed = false;
    for (const BatchEntry &Entry : Entries) {
      if (Entry.Ok) {
        std::printf("line %-4u %s\n", Entry.Crit.Line,
                    summarizeSlice(*A, Entry.Result).c_str());
      } else {
        AnyFailed = true;
        std::fprintf(stderr, "line %u: %s\n", Entry.Crit.Line,
                     Entry.Diags.str().c_str());
      }
    }
    return AnyFailed ? ExitAnalysisError : ExitOk;
  }

  Criterion Crit(Line, Vars);
  if (All) {
    for (SliceAlgorithm Algo : AllAlgorithms) {
      ErrorOr<SliceResult> R = computeSlice(*A, Crit, Algo);
      if (!R) {
        std::fprintf(stderr, "%s\n", R.diags().str().c_str());
        return ExitAnalysisError;
      }
      std::printf("%-20s %s\n", algorithmName(Algo),
                  summarizeSlice(*A, *R).c_str());
    }
    return ExitOk;
  }

  ErrorOr<SliceResult> R = computeSlice(*A, Crit, Algorithm);
  if (!R) {
    std::fprintf(stderr, "%s\n", R.diags().str().c_str());
    return ExitAnalysisError;
  }
  std::printf("%s", printSlice(*A, *R).c_str());
  std::fprintf(stderr, "# %s: %s\n", algorithmName(Algorithm),
               summarizeSlice(*A, *R).c_str());
  return ExitOk;
}
