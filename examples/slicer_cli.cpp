//===- examples/slicer_cli.cpp - Command-line slicer --------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// A small command-line front end:
///
///   slicer_cli FILE --line N [--vars a,b] [--algo NAME] [--all]
///
///   --line N     criterion line (required)
///   --vars a,b   criterion variables (default: those used on the line)
///   --algo NAME  conventional | agrawal-fig7 | agrawal-fig7-lst |
///                structured-fig12 | conservative-fig13 | ball-horwitz |
///                lyle | gallagher | jiang-zhou-robson | weiser
///                (default agrawal-fig7)
///   --all        print every algorithm's line set instead of one slice
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace jslice;

namespace {

const SliceAlgorithm AllAlgorithms[] = {
    SliceAlgorithm::Conventional,   SliceAlgorithm::Agrawal,
    SliceAlgorithm::AgrawalLst,     SliceAlgorithm::Structured,
    SliceAlgorithm::Conservative,   SliceAlgorithm::BallHorwitz,
    SliceAlgorithm::Lyle,           SliceAlgorithm::Gallagher,
    SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser,
};

std::optional<SliceAlgorithm> parseAlgorithm(const std::string &Name) {
  for (SliceAlgorithm Algorithm : AllAlgorithms)
    if (Name == algorithmName(Algorithm))
      return Algorithm;
  return std::nullopt;
}

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s FILE --line N [--vars a,b] [--algo NAME] [--all]\n",
               Prog);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string File;
  unsigned Line = 0;
  std::vector<std::string> Vars;
  SliceAlgorithm Algorithm = SliceAlgorithm::Agrawal;
  bool All = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--line" && I + 1 < argc) {
      Line = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "--vars" && I + 1 < argc) {
      std::stringstream Stream(argv[++I]);
      std::string Var;
      while (std::getline(Stream, Var, ','))
        if (!Var.empty())
          Vars.push_back(Var);
    } else if (Arg == "--algo" && I + 1 < argc) {
      std::optional<SliceAlgorithm> Parsed = parseAlgorithm(argv[++I]);
      if (!Parsed) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", argv[I]);
        return usage(argv[0]);
      }
      Algorithm = *Parsed;
    } else if (Arg == "--all") {
      All = true;
    } else if (Arg[0] != '-' && File.empty()) {
      File = Arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (File.empty() || Line == 0)
    return usage(argv[0]);

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ErrorOr<Analysis> A = Analysis::fromSource(Buffer.str());
  if (!A) {
    std::fprintf(stderr, "%s\n", A.diags().str().c_str());
    return 1;
  }

  Criterion Crit(Line, Vars);
  if (All) {
    for (SliceAlgorithm Algo : AllAlgorithms) {
      ErrorOr<SliceResult> R = computeSlice(*A, Crit, Algo);
      if (!R) {
        std::fprintf(stderr, "%s\n", R.diags().str().c_str());
        return 1;
      }
      std::printf("%-20s %s\n", algorithmName(Algo),
                  summarizeSlice(*A, *R).c_str());
    }
    return 0;
  }

  ErrorOr<SliceResult> R = computeSlice(*A, Crit, Algorithm);
  if (!R) {
    std::fprintf(stderr, "%s\n", R.diags().str().c_str());
    return 1;
  }
  std::printf("%s", printSlice(*A, *R).c_str());
  std::fprintf(stderr, "# %s: %s\n", algorithmName(Algorithm),
               summarizeSlice(*A, *R).c_str());
  return 0;
}
