//===- examples/graphviz_export.cpp - Dump the paper's five graphs ------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Writes Graphviz DOT files for every structure the paper draws for a
/// program — flowgraph, postdominator tree, control dependence graph,
/// lexical successor tree, and program dependence graph — with the
/// slice's nodes shaded like the paper's figures.
///
///   ./build/examples/graphviz_export [outdir]
///   dot -Tpng outdir/fig3a_flowgraph.dot -o flowgraph.png
///
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace jslice;

namespace {

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
  std::printf("wrote %s\n", Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string OutDir = argc > 1 ? argv[1] : ".";

  for (const char *Name : {"fig1a", "fig3a", "fig5a"}) {
    const PaperExample &Ex = paperExample(Name);
    ErrorOr<Analysis> A = Analysis::fromSource(Ex.Source);
    if (!A) {
      std::fprintf(stderr, "%s\n", A.diags().str().c_str());
      return 1;
    }
    SliceResult Slice = *computeSlice(*A, Ex.Crit, SliceAlgorithm::Agrawal);

    NodeLabelFn Label = [&](unsigned Node) { return A->cfg().labelOf(Node); };
    std::function<bool(unsigned)> InSlice = [&](unsigned Node) {
      return Slice.contains(Node);
    };
    std::string Prefix = OutDir + "/" + Name + "_";

    writeFile(Prefix + "flowgraph.dot",
              toDot(A->cfg().graph(), std::string(Name) + " flowgraph",
                    Label, &InSlice));
    writeFile(Prefix + "postdom.dot",
              domTreeToDot(A->pdt(), std::string(Name) + " postdominators",
                           Label));
    writeFile(Prefix + "controldep.dot",
              toDot(A->pdg().Control, std::string(Name) + " control deps",
                    Label, &InSlice));
    // The LST renders through its parent vector as a Digraph.
    Digraph LstEdges(A->cfg().numNodes());
    for (unsigned Node = 0; Node != A->cfg().numNodes(); ++Node)
      if (A->lst().parent(Node) >= 0)
        LstEdges.addEdge(static_cast<unsigned>(A->lst().parent(Node)), Node);
    writeFile(Prefix + "lst.dot",
              toDot(LstEdges, std::string(Name) + " lexical successors",
                    Label, &InSlice));
    writeFile(Prefix + "pdg.dot",
              toDot(A->pdg().combined(), std::string(Name) + " PDG", Label,
                    &InSlice));
  }
  return 0;
}
