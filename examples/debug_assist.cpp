//===- examples/debug_assist.cpp - Slicing as a debugging aid -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The paper's introduction motivates slicing with debugging: when a
/// variable holds a wrong value at some output, the slice on that
/// (variable, line) is exactly the code that could have produced it —
/// *provided the slicer understands jumps*.
///
/// This example stages a realistic hunt: a billing routine written with
/// early-exit style (`continue` guards) computes a wrong total because
/// one guard continues past the accumulation. The slice on the bad
/// output contains the guilty guard; everything it omits is provably
/// irrelevant and need not be read at all.
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"

#include <cstdio>

using namespace jslice;

int main() {
  // An order-processing loop: per record, read a price and a quantity
  // code; bulk orders (code 2) should get a rebate but the guard on
  // line 7 skips *all* further processing for them — the bug.
  const char *Source = "total = 0;\n"
                       "rebates = 0;\n"
                       "while (!eof()) {\n"
                       "read(price);\n"
                       "read(code);\n"
                       "if (price <= 0) {\n"
                       "continue;\n"
                       "}\n"
                       "if (code == 2) {\n"
                       "rebates = rebates + 1;\n"
                       "continue;\n"
                       "}\n"
                       "total = total + price;\n"
                       "}\n"
                       "write(total);\n"
                       "write(rebates);\n";

  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.diags().str().c_str());
    return 1;
  }

  // Symptom: total at line 15 is too small whenever bulk orders occur.
  Criterion Symptom(15, {"total"});
  SliceResult Slice = *computeSlice(*A, Symptom, SliceAlgorithm::Agrawal);

  std::printf("symptom: wrong value of 'total' printed on line 15\n\n");
  std::printf("== slice on (total, line 15) ==\n%s\n",
              printSlice(*A, Slice).c_str());

  std::set<unsigned> Lines = Slice.lineSet(A->cfg());
  std::printf("the slicer keeps %zu of 16 lines; line 10 (the rebate "
              "counter)\nis *not* among them, so the fault must be in "
              "the kept control\nstructure — and indeed line 11's "
              "continue is in the slice because\nit decides whether "
              "line 13 accumulates.\n\n",
              Lines.size());

  // Show the conventional slicer would have hidden the culprit.
  SliceResult Naive = *computeSlice(*A, Symptom,
                                    SliceAlgorithm::Conventional);
  bool NaiveHasContinue = Naive.lineSet(A->cfg()).count(11) != 0;
  bool JumpAwareHasContinue = Lines.count(11) != 0;
  std::printf("continue on line 11 in conventional slice: %s\n",
              NaiveHasContinue ? "yes" : "no (bug hidden!)");
  std::printf("continue on line 11 in figure-7 slice:     %s\n",
              JumpAwareHasContinue ? "yes (bug visible)" : "no");

  // Confirm behaviourally: replay a failing input on the slice alone.
  ResolvedCriterion RC = *resolveCriterion(*A, Symptom);
  ExecOptions Opts;
  Opts.Input = {10, 1, 25, 2, 5, 1}; // the bulk order (25, 2) is lost
  ExecResult Orig = runOriginal(*A, RC.Node, RC.VarIds, Opts);
  std::set<unsigned> Kept = Slice.Nodes;
  Kept.insert(A->cfg().exit());
  ExecResult Replay = runProjection(*A, Kept, RC.Node, RC.VarIds, Opts);
  std::printf("\nreplay on the slice reproduces the faulty total: "
              "original=%lld slice=%lld (expected 40, rebate bug "
              "loses the 25)\n",
              static_cast<long long>(Orig.CriterionValues.at(0)),
              static_cast<long long>(Replay.CriterionValues.at(0)));
  return 0;
}
