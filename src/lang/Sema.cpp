//===- lang/Sema.cpp - Mini-C semantic analysis ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/AstWalk.h"

#include <unordered_map>

using namespace jslice;

namespace {

/// One pass over the statement tree carrying the enclosing-construct
/// context needed to bind break/continue, plus the global label table.
class SemaPass {
public:
  SemaPass(Program &Prog, DiagList &Diags) : Prog(Prog), Diags(Diags) {}

  bool run() {
    collectLabels();
    for (const Stmt *Top : Prog.topLevel())
      visit(Top, /*Parent=*/nullptr);
    resolveGotos();
    return !HadError;
  }

private:
  void error(SourceLoc Loc, std::string Message) {
    Diags.report(Loc, std::move(Message));
    HadError = true;
  }

  void collectLabels() {
    for (const Stmt *Top : Prog.topLevel()) {
      walkStmtTree(Top, [&](const Stmt *S) {
        if (!S->hasLabel())
          return;
        auto [It, Inserted] = Labels.emplace(S->getLabel(), S);
        if (!Inserted)
          error(S->getLoc(), "duplicate label '" + S->getLabel() + "'");
        (void)It;
      });
    }
  }

  void resolveGotos() {
    for (const Stmt *Top : Prog.topLevel()) {
      walkStmtTree(Top, [&](const Stmt *S) {
        const auto *Goto = dyn_cast<GotoStmt>(S);
        if (!Goto)
          return;
        auto It = Labels.find(Goto->getTargetLabel());
        if (It == Labels.end()) {
          error(Goto->getLoc(),
                "goto to undefined label '" + Goto->getTargetLabel() + "'");
          return;
        }
        // Resolution mutates analysis-result fields of otherwise-immutable
        // nodes; Sema is the single sanctioned writer.
        const_cast<GotoStmt *>(Goto)->setTarget(It->second);
      });
    }
  }

  void visit(const Stmt *S, const Stmt *Parent) {
    const_cast<Stmt *>(S)->setParent(Parent);

    switch (S->getKind()) {
    case StmtKind::Break: {
      if (Breakables.empty()) {
        error(S->getLoc(), "'break' outside of a loop or switch");
        return;
      }
      const_cast<BreakStmt *>(cast<BreakStmt>(S))
          ->setTarget(Breakables.back());
      return;
    }
    case StmtKind::Continue: {
      if (Loops.empty()) {
        error(S->getLoc(), "'continue' outside of a loop");
        return;
      }
      const_cast<ContinueStmt *>(cast<ContinueStmt>(S))
          ->setTarget(Loops.back());
      return;
    }
    case StmtKind::While:
    case StmtKind::DoWhile:
    case StmtKind::For:
      Breakables.push_back(S);
      Loops.push_back(S);
      forEachChildStmt(S, [&](const Stmt *Child) { visit(Child, S); });
      Loops.pop_back();
      Breakables.pop_back();
      return;
    case StmtKind::Switch:
      Breakables.push_back(S);
      forEachChildStmt(S, [&](const Stmt *Child) { visit(Child, S); });
      Breakables.pop_back();
      return;
    default:
      forEachChildStmt(S, [&](const Stmt *Child) { visit(Child, S); });
      return;
    }
  }

  Program &Prog;
  DiagList &Diags;
  std::unordered_map<std::string, const Stmt *> Labels;
  std::vector<const Stmt *> Breakables;
  std::vector<const Stmt *> Loops;
  bool HadError = false;
};

} // namespace

bool jslice::runSema(Program &Prog, DiagList &Diags) {
  return SemaPass(Prog, Diags).run();
}
