//===- lang/AstWalk.cpp - Generic AST traversal helpers --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/AstWalk.h"

using namespace jslice;

void jslice::forEachChildStmt(const Stmt *S,
                              const std::function<void(const Stmt *)> &Fn) {
  switch (S->getKind()) {
  case StmtKind::Assign:
  case StmtKind::Read:
  case StmtKind::Write:
  case StmtKind::Goto:
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Return:
  case StmtKind::Empty:
    return;

  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    Fn(If->getThen());
    if (If->hasElse())
      Fn(If->getElse());
    return;
  }
  case StmtKind::While:
    Fn(cast<WhileStmt>(S)->getBody());
    return;
  case StmtKind::DoWhile:
    Fn(cast<DoWhileStmt>(S)->getBody());
    return;
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit())
      Fn(For->getInit());
    if (For->getStep())
      Fn(For->getStep());
    Fn(For->getBody());
    return;
  }
  case StmtKind::Switch:
    for (const CaseClause &Clause : cast<SwitchStmt>(S)->getClauses())
      for (const Stmt *Child : Clause.Body)
        Fn(Child);
    return;
  case StmtKind::Block:
    for (const Stmt *Child : cast<BlockStmt>(S)->getBody())
      Fn(Child);
    return;
  }
}

void jslice::walkStmtTree(const Stmt *S,
                          const std::function<void(const Stmt *)> &Fn) {
  Fn(S);
  forEachChildStmt(S, [&](const Stmt *Child) { walkStmtTree(Child, Fn); });
}

void jslice::forEachStmtExpr(const Stmt *S,
                             const std::function<void(const Expr *)> &Fn) {
  switch (S->getKind()) {
  case StmtKind::Assign:
    Fn(cast<AssignStmt>(S)->getValue());
    return;
  case StmtKind::Write:
    Fn(cast<WriteStmt>(S)->getValue());
    return;
  case StmtKind::If:
    Fn(cast<IfStmt>(S)->getCond());
    return;
  case StmtKind::While:
    Fn(cast<WhileStmt>(S)->getCond());
    return;
  case StmtKind::DoWhile:
    Fn(cast<DoWhileStmt>(S)->getCond());
    return;
  case StmtKind::For:
    if (const Expr *Cond = cast<ForStmt>(S)->getCond())
      Fn(Cond);
    return;
  case StmtKind::Switch:
    Fn(cast<SwitchStmt>(S)->getCond());
    return;
  case StmtKind::Return:
    if (const Expr *Value = cast<ReturnStmt>(S)->getValue())
      Fn(Value);
    return;
  case StmtKind::Read:
  case StmtKind::Goto:
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Block:
  case StmtKind::Empty:
    return;
  }
}

void jslice::walkExprTree(const Expr *E,
                          const std::function<void(const Expr *)> &Fn) {
  Fn(E);
  switch (E->getKind()) {
  case ExprKind::IntLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::Unary:
    walkExprTree(cast<UnaryExpr>(E)->getOperand(), Fn);
    return;
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    walkExprTree(Bin->getLHS(), Fn);
    walkExprTree(Bin->getRHS(), Fn);
    return;
  }
  case ExprKind::Call:
    for (const Expr *Arg : cast<CallExpr>(E)->getArgs())
      walkExprTree(Arg, Fn);
    return;
  }
}

void jslice::collectUsedVars(const Stmt *S, std::set<std::string> &Out) {
  forEachStmtExpr(S, [&](const Expr *Root) {
    walkExprTree(Root, [&](const Expr *E) {
      if (const auto *Var = dyn_cast<VarRefExpr>(E))
        Out.insert(Var->getName());
    });
  });
}

std::set<std::string> jslice::collectProgramVars(const Program &Prog) {
  std::set<std::string> Vars;
  for (const Stmt *Top : Prog.topLevel()) {
    walkStmtTree(Top, [&](const Stmt *S) {
      collectUsedVars(S, Vars);
      if (const auto *Assign = dyn_cast<AssignStmt>(S))
        Vars.insert(Assign->getTarget());
      else if (const auto *Read = dyn_cast<ReadStmt>(S))
        Vars.insert(Read->getTarget());
    });
  }
  return Vars;
}
