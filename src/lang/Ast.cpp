//===- lang/Ast.cpp - Mini-C abstract syntax trees -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace jslice;

const char *jslice::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}
