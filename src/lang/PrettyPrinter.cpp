//===- lang/PrettyPrinter.cpp - Mini-C printing ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/PrettyPrinter.h"

#include "lang/AstWalk.h"
#include "support/StringUtils.h"

using namespace jslice;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

/// Binding strength; larger binds tighter.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Or:
    return 1;
  case BinaryOp::And:
    return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return 6;
  }
  return 0;
}

constexpr int UnaryPrecedence = 7;

std::string printExprPrec(const Expr *E, int ParentPrec) {
  switch (E->getKind()) {
  case ExprKind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->getValue());
  case ExprKind::VarRef:
    return cast<VarRefExpr>(E)->getName();
  case ExprKind::Unary: {
    const auto *Un = cast<UnaryExpr>(E);
    std::string Inner = printExprPrec(Un->getOperand(), UnaryPrecedence);
    std::string Text =
        (Un->getOp() == UnaryOp::Neg ? "-" : "!") + Inner;
    return ParentPrec > UnaryPrecedence ? "(" + Text + ")" : Text;
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    int Prec = precedenceOf(Bin->getOp());
    // Left associativity: the right child needs strictly tighter binding.
    std::string Text = printExprPrec(Bin->getLHS(), Prec) + " " +
                       binaryOpSpelling(Bin->getOp()) + " " +
                       printExprPrec(Bin->getRHS(), Prec + 1);
    return Prec < ParentPrec ? "(" + Text + ")" : Text;
  }
  case ExprKind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::vector<std::string> Args;
    for (const Expr *Arg : Call->getArgs())
      Args.push_back(printExprPrec(Arg, 0));
    return Call->getCallee() + "(" + join(Args, ", ") + ")";
  }
  }
  return "?";
}

} // namespace

std::string jslice::printExpr(const Expr *E) { return printExprPrec(E, 0); }

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

namespace {

class StmtPrinter {
public:
  StmtPrinter(const PrintOptions &Opts) : Opts(Opts) {}

  std::string run(const Program &Prog) {
    printStmtList(Prog.topLevel(), 0);
    printExitLabels();
    return std::move(Out);
  }

private:
  bool isKept(const Stmt *S) const {
    return !Opts.KeepIds || Opts.KeepIds->count(S->getId());
  }

  bool anyKept(const Stmt *S) const {
    if (isKept(S))
      return true;
    bool Found = false;
    forEachChildStmt(S, [&](const Stmt *Child) {
      if (!Found && anyKept(Child))
        Found = true;
    });
    return Found;
  }

  /// The `NN: ` prefix (paper style) plus labels for this statement.
  std::string prefixFor(const Stmt *S) const {
    std::string Prefix;
    if (Opts.ShowLineNumbers && S->getLoc().isValid())
      Prefix += std::to_string(S->getLoc().Line) + ": ";
    if (Opts.ExtraLabels) {
      auto It = Opts.ExtraLabels->find(S->getId());
      if (It != Opts.ExtraLabels->end())
        for (const std::string &Label : It->second)
          Prefix += Label + ": ";
    }
    if (S->hasLabel() &&
        !(Opts.SuppressLabels && Opts.SuppressLabels->count(S->getLabel())))
      Prefix += S->getLabel() + ": ";
    return Prefix;
  }

  void line(unsigned Indent, const std::string &Text) {
    Out += indent(Indent) + Text + "\n";
  }

  /// Prints the statements of \p List that survive the projection,
  /// hoisting kept descendants of dropped constructs to this level.
  void printStmtList(const std::vector<const Stmt *> &List, unsigned Indent) {
    for (const Stmt *S : List)
      printMaybeDropped(S, Indent);
  }

  void printMaybeDropped(const Stmt *S, unsigned Indent) {
    // Blocks are pure syntax: keep-sets never contain them, so route
    // through their children directly.
    if (const auto *Block = dyn_cast<BlockStmt>(S)) {
      printStmtList(Block->getBody(), Indent);
      return;
    }
    if (isKept(S)) {
      printStmt(S, Indent);
      return;
    }
    if (!anyKept(S))
      return;
    // Dropped construct with kept descendants (occurs when printing
    // conventional slices of jump programs): hoist them, in order.
    forEachChildStmt(S, [&](const Stmt *Child) {
      printMaybeDropped(Child, Indent);
    });
  }

  /// Prints a construct body as a braced, filtered statement list.
  void printBody(const Stmt *Body, unsigned Indent) {
    Out.erase(Out.end() - 1); // Replace trailing newline with " {".
    Out += " {\n";
    printMaybeDropped(Body, Indent + 1);
    line(Indent, "}");
  }

  void printStmt(const Stmt *S, unsigned Indent) {
    std::string Prefix = prefixFor(S);
    switch (S->getKind()) {
    case StmtKind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      line(Indent, Prefix + Assign->getTarget() + " = " +
                       printExpr(Assign->getValue()) + ";");
      return;
    }
    case StmtKind::Read:
      line(Indent, Prefix + "read(" + cast<ReadStmt>(S)->getTarget() + ");");
      return;
    case StmtKind::Write:
      line(Indent,
           Prefix + "write(" + printExpr(cast<WriteStmt>(S)->getValue()) +
               ");");
      return;
    case StmtKind::Goto:
      line(Indent,
           Prefix + "goto " + cast<GotoStmt>(S)->getTargetLabel() + ";");
      return;
    case StmtKind::Break:
      line(Indent, Prefix + "break;");
      return;
    case StmtKind::Continue:
      line(Indent, Prefix + "continue;");
      return;
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      line(Indent, Prefix + (Ret->hasValue()
                                 ? "return " + printExpr(Ret->getValue()) + ";"
                                 : "return;"));
      return;
    }
    case StmtKind::Empty:
      line(Indent, Prefix + ";");
      return;
    case StmtKind::Block:
      // Reached only for explicitly printed blocks (no projection).
      line(Indent, Prefix + "{");
      printStmtList(cast<BlockStmt>(S)->getBody(), Indent + 1);
      line(Indent, "}");
      return;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      line(Indent, Prefix + "if (" + printExpr(If->getCond()) + ")");
      printBody(If->getThen(), Indent);
      if (If->hasElse() && (!Opts.KeepIds || anyKept(If->getElse()))) {
        line(Indent, "else");
        printBody(If->getElse(), Indent);
      }
      return;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      line(Indent, Prefix + "while (" + printExpr(While->getCond()) + ")");
      printBody(While->getBody(), Indent);
      return;
    }
    case StmtKind::DoWhile: {
      const auto *Do = cast<DoWhileStmt>(S);
      line(Indent, Prefix + "do");
      printBody(Do->getBody(), Indent);
      Out.erase(Out.end() - 1);
      Out += " while (" + printExpr(Do->getCond()) + ");\n";
      return;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      std::string Header = Prefix + "for (";
      if (For->getInit())
        Header += printForClause(For->getInit());
      Header += "; ";
      if (For->getCond())
        Header += printExpr(For->getCond());
      Header += "; ";
      if (For->getStep())
        Header += printForClause(For->getStep());
      Header += ")";
      line(Indent, Header);
      printBody(For->getBody(), Indent);
      return;
    }
    case StmtKind::Switch: {
      const auto *Switch = cast<SwitchStmt>(S);
      line(Indent,
           Prefix + "switch (" + printExpr(Switch->getCond()) + ") {");
      for (const CaseClause &Clause : Switch->getClauses()) {
        bool ClauseHasContent = false;
        for (const Stmt *Child : Clause.Body)
          if (anyKept(Child))
            ClauseHasContent = true;
        if (Opts.KeepIds && !ClauseHasContent)
          continue;
        line(Indent + 1, Clause.IsDefault
                             ? "default:"
                             : "case " + std::to_string(Clause.Value) + ":");
        for (const Stmt *Child : Clause.Body)
          printMaybeDropped(Child, Indent + 2);
      }
      line(Indent, "}");
      return;
    }
    }
  }

  /// Renders a for-header clause without its trailing ';'.
  std::string printForClause(const Stmt *S) {
    if (const auto *Assign = dyn_cast<AssignStmt>(S))
      return Assign->getTarget() + " = " + printExpr(Assign->getValue());
    if (const auto *Read = dyn_cast<ReadStmt>(S))
      return "read(" + Read->getTarget() + ")";
    assert(false && "for-clause must be an assignment or read");
    return ";";
  }

  void printExitLabels() {
    if (!Opts.ExtraLabels)
      return;
    auto It = Opts.ExtraLabels->find(PrintOptions::ExitLabelKey);
    if (It == Opts.ExtraLabels->end())
      return;
    // `L: ;` — a bare trailing `L:` would not re-parse (labels require
    // a statement; the empty statement is the "end of program" carrier).
    for (const std::string &Label : It->second)
      line(0, Label + ": ;");
  }

  const PrintOptions &Opts;
  std::string Out;
};

} // namespace

std::string jslice::printProgram(const Program &Prog,
                                 const PrintOptions &Opts) {
  return StmtPrinter(Opts).run(Prog);
}
