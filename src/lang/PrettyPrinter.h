//===- lang/PrettyPrinter.h - Mini-C printing ------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical-form printing of Mini-C programs and of *projections* of
/// programs onto a statement subset — the textual form of a slice, in the
/// style of the paper's figures (optionally with `NN:` line prefixes).
///
/// Projection printing is presentation only: behavioural questions about
/// a slice are answered by the projection interpreter (interp/), never by
/// re-parsing printed text. When a kept statement's enclosing construct
/// was dropped, the statement is hoisted to the enclosing level, which is
/// exactly how the paper's figures render conventional (incorrect) slices
/// of goto programs.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_PRETTYPRINTER_H
#define JSLICE_LANG_PRETTYPRINTER_H

#include "lang/Ast.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Options for printProgram.
struct PrintOptions {
  /// Prefix each simple statement / predicate with its original source
  /// line number, paper style ("7:  positives = positives + 1;").
  bool ShowLineNumbers = false;

  /// When non-null, print only statements whose id is in the set (plus
  /// the construct syntax of kept compound statements). Null prints all.
  const std::set<unsigned> *KeepIds = nullptr;

  /// Labels to print before a statement *in addition to* its own label:
  /// statement id -> label names. This is how the slicer's re-associated
  /// labels (paper, Figure 7, final step) reach the output; a label with
  /// no statement left to attach to (re-associated to program exit) is
  /// keyed by `ExitLabelKey`.
  const std::map<unsigned, std::vector<std::string>> *ExtraLabels = nullptr;

  /// Label names whose *original* definition must not be printed. A
  /// re-associated label moved somewhere else; printing it at its old
  /// statement too would define it twice, making the projection
  /// unparseable (a labeled compound can stay in the slice while the
  /// label moved off its entry node).
  const std::set<std::string> *SuppressLabels = nullptr;

  /// Pseudo statement id for labels re-associated past the last printed
  /// statement (they render as a trailing `L: ;` line — the empty
  /// statement keeps the projection re-parseable).
  static constexpr unsigned ExitLabelKey = ~0u;
};

/// Renders a whole program (or its projection; see PrintOptions).
std::string printProgram(const Program &Prog, const PrintOptions &Opts = {});

/// Renders one expression in canonical form (minimal parentheses,
/// explicit where precedence requires them).
std::string printExpr(const Expr *E);

} // namespace jslice

#endif // JSLICE_LANG_PRETTYPRINTER_H
