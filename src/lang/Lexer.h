//===- lang/Lexer.h - Mini-C lexer -----------------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-pass lexer for Mini-C. Supports `//` and `/* */` comments and
/// tracks 1-based line/column positions; statement line numbers are how
/// slicing criteria are named, so positions matter.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_LEXER_H
#define JSLICE_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace jslice {

/// Lexes a complete Mini-C buffer into a token vector ending in Eof.
class Lexer {
public:
  explicit Lexer(std::string Source) : Source(std::move(Source)) {}

  /// Lexes the whole buffer. On malformed input (stray characters,
  /// unterminated comments) diagnostics are produced and an Error token
  /// marks each bad position, but lexing continues so the parser can see
  /// the Eof.
  std::vector<Token> lexAll(DiagList &Diags);

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc here() const { return SourceLoc(Line, Col); }

  void skipTrivia(DiagList &Diags);
  Token lexToken(DiagList &Diags);
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace jslice

#endif // JSLICE_LANG_LEXER_H
