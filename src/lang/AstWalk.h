//===- lang/AstWalk.h - Generic AST traversal helpers ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small traversal helpers shared by semantic analysis, the CFG builder,
/// dataflow def/use extraction, and the printers.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_ASTWALK_H
#define JSLICE_LANG_ASTWALK_H

#include "lang/Ast.h"

#include <functional>
#include <set>
#include <string>

namespace jslice {

/// Invokes \p Fn on every direct child statement of \p S, in lexical
/// order (then-branch before else-branch, for-init before for-step, case
/// clauses in source order).
void forEachChildStmt(const Stmt *S,
                      const std::function<void(const Stmt *)> &Fn);

/// Invokes \p Fn on \p S and every transitive child, preorder.
void walkStmtTree(const Stmt *S,
                  const std::function<void(const Stmt *)> &Fn);

/// Invokes \p Fn on every expression directly attached to \p S (the
/// condition of an if/while/..., the RHS of an assignment, the operand of
/// write/return). Does not descend into child statements.
void forEachStmtExpr(const Stmt *S,
                     const std::function<void(const Expr *)> &Fn);

/// Invokes \p Fn on \p E and every subexpression, preorder.
void walkExprTree(const Expr *E,
                  const std::function<void(const Expr *)> &Fn);

/// Collects the names of all variables a statement's own expressions use
/// (not descending into child statements).
void collectUsedVars(const Stmt *S, std::set<std::string> &Out);

/// Names of all variables mentioned anywhere in the program, sorted.
std::set<std::string> collectProgramVars(const Program &Prog);

} // namespace jslice

#endif // JSLICE_LANG_ASTWALK_H
