//===- lang/Parser.cpp - Mini-C recursive-descent parser -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/Sema.h"

using namespace jslice;

const Token &Parser::peek(size_t Ahead) const {
  size_t Idx = Pos + Ahead;
  if (Idx >= Tokens.size())
    Idx = Tokens.size() - 1; // Eof token.
  return Tokens[Idx];
}

Token Parser::consume() {
  Token Tok = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind)) {
    consume();
    return true;
  }
  if (!HadError) {
    Diags.report(current().Loc, std::string("expected ") +
                                    tokenKindName(Kind) + " " + Context +
                                    ", found " +
                                    tokenKindName(current().Kind));
    HadError = true;
  }
  return false;
}

bool Parser::enterNested(SourceLoc Loc) {
  if (++Depth <= MaxDepth)
    return true;
  if (!HadError) {
    Diags.report(Loc,
                 "nesting too deep (limit " + std::to_string(MaxDepth) + ")",
                 DiagKind::ResourceExhausted);
    HadError = true;
  }
  return false;
}

bool Parser::parseTopLevel() {
  std::vector<const Stmt *> TopLevel;
  while (!check(TokenKind::Eof) && !HadError) {
    const Stmt *S = parseStmt();
    if (!S)
      return false;
    TopLevel.push_back(S);
  }
  if (HadError)
    return false;
  Prog.setTopLevel(std::move(TopLevel));
  return true;
}

const Stmt *Parser::parseStmt() {
  if (Guard && !Guard->checkpoint("parser.stmt")) {
    if (!HadError) {
      Diags.report(current().Loc, Guard->reason(),
                   DiagKind::ResourceExhausted);
      HadError = true;
    }
    return nullptr;
  }

  // A statement label is `IDENT ':'`. Assignments also start with an
  // identifier, so disambiguate with one token of lookahead.
  std::string Label;
  SourceLoc LabelLoc;
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Colon)) {
    Token LabelTok = consume();
    consume(); // ':'
    Label = LabelTok.Text;
    LabelLoc = LabelTok.Loc;
  }

  const Stmt *S = parseUnlabeledStmt();
  if (!S)
    return nullptr;
  if (!Label.empty()) {
    if (S->hasLabel()) {
      Diags.report(LabelLoc, "multiple labels on one statement are not "
                             "supported");
      HadError = true;
      return nullptr;
    }
    const_cast<Stmt *>(S)->setLabel(std::move(Label));
  }
  return S;
}

const Stmt *Parser::parseUnlabeledStmt() {
  SourceLoc Loc = current().Loc;
  DepthScope Scope(*this, Loc);
  if (!Scope.Ok)
    return nullptr;
  switch (current().Kind) {
  case TokenKind::Semi:
    consume();
    return Prog.createStmt<EmptyStmt>(Loc);

  case TokenKind::LBrace:
    consume();
    return parseBlock(Loc);

  case TokenKind::KwIf:
    consume();
    return parseIf(Loc);

  case TokenKind::KwWhile:
    consume();
    return parseWhile(Loc);

  case TokenKind::KwDo:
    consume();
    return parseDoWhile(Loc);

  case TokenKind::KwFor:
    consume();
    return parseFor(Loc);

  case TokenKind::KwSwitch:
    consume();
    return parseSwitch(Loc);

  case TokenKind::KwRead: {
    consume();
    if (!expect(TokenKind::LParen, "after 'read'"))
      return nullptr;
    if (!check(TokenKind::Identifier)) {
      Diags.report(current().Loc, "expected variable name in 'read'");
      HadError = true;
      return nullptr;
    }
    Token Var = consume();
    if (!expect(TokenKind::RParen, "after 'read' variable") ||
        !expect(TokenKind::Semi, "after 'read' statement"))
      return nullptr;
    return Prog.createStmt<ReadStmt>(Loc, Var.Text);
  }

  case TokenKind::KwWrite: {
    consume();
    if (!expect(TokenKind::LParen, "after 'write'"))
      return nullptr;
    const Expr *Value = parseExpr();
    if (!Value)
      return nullptr;
    if (!expect(TokenKind::RParen, "after 'write' expression") ||
        !expect(TokenKind::Semi, "after 'write' statement"))
      return nullptr;
    return Prog.createStmt<WriteStmt>(Loc, Value);
  }

  case TokenKind::KwGoto: {
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.report(current().Loc, "expected label name after 'goto'");
      HadError = true;
      return nullptr;
    }
    Token Target = consume();
    if (!expect(TokenKind::Semi, "after 'goto' statement"))
      return nullptr;
    return Prog.createStmt<GotoStmt>(Loc, Target.Text);
  }

  case TokenKind::KwBreak:
    consume();
    if (!expect(TokenKind::Semi, "after 'break'"))
      return nullptr;
    return Prog.createStmt<BreakStmt>(Loc);

  case TokenKind::KwContinue:
    consume();
    if (!expect(TokenKind::Semi, "after 'continue'"))
      return nullptr;
    return Prog.createStmt<ContinueStmt>(Loc);

  case TokenKind::KwReturn: {
    consume();
    const Expr *Value = nullptr;
    if (!check(TokenKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after 'return'"))
      return nullptr;
    return Prog.createStmt<ReturnStmt>(Loc, Value);
  }

  case TokenKind::Identifier: {
    Token Var = consume();
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    const Expr *Value = parseExpr();
    if (!Value)
      return nullptr;
    if (!expect(TokenKind::Semi, "after assignment"))
      return nullptr;
    return Prog.createStmt<AssignStmt>(Loc, Var.Text, Value);
  }

  default:
    Diags.report(Loc, std::string("expected a statement, found ") +
                          tokenKindName(current().Kind));
    HadError = true;
    return nullptr;
  }
}

const Stmt *Parser::parseBlock(SourceLoc Loc) {
  std::vector<const Stmt *> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof) && !HadError) {
    const Stmt *S = parseStmt();
    if (!S)
      return nullptr;
    Body.push_back(S);
  }
  if (!expect(TokenKind::RBrace, "to close block"))
    return nullptr;
  return Prog.createStmt<BlockStmt>(Loc, std::move(Body));
}

const Stmt *Parser::parseIf(SourceLoc Loc) {
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  const Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after 'if' condition"))
    return nullptr;
  const Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  const Stmt *Else = nullptr;
  if (check(TokenKind::KwElse)) {
    consume();
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Prog.createStmt<IfStmt>(Loc, Cond, Then, Else);
}

const Stmt *Parser::parseWhile(SourceLoc Loc) {
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  const Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after 'while' condition"))
    return nullptr;
  const Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Prog.createStmt<WhileStmt>(Loc, Cond, Body);
}

const Stmt *Parser::parseDoWhile(SourceLoc Loc) {
  const Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  if (!expect(TokenKind::KwWhile, "after 'do' body") ||
      !expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  const Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after 'do-while' condition") ||
      !expect(TokenKind::Semi, "after 'do-while'"))
    return nullptr;
  return Prog.createStmt<DoWhileStmt>(Loc, Body, Cond);
}

const Stmt *Parser::parseSimpleForClause() {
  // A for-clause is a single assignment or read, without the trailing ';'
  // (the for-header grammar owns the separators).
  SourceLoc Loc = current().Loc;
  if (check(TokenKind::KwRead)) {
    consume();
    if (!expect(TokenKind::LParen, "after 'read'"))
      return nullptr;
    if (!check(TokenKind::Identifier)) {
      Diags.report(current().Loc, "expected variable name in 'read'");
      HadError = true;
      return nullptr;
    }
    Token Var = consume();
    if (!expect(TokenKind::RParen, "after 'read' variable"))
      return nullptr;
    return Prog.createStmt<ReadStmt>(Loc, Var.Text);
  }
  if (!check(TokenKind::Identifier)) {
    Diags.report(Loc, "expected assignment or 'read' in for-clause");
    HadError = true;
    return nullptr;
  }
  Token Var = consume();
  if (!expect(TokenKind::Assign, "in for-clause assignment"))
    return nullptr;
  const Expr *Value = parseExpr();
  if (!Value)
    return nullptr;
  return Prog.createStmt<AssignStmt>(Loc, Var.Text, Value);
}

const Stmt *Parser::parseFor(SourceLoc Loc) {
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;

  const Stmt *Init = nullptr;
  if (!check(TokenKind::Semi)) {
    Init = parseSimpleForClause();
    if (!Init)
      return nullptr;
  }
  if (!expect(TokenKind::Semi, "after for-init"))
    return nullptr;

  const Expr *Cond = nullptr;
  if (!check(TokenKind::Semi)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  if (!expect(TokenKind::Semi, "after for-condition"))
    return nullptr;

  const Stmt *Step = nullptr;
  if (!check(TokenKind::RParen)) {
    Step = parseSimpleForClause();
    if (!Step)
      return nullptr;
  }
  if (!expect(TokenKind::RParen, "to close for-header"))
    return nullptr;

  const Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Prog.createStmt<ForStmt>(Loc, Init, Cond, Step, Body);
}

const Stmt *Parser::parseSwitch(SourceLoc Loc) {
  if (!expect(TokenKind::LParen, "after 'switch'"))
    return nullptr;
  const Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after 'switch' expression") ||
      !expect(TokenKind::LBrace, "to open 'switch' body"))
    return nullptr;

  std::vector<CaseClause> Clauses;
  bool SawDefault = false;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof) && !HadError) {
    CaseClause Clause;
    Clause.Loc = current().Loc;
    if (check(TokenKind::KwCase)) {
      consume();
      bool Negative = false;
      if (check(TokenKind::Minus)) {
        consume();
        Negative = true;
      }
      if (!check(TokenKind::IntLiteral)) {
        Diags.report(current().Loc, "expected integer after 'case'");
        HadError = true;
        return nullptr;
      }
      Token Value = consume();
      Clause.Value = Negative ? -Value.IntValue : Value.IntValue;
    } else if (check(TokenKind::KwDefault)) {
      consume();
      Clause.IsDefault = true;
      if (SawDefault) {
        Diags.report(Clause.Loc, "multiple 'default' clauses in switch");
        HadError = true;
        return nullptr;
      }
      SawDefault = true;
    } else {
      Diags.report(current().Loc, "expected 'case' or 'default' in switch "
                                  "body");
      HadError = true;
      return nullptr;
    }
    if (!expect(TokenKind::Colon, "after case label"))
      return nullptr;

    while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
           !check(TokenKind::RBrace) && !check(TokenKind::Eof) && !HadError) {
      const Stmt *S = parseStmt();
      if (!S)
        return nullptr;
      Clause.Body.push_back(S);
    }
    Clauses.push_back(std::move(Clause));
  }
  if (!expect(TokenKind::RBrace, "to close 'switch' body"))
    return nullptr;
  return Prog.createStmt<SwitchStmt>(Loc, Cond, std::move(Clauses));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Expr *Parser::parseExpr() {
  // Parenthesized expressions recurse parsePrimary -> parseExpr; bound
  // that cycle here (the binary-operator chain itself is iterative).
  DepthScope Scope(*this, current().Loc);
  if (!Scope.Ok)
    return nullptr;
  return parseOr();
}

const Expr *Parser::parseOr() {
  const Expr *LHS = parseAnd();
  while (LHS && check(TokenKind::PipePipe)) {
    SourceLoc Loc = consume().Loc;
    const Expr *RHS = parseAnd();
    if (!RHS)
      return nullptr;
    LHS = Prog.createExpr<BinaryExpr>(Loc, BinaryOp::Or, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseAnd() {
  const Expr *LHS = parseEquality();
  while (LHS && check(TokenKind::AmpAmp)) {
    SourceLoc Loc = consume().Loc;
    const Expr *RHS = parseEquality();
    if (!RHS)
      return nullptr;
    LHS = Prog.createExpr<BinaryExpr>(Loc, BinaryOp::And, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseEquality() {
  const Expr *LHS = parseRelational();
  while (LHS && (check(TokenKind::EqEq) || check(TokenKind::NotEq))) {
    Token Op = consume();
    const Expr *RHS = parseRelational();
    if (!RHS)
      return nullptr;
    BinaryOp Kind =
        Op.is(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
    LHS = Prog.createExpr<BinaryExpr>(Op.Loc, Kind, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseRelational() {
  const Expr *LHS = parseAdditive();
  while (LHS && (check(TokenKind::Lt) || check(TokenKind::Le) ||
                 check(TokenKind::Gt) || check(TokenKind::Ge))) {
    Token Op = consume();
    const Expr *RHS = parseAdditive();
    if (!RHS)
      return nullptr;
    BinaryOp Kind = BinaryOp::Lt;
    if (Op.is(TokenKind::Le))
      Kind = BinaryOp::Le;
    else if (Op.is(TokenKind::Gt))
      Kind = BinaryOp::Gt;
    else if (Op.is(TokenKind::Ge))
      Kind = BinaryOp::Ge;
    LHS = Prog.createExpr<BinaryExpr>(Op.Loc, Kind, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseAdditive() {
  const Expr *LHS = parseMultiplicative();
  while (LHS && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    Token Op = consume();
    const Expr *RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    BinaryOp Kind = Op.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    LHS = Prog.createExpr<BinaryExpr>(Op.Loc, Kind, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseMultiplicative() {
  const Expr *LHS = parseUnary();
  while (LHS && (check(TokenKind::Star) || check(TokenKind::Slash) ||
                 check(TokenKind::Percent))) {
    Token Op = consume();
    const Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    BinaryOp Kind = BinaryOp::Mul;
    if (Op.is(TokenKind::Slash))
      Kind = BinaryOp::Div;
    else if (Op.is(TokenKind::Percent))
      Kind = BinaryOp::Rem;
    LHS = Prog.createExpr<BinaryExpr>(Op.Loc, Kind, LHS, RHS);
  }
  return LHS;
}

const Expr *Parser::parseUnary() {
  if (check(TokenKind::Minus) || check(TokenKind::Not)) {
    // Self-recursive (`----x`); bounded like the other productions.
    DepthScope Scope(*this, current().Loc);
    if (!Scope.Ok)
      return nullptr;
    Token Op = consume();
    const Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    UnaryOp Kind = Op.is(TokenKind::Minus) ? UnaryOp::Neg : UnaryOp::Not;
    return Prog.createExpr<UnaryExpr>(Op.Loc, Kind, Operand);
  }
  return parsePrimary();
}

const Expr *Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token Tok = consume();
    return Prog.createExpr<IntLitExpr>(Loc, Tok.IntValue);
  }
  case TokenKind::LParen: {
    consume();
    const Expr *Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return Inner;
  }
  case TokenKind::Identifier: {
    Token Name = consume();
    if (!check(TokenKind::LParen))
      return Prog.createExpr<VarRefExpr>(Loc, Name.Text);
    consume(); // '('
    std::vector<const Expr *> Args;
    if (!check(TokenKind::RParen)) {
      for (;;) {
        const Expr *Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
        if (!check(TokenKind::Comma))
          break;
        consume();
      }
    }
    if (!expect(TokenKind::RParen, "to close call argument list"))
      return nullptr;
    return Prog.createExpr<CallExpr>(Loc, Name.Text, std::move(Args));
  }
  default:
    Diags.report(Loc, std::string("expected an expression, found ") +
                          tokenKindName(current().Kind));
    HadError = true;
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Pipeline entry point
//===----------------------------------------------------------------------===//

static ErrorOr<std::unique_ptr<Program>>
parseProgramImpl(const std::string &Source, ResourceGuard *Guard) {
  DiagList Diags;
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll(Diags);
  if (!Diags.empty())
    return Diags;

  auto Prog = std::make_unique<Program>();
  Parser P(std::move(Tokens), *Prog, Diags, Guard);
  if (!P.parseTopLevel()) {
    if (Diags.empty())
      Diags.report(SourceLoc(), "parse failed");
    return Diags;
  }

  if (!runSema(*Prog, Diags))
    return Diags;
  return Prog;
}

ErrorOr<std::unique_ptr<Program>>
jslice::parseProgram(const std::string &Source) {
  return parseProgramImpl(Source, nullptr);
}

ErrorOr<std::unique_ptr<Program>>
jslice::parseProgram(const std::string &Source, ResourceGuard &Guard) {
  return parseProgramImpl(Source, &Guard);
}
