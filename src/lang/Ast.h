//===- lang/Ast.h - Mini-C abstract syntax trees ---------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Mini-C AST. Mini-C is the smallest C-like language that covers every
/// construct appearing in the paper's figures: assignments, read/write,
/// if/else, while, do-while, for, switch with C fall-through, blocks,
/// labels, goto, break, continue, return, and pure intrinsic calls.
///
/// All nodes are owned by a Program (arena style); client code holds raw
/// non-owning pointers. Nodes participate in the LLVM-style isa/cast/
/// dyn_cast machinery from support/Casting.h.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_AST_H
#define JSLICE_LANG_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jslice {

class Program;
class Stmt;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for Expr subclasses.
enum class ExprKind { IntLit, VarRef, Unary, Binary, Call };

/// Unary operators. Mini-C evaluates `!` as C does (0/1 result).
enum class UnaryOp { Neg, Not };

/// Binary operators. `And`/`Or` evaluate both operands (no short circuit);
/// since Mini-C expressions are side-effect free this is unobservable.
enum class BinaryOp { Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne, And,
                      Or };

/// Returns the C spelling of \p Op ("+", "<=", ...).
const char *binaryOpSpelling(BinaryOp Op);

/// Base class of all Mini-C expressions. Expressions are pure: they read
/// variables and call pure intrinsics but never write state.
class Expr {
public:
  // Expressions are owned through unique_ptr<Expr>; deletion must
  // dispatch to the derived destructor (CallExpr owns a string and a
  // vector).
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }

private:
  int64_t Value;
};

/// A use of a scalar variable.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }

private:
  std::string Name;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, const Expr *Operand)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp getOp() const { return Op; }
  const Expr *getOperand() const { return Operand; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }

private:
  UnaryOp Op;
  const Expr *Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, const Expr *LHS, const Expr *RHS)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp getOp() const { return Op; }
  const Expr *getLHS() const { return LHS; }
  const Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }

private:
  BinaryOp Op;
  const Expr *LHS;
  const Expr *RHS;
};

/// A call to a pure intrinsic function, e.g. `f1(x)` or `eof()`.
/// The interpreter gives every intrinsic a deterministic meaning (see
/// interp/Interpreter.h); the analyses treat calls as uses of their
/// argument variables only.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<const Expr *> Args)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<const Expr *> &getArgs() const { return Args; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Call;
  }

private:
  std::string Callee;
  std::vector<const Expr *> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for Stmt subclasses.
enum class StmtKind {
  Assign,
  Read,
  Write,
  If,
  While,
  DoWhile,
  For,
  Switch,
  Block,
  Goto,
  Break,
  Continue,
  Return,
  Empty,
};

/// Base class of all Mini-C statements.
///
/// Every statement carries:
///  * a unique dense Id assigned by its owning Program (used to key
///    side tables such as the statement -> CFG node map);
///  * an optional label (`L:` prefix), as in C;
///  * a syntactic parent link, filled in by semantic analysis, which the
///    lexical-successor-tree builder and the slice printer rely on.
class Stmt {
public:
  // Statements are owned through unique_ptr<Stmt>; deletion must
  // dispatch to the derived destructor (most derived statements own
  // strings or child vectors).
  virtual ~Stmt() = default;

  StmtKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }
  unsigned getId() const { return Id; }

  bool hasLabel() const { return !Label.empty(); }
  const std::string &getLabel() const { return Label; }
  void setLabel(std::string NewLabel) { Label = std::move(NewLabel); }

  const Stmt *getParent() const { return Parent; }
  void setParent(const Stmt *NewParent) { Parent = NewParent; }

  /// True for the unconditional jump statements the paper studies:
  /// goto, break, continue, and return.
  bool isJump() const {
    return Kind == StmtKind::Goto || Kind == StmtKind::Break ||
           Kind == StmtKind::Continue || Kind == StmtKind::Return;
  }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  friend class Program;

  StmtKind Kind;
  SourceLoc Loc;
  unsigned Id = 0;
  std::string Label;
  const Stmt *Parent = nullptr;
};

/// `x = expr;`
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, std::string Target, const Expr *Value)
      : Stmt(StmtKind::Assign, Loc), Target(std::move(Target)), Value(Value) {}

  const std::string &getTarget() const { return Target; }
  const Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assign;
  }

private:
  std::string Target;
  const Expr *Value;
};

/// `read(x);` — defines x from the input stream.
class ReadStmt : public Stmt {
public:
  ReadStmt(SourceLoc Loc, std::string Target)
      : Stmt(StmtKind::Read, Loc), Target(std::move(Target)) {}

  const std::string &getTarget() const { return Target; }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Read; }

private:
  std::string Target;
};

/// `write(expr);` — emits a value to the output stream.
class WriteStmt : public Stmt {
public:
  WriteStmt(SourceLoc Loc, const Expr *Value)
      : Stmt(StmtKind::Write, Loc), Value(Value) {}

  const Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Write;
  }

private:
  const Expr *Value;
};

/// `if (cond) then [else els]`
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, const Expr *Cond, const Stmt *Then, const Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *getCond() const { return Cond; }
  const Stmt *getThen() const { return Then; }
  const Stmt *getElse() const { return Else; }
  bool hasElse() const { return Else != nullptr; }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }

private:
  const Expr *Cond;
  const Stmt *Then;
  const Stmt *Else;
};

/// `while (cond) body`
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, const Expr *Cond, const Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}

  const Expr *getCond() const { return Cond; }
  const Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }

private:
  const Expr *Cond;
  const Stmt *Body;
};

/// `do body while (cond);`
class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLoc Loc, const Stmt *Body, const Expr *Cond)
      : Stmt(StmtKind::DoWhile, Loc), Body(Body), Cond(Cond) {}

  const Stmt *getBody() const { return Body; }
  const Expr *getCond() const { return Cond; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::DoWhile;
  }

private:
  const Stmt *Body;
  const Expr *Cond;
};

/// `for (init; cond; step) body` — init and step are optional simple
/// statements (assignment or read); cond is an optional expression that
/// defaults to true.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, const Stmt *Init, const Expr *Cond, const Stmt *Step,
          const Stmt *Body)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}

  const Stmt *getInit() const { return Init; }
  const Expr *getCond() const { return Cond; }
  const Stmt *getStep() const { return Step; }
  const Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::For; }

private:
  const Stmt *Init;
  const Expr *Cond;
  const Stmt *Step;
  const Stmt *Body;
};

/// One `case k:` / `default:` clause of a switch. Clauses own their
/// statement lists; control falls through to the next clause as in C.
struct CaseClause {
  SourceLoc Loc;
  bool IsDefault = false;
  int64_t Value = 0;
  std::vector<const Stmt *> Body;
};

/// `switch (cond) { case ...: ... default: ... }` with C fall-through.
class SwitchStmt : public Stmt {
public:
  SwitchStmt(SourceLoc Loc, const Expr *Cond, std::vector<CaseClause> Clauses)
      : Stmt(StmtKind::Switch, Loc), Cond(Cond), Clauses(std::move(Clauses)) {}

  const Expr *getCond() const { return Cond; }
  const std::vector<CaseClause> &getClauses() const { return Clauses; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Switch;
  }

private:
  const Expr *Cond;
  std::vector<CaseClause> Clauses;
};

/// `{ s1 s2 ... }`
class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<const Stmt *> Body)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}

  const std::vector<const Stmt *> &getBody() const { return Body; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Block;
  }

private:
  std::vector<const Stmt *> Body;
};

/// `goto L;` — Target is resolved by semantic analysis.
class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, std::string TargetLabel)
      : Stmt(StmtKind::Goto, Loc), TargetLabel(std::move(TargetLabel)) {}

  const std::string &getTargetLabel() const { return TargetLabel; }

  const Stmt *getTarget() const { return Target; }
  void setTarget(const Stmt *NewTarget) { Target = NewTarget; }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Goto; }

private:
  std::string TargetLabel;
  const Stmt *Target = nullptr;
};

/// `break;` — Target (the enclosing loop or switch) is resolved by
/// semantic analysis.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}

  const Stmt *getTarget() const { return Target; }
  void setTarget(const Stmt *NewTarget) { Target = NewTarget; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Break;
  }

private:
  const Stmt *Target = nullptr;
};

/// `continue;` — Target (the enclosing loop) is resolved by semantic
/// analysis.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}

  const Stmt *getTarget() const { return Target; }
  void setTarget(const Stmt *NewTarget) { Target = NewTarget; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }

private:
  const Stmt *Target = nullptr;
};

/// `return;` or `return expr;` — transfers to program exit; a returned
/// value is written to the output stream (Mini-C programs are single
/// procedures, so this is the observable meaning the paper's examples
/// need).
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, const Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}

  const Expr *getValue() const { return Value; }
  bool hasValue() const { return Value != nullptr; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }

private:
  const Expr *Value;
};

/// `;`
class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(StmtKind::Empty, Loc) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Empty;
  }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// Owns every AST node of one Mini-C program and the top-level statement
/// list. Statements receive dense ids in creation order.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  /// Creates and owns an expression node.
  template <typename T, typename... Args> const T *createExpr(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    const T *Raw = Node.get();
    Exprs.push_back(std::move(Node));
    return Raw;
  }

  /// Creates and owns a statement node, assigning the next dense id.
  template <typename T, typename... Args> T *createStmt(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    Node->Id = static_cast<unsigned>(Stmts.size());
    T *Raw = Node.get();
    Stmts.push_back(std::move(Node));
    return Raw;
  }

  /// Total number of statements ever created (ids are < this bound).
  unsigned numStmts() const { return static_cast<unsigned>(Stmts.size()); }

  /// The top-level statement sequence of the program.
  const std::vector<const Stmt *> &topLevel() const { return TopLevel; }
  void setTopLevel(std::vector<const Stmt *> NewTopLevel) {
    TopLevel = std::move(NewTopLevel);
  }

  /// All statements in creation order (parser emits them roughly in
  /// source order; do not rely on ordering beyond id stability).
  std::vector<const Stmt *> allStmts() const {
    std::vector<const Stmt *> Out;
    Out.reserve(Stmts.size());
    for (const auto &S : Stmts)
      Out.push_back(S.get());
    return Out;
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<const Stmt *> TopLevel;
};

} // namespace jslice

#endif // JSLICE_LANG_AST_H
