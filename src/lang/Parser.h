//===- lang/Parser.h - Mini-C recursive-descent parser ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses Mini-C source text into a Program. Parsing stops at the first
/// syntax error; the returned diagnostics identify it precisely. Use
/// `parseProgram` for the common parse-and-check pipeline (it also runs
/// semantic analysis from lang/Sema.h).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_PARSER_H
#define JSLICE_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Error.h"
#include "support/ResourceGuard.h"

#include <memory>
#include <string>
#include <vector>

namespace jslice {

/// Recursive-descent parser over a pre-lexed token stream.
///
/// Recursion depth is bounded: statement and expression nesting beyond
/// the budget's MaxNestingDepth (Budget::DefaultNestingDepth when no
/// guard is supplied) is reported as "nesting too deep" instead of
/// overflowing the stack — adversarial inputs like 100k-deep `{{{...}}}`
/// degrade to a diagnostic.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Program &Prog, DiagList &Diags,
         ResourceGuard *Guard = nullptr)
      : Tokens(std::move(Tokens)), Prog(Prog), Diags(Diags), Guard(Guard),
        MaxDepth(Guard ? Guard->budget().effectiveNestingDepth()
                       : Budget::DefaultNestingDepth) {}

  /// Parses the whole token stream as a top-level statement sequence.
  /// Returns false (with diagnostics) on the first syntax error.
  bool parseTopLevel();

private:
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token consume();
  bool expect(TokenKind Kind, const char *Context);
  bool check(TokenKind Kind) const { return current().is(Kind); }

  const Stmt *parseStmt();
  const Stmt *parseUnlabeledStmt();
  const Stmt *parseSimpleForClause();
  const Stmt *parseIf(SourceLoc Loc);
  const Stmt *parseWhile(SourceLoc Loc);
  const Stmt *parseDoWhile(SourceLoc Loc);
  const Stmt *parseFor(SourceLoc Loc);
  const Stmt *parseSwitch(SourceLoc Loc);
  const Stmt *parseBlock(SourceLoc Loc);

  const Expr *parseExpr();
  const Expr *parseOr();
  const Expr *parseAnd();
  const Expr *parseEquality();
  const Expr *parseRelational();
  const Expr *parseAdditive();
  const Expr *parseMultiplicative();
  const Expr *parseUnary();
  const Expr *parsePrimary();

  /// Depth accounting for the recursive productions. enterNested always
  /// increments (DepthScope's destructor unconditionally decrements) and
  /// reports "nesting too deep" when the limit is crossed.
  bool enterNested(SourceLoc Loc);
  struct DepthScope {
    Parser &P;
    bool Ok;
    DepthScope(Parser &P, SourceLoc Loc) : P(P), Ok(P.enterNested(Loc)) {}
    ~DepthScope() { --P.Depth; }
    DepthScope(const DepthScope &) = delete;
    DepthScope &operator=(const DepthScope &) = delete;
  };

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program &Prog;
  DiagList &Diags;
  ResourceGuard *Guard = nullptr;
  unsigned MaxDepth;
  unsigned Depth = 0;
  bool HadError = false;
};

/// Lexes, parses, and semantically checks \p Source. This is the standard
/// entry point used by tests, benches, and examples.
ErrorOr<std::unique_ptr<Program>> parseProgram(const std::string &Source);

/// As above, metered: the parse polls \p Guard per statement and honours
/// its budget's nesting-depth limit.
ErrorOr<std::unique_ptr<Program>> parseProgram(const std::string &Source,
                                               ResourceGuard &Guard);

} // namespace jslice

#endif // JSLICE_LANG_PARSER_H
