//===- lang/Lexer.cpp - Mini-C lexer ---------------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace jslice;

const char *jslice::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwRead:
    return "'read'";
  case TokenKind::KwWrite:
    return "'write'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  }
  return "<unknown token>";
}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advancing past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia(DiagList &Diags) {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.report(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},         {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},       {"default", TokenKind::KwDefault},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"return", TokenKind::KwReturn},   {"goto", TokenKind::KwGoto},
      {"read", TokenKind::KwRead},       {"write", TokenKind::KwWrite},
  };

  Token Tok;
  Tok.Loc = here();
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();
  auto It = Keywords.find(Text);
  Tok.Kind = It != Keywords.end() ? It->second : TokenKind::Identifier;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexNumber() {
  Token Tok;
  Tok.Kind = TokenKind::IntLiteral;
  Tok.Loc = here();
  int64_t Value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::lexToken(DiagList &Diags) {
  skipTrivia(Diags);

  Token Tok;
  Tok.Loc = here();
  if (atEnd()) {
    Tok.Kind = TokenKind::Eof;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  advance();
  switch (C) {
  case '(':
    Tok.Kind = TokenKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokenKind::RParen;
    return Tok;
  case '{':
    Tok.Kind = TokenKind::LBrace;
    return Tok;
  case '}':
    Tok.Kind = TokenKind::RBrace;
    return Tok;
  case ';':
    Tok.Kind = TokenKind::Semi;
    return Tok;
  case ':':
    Tok.Kind = TokenKind::Colon;
    return Tok;
  case ',':
    Tok.Kind = TokenKind::Comma;
    return Tok;
  case '+':
    Tok.Kind = TokenKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = TokenKind::Minus;
    return Tok;
  case '*':
    Tok.Kind = TokenKind::Star;
    return Tok;
  case '/':
    Tok.Kind = TokenKind::Slash;
    return Tok;
  case '%':
    Tok.Kind = TokenKind::Percent;
    return Tok;
  case '=':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::EqEq;
    } else {
      Tok.Kind = TokenKind::Assign;
    }
    return Tok;
  case '<':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Le;
    } else {
      Tok.Kind = TokenKind::Lt;
    }
    return Tok;
  case '>':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Ge;
    } else {
      Tok.Kind = TokenKind::Gt;
    }
    return Tok;
  case '!':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::NotEq;
    } else {
      Tok.Kind = TokenKind::Not;
    }
    return Tok;
  case '&':
    if (peek() == '&') {
      advance();
      Tok.Kind = TokenKind::AmpAmp;
      return Tok;
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      Tok.Kind = TokenKind::PipePipe;
      return Tok;
    }
    break;
  default:
    break;
  }

  Diags.report(Tok.Loc, std::string("unexpected character '") + C + "'");
  Tok.Kind = TokenKind::Error;
  return Tok;
}

std::vector<Token> Lexer::lexAll(DiagList &Diags) {
  std::vector<Token> Tokens;
  for (;;) {
    Token Tok = lexToken(Diags);
    bool IsEof = Tok.is(TokenKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (IsEof)
      break;
  }
  return Tokens;
}
