//===- lang/Token.h - Mini-C token definitions ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the Mini-C lexer.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_TOKEN_H
#define JSLICE_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace jslice {

/// Lexical classes of Mini-C.
enum class TokenKind {
  // Sentinels.
  Eof,
  Error,

  // Literals and names.
  Identifier,
  IntLiteral,

  // Keywords.
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  KwGoto,
  KwRead,
  KwWrite,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Semi,
  Colon,
  Comma,

  // Operators.
  Assign,   // =
  Plus,     // +
  Minus,    // -
  Star,     // *
  Slash,    // /
  Percent,  // %
  Lt,       // <
  Le,       // <=
  Gt,       // >
  Ge,       // >=
  EqEq,     // ==
  NotEq,    // !=
  AmpAmp,   // &&
  PipePipe, // ||
  Not,      // !
};

/// Returns a human-readable spelling class for diagnostics ("';'", "'if'",
/// "identifier", ...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. `Text` holds the spelling for identifiers; `IntValue`
/// holds the decoded value for integer literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace jslice

#endif // JSLICE_LANG_TOKEN_H
