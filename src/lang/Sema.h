//===- lang/Sema.h - Mini-C semantic analysis ------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-parse checks and resolutions:
///  * parent links for every statement;
///  * label table (duplicate labels rejected), goto target resolution;
///  * break/continue binding to the enclosing loop/switch (errors when
///    there is none);
///  * uniqueness of statement line numbers is NOT required, but the
///    helpers in slicer/ that look statements up by line report ambiguity.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_LANG_SEMA_H
#define JSLICE_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Error.h"

namespace jslice {

/// Runs all semantic checks and resolutions over \p Prog.
/// Returns false and fills \p Diags when the program is ill-formed.
bool runSema(Program &Prog, DiagList &Diags);

} // namespace jslice

#endif // JSLICE_LANG_SEMA_H
