//===- pdg/ControlDependence.h - FOW control dependence ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence per Ferrante, Ottenstein & Warren [10 in the
/// paper]: Y is control dependent on X iff X has an outgoing edge whose
/// target Y postdominates, while Y does not postdominate X itself. With
/// the Entry -> Exit augmentation edge (added by the CFG builder),
/// always-executed statements come out control dependent on Entry — the
/// paper's dummy predicate node 0.
///
/// The same routine serves the Ball–Horwitz / Choi–Ferrante baseline:
/// feed it the *augmented* flowgraph and that graph's postdominator tree
/// and jump statements become control-dependence parents.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_PDG_CONTROLDEPENDENCE_H
#define JSLICE_PDG_CONTROLDEPENDENCE_H

#include "graph/Digraph.h"
#include "graph/Dominators.h"

namespace jslice {

/// Builds the control dependence graph of \p FlowGraph. Edges run from
/// the controlling node to the controlled node. \p Pdt must be the
/// postdominator tree of \p FlowGraph (dominators of the reversed graph
/// rooted at Exit). With a \p Guard, one checkpoint is polled per edge
/// walk; on exhaustion the partial graph is returned — callers must
/// treat a tripped guard as failure.
Digraph buildControlDependence(const Digraph &FlowGraph, const DomTree &Pdt,
                               ResourceGuard *Guard = nullptr);

} // namespace jslice

#endif // JSLICE_PDG_CONTROLDEPENDENCE_H
