//===- pdg/Pdg.h - Program dependence graph ----------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program dependence graph (Ottenstein & Ottenstein [24], as used by
/// the paper's Figure 2-d): the union of the control and data dependence
/// graphs over the same CFG node ids. Dependence edges run from the
/// depended-on node to the dependent node, so backward slicing is a walk
/// over predecessors.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_PDG_PDG_H
#define JSLICE_PDG_PDG_H

#include "graph/Digraph.h"

#include <set>
#include <vector>

namespace jslice {

/// Control and data dependence, kept separate (the paper's algorithms
/// need "directly control dependent" queries) plus merged on demand.
struct Pdg {
  Digraph Control;
  Digraph Data;

  Pdg(Digraph Control, Digraph Data)
      : Control(std::move(Control)), Data(std::move(Data)) {}

  /// The merged graph (Figure 2-d style).
  Digraph combined() const {
    Digraph Out = Control;
    for (unsigned From = 0, N = Data.numNodes(); From != N; ++From)
      for (unsigned To : Data.succs(From))
        Out.addEdge(From, To);
    return Out;
  }

  /// Backward transitive closure from \p Seeds over both dependence
  /// kinds — the conventional slicing core [17, 24]. The seeds are
  /// included in the result.
  std::set<unsigned> backwardClosure(const std::vector<unsigned> &Seeds) const;

  /// Extends \p Slice with the backward closure of \p Node's
  /// dependences (the Figure 7 step "add the transitive closure of the
  /// dependence of J"). Returns the nodes newly added.
  std::vector<unsigned> growClosure(std::set<unsigned> &Slice,
                                    unsigned Node) const;
};

} // namespace jslice

#endif // JSLICE_PDG_PDG_H
