//===- pdg/ControlDependence.cpp - FOW control dependence -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/ControlDependence.h"

#include <cassert>

using namespace jslice;

Digraph jslice::buildControlDependence(const Digraph &FlowGraph,
                                       const DomTree &Pdt,
                                       ResourceGuard *Guard) {
  Digraph CD(FlowGraph.numNodes());
  for (unsigned X = 0, N = FlowGraph.numNodes(); X != N; ++X) {
    for (unsigned Y : FlowGraph.succs(X)) {
      if (Guard && !Guard->checkpoint("controldep.edge"))
        return CD; // Partial; the caller checks the guard.
      if (Pdt.dominates(Y, X))
        continue;
      // Walk the postdominator tree from Y up to (exclusive) ipdom(X);
      // every node on the way is control dependent on X. This includes
      // X itself for loop predicates (the classic self-dependence).
      assert(Pdt.isReachable(X) && "flowgraph node missing from PDT");
      int Stop = Pdt.idom(X);
      int Z = static_cast<int>(Y);
      while (Z >= 0 && Z != Stop) {
        CD.addEdge(X, static_cast<unsigned>(Z));
        Z = Pdt.idom(static_cast<unsigned>(Z));
      }
    }
  }
  return CD;
}
