//===- pdg/Pdg.cpp - Program dependence graph ---------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "pdg/Pdg.h"

using namespace jslice;

std::set<unsigned>
Pdg::backwardClosure(const std::vector<unsigned> &Seeds) const {
  std::set<unsigned> Slice;
  std::vector<unsigned> Worklist;
  for (unsigned Seed : Seeds)
    if (Slice.insert(Seed).second)
      Worklist.push_back(Seed);

  while (!Worklist.empty()) {
    unsigned Node = Worklist.back();
    Worklist.pop_back();
    for (unsigned Dep : Control.preds(Node))
      if (Slice.insert(Dep).second)
        Worklist.push_back(Dep);
    for (unsigned Dep : Data.preds(Node))
      if (Slice.insert(Dep).second)
        Worklist.push_back(Dep);
  }
  return Slice;
}

std::vector<unsigned> Pdg::growClosure(std::set<unsigned> &Slice,
                                       unsigned Node) const {
  std::vector<unsigned> Added;
  std::vector<unsigned> Worklist;
  if (Slice.insert(Node).second) {
    Added.push_back(Node);
    Worklist.push_back(Node);
  }
  while (!Worklist.empty()) {
    unsigned Cur = Worklist.back();
    Worklist.pop_back();
    for (unsigned Dep : Control.preds(Cur)) {
      if (Slice.insert(Dep).second) {
        Added.push_back(Dep);
        Worklist.push_back(Dep);
      }
    }
    for (unsigned Dep : Data.preds(Cur)) {
      if (Slice.insert(Dep).second) {
        Added.push_back(Dep);
        Worklist.push_back(Dep);
      }
    }
  }
  return Added;
}
