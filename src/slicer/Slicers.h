//===- slicer/Slicers.h - All slicing algorithms ------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slicing algorithms this repository reproduces:
///
///  * Conventional — PDG backward reachability [17, 24] plus the paper's
///    conditional-jump adaptation (Section 3). Wrong on programs with
///    unconditional jumps; the base every other algorithm starts from.
///  * Agrawal (Figure 7) — the paper's general algorithm: iterated
///    preorder traversals of the postdominator tree adding every jump
///    whose nearest postdominator in the slice differs from its nearest
///    lexical successor in the slice, plus the jump's dependence
///    closure. Equal precision to Ball–Horwitz / Choi–Ferrante.
///  * AgrawalLst — the same algorithm driven by a preorder traversal of
///    the lexical successor tree (Section 3 notes either tree works;
///    only the traversal count may differ, never the slice).
///  * Structured (Figure 12) — single traversal, only jumps directly
///    control dependent on an in-slice predicate, no closure step.
///    Correct for structured programs without multi-level exits; this
///    reproduction found that `return` statements violate the paper's
///    Section-4 property 2, making Figure 12 (and 13) drop required
///    jumps — see DESIGN.md, "Findings", and tests/FindingsTest.cpp.
///  * Conservative (Figure 13) — adds every jump directly control
///    dependent on an in-slice predicate; needs neither tree. Correct
///    (possibly larger) wherever Figure 12 is.
///  * BallHorwitz — the augmented-flowgraph baseline [5, 8]: control
///    dependence from the augmented CFG, data dependence from the plain
///    CFG, then plain backward reachability.
///  * Lyle — Lyle's extremely conservative behaviour [22] as the paper
///    characterizes it: every jump statement is added, with dependence
///    closure (see RelatedWork.cpp for why the literal between-S-and-loc
///    phrasing is not implementable soundly).
///  * Gallagher — Gallagher's rule [11]: add a jump when its target
///    block already contributes to the slice and its controlling
///    predicates are in the slice. Incorrect on Figure 16 by design.
///  * Weiser — Weiser's original iterative dataflow algorithm [29]
///    (slicer/WeiserSlicer.h): finds the right predicates even around
///    jumps but never includes a jump statement — the defect the paper
///    opens with.
///  * JiangZhouRobson — a rule-based scheme in the spirit of [18] (the
///    paper does not reproduce their exact rules; see DESIGN.md): add a
///    jump when its target and all its controlling predicates are in
///    the slice. Misses the jumps on lines 11 and 13 of Figure 8,
///    matching the failure the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_SLICERS_H
#define JSLICE_SLICER_SLICERS_H

#include "slicer/Analysis.h"
#include "slicer/Criterion.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Which tree drives the Figure 7 traversal.
enum class TraversalTree { PostDominator, LexicalSuccessor };

/// All implemented algorithms, for table-driven benches and tests.
enum class SliceAlgorithm {
  Conventional,
  Agrawal,
  AgrawalLst,
  Structured,
  Conservative,
  BallHorwitz,
  Lyle,
  Gallagher,
  JiangZhouRobson,
  Weiser,
};

/// Human-readable algorithm name ("agrawal-fig7", ...).
const char *algorithmName(SliceAlgorithm Algorithm);

/// Whether the algorithm yields behaviour-preserving slices on the
/// class of programs it is defined for (Gallagher and JZR do not).
bool algorithmIsSound(SliceAlgorithm Algorithm);

/// The outcome of one slicing run.
struct SliceResult {
  /// CFG nodes in the slice (Entry is always a member — the paper's
  /// dummy predicate node; Exit only when seeded explicitly).
  std::set<unsigned> Nodes;

  unsigned CriterionNode = 0;

  /// Figure 7 statistics: total preorder passes, and passes that added
  /// at least one jump (the count the paper's prose reports).
  unsigned Traversals = 0;
  unsigned ProductiveTraversals = 0;

  /// Figure 7 trace: the jump nodes each traversal added, in visit
  /// order (one inner vector per productive traversal). Drives the
  /// bench that replays the paper's Section 3 walkthroughs.
  std::vector<std::vector<unsigned>> TraversalAdditions;

  /// Labels whose statement fell out of the slice, re-associated with
  /// the target's nearest postdominator in the slice (Figure 7, final
  /// step). Values are CFG node ids; Exit means "end of program".
  std::map<std::string, unsigned> ReassociatedLabels;

  bool contains(unsigned Node) const { return Nodes.count(Node) != 0; }

  /// The slice as source line numbers (paper-figure form).
  std::set<unsigned> lineSet(const Cfg &C) const;

  /// The slice as statement ids (what the projection printer keeps).
  std::set<unsigned> stmtIds(const Cfg &C) const;
};

SliceResult sliceConventional(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceAgrawal(const Analysis &A, const ResolvedCriterion &RC,
                         TraversalTree Tree = TraversalTree::PostDominator);
SliceResult sliceStructured(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceConservative(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceBallHorwitz(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceLyle(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceGallagher(const Analysis &A, const ResolvedCriterion &RC);
SliceResult sliceJiangZhouRobson(const Analysis &A,
                                 const ResolvedCriterion &RC);

/// Table-driven dispatch over SliceAlgorithm.
SliceResult computeSlice(const Analysis &A, const ResolvedCriterion &RC,
                         SliceAlgorithm Algorithm);

/// Convenience: resolve + slice in one call.
ErrorOr<SliceResult> computeSlice(const Analysis &A, const Criterion &Crit,
                                  SliceAlgorithm Algorithm);

} // namespace jslice

#endif // JSLICE_SLICER_SLICERS_H
