//===- slicer/BatchSlicer.h - All-criteria slicing engine --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch slicing engine. The paper's algorithms are defined per
/// criterion, but realistic clients (IDE highlighting, regression
/// triage) slice the same program against *many* criteria, and the
/// single-shot slicers re-walk the dependence graphs from scratch each
/// time. This engine condenses the PDG into strongly connected
/// components once (Tarjan over the union of control and data edges),
/// computes a per-SCC backward-reachability closure cache as dense
/// bitsets, and answers every criterion's conventional slice as a
/// bitset union. The Figure 7 / 12 / 13 jump-augmentation layers run on
/// top of the same cache, sharing the per-program postdominator and
/// lexical successor trees the Analysis already holds.
///
/// Results are bit-identical to the single-shot slicers (Slicers.h) for
/// every algorithm when the resource budget is not exhausted; a tripped
/// budget degrades per criterion into a DiagKind::ResourceExhausted
/// diagnostic, never a crash (see DESIGN.md, "Batch slicing engine").
///
/// An opt-in thread pool fans independent criteria across workers. The
/// Analysis' ResourceGuard is shared: each worker counts checkpoints
/// in a thread-local shard and flushes them to the real guard in
/// stride-sized batches (ResourceGuard::charge), reading only a shared
/// atomic trip flag on the fast path — the budget stays one
/// program-wide meter without a mutex acquisition per checkpoint.
/// Exhaustion is latched; a worker observes a trip at most one
/// locally-buffered stride late, so overshoot past the budget is
/// bounded by threads x stride checkpoints. *Which* criterion observes
/// the tripped budget first depends on scheduling, so budget-sensitive
/// tests should run single-threaded (the single-threaded path polls
/// the guard directly, checkpoint by checkpoint, preserving the exact
/// fault-injection ordinals the every-ordinal sweeps rely on).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_BATCHSLICER_H
#define JSLICE_SLICER_BATCHSLICER_H

#include "slicer/Slicers.h"
#include "support/BitVector.h"

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace jslice {

/// Shared-guard coordination for one fan-out run (defined in
/// BatchSlicer.cpp; opaque here).
struct BatchGuardState;

/// SCC condensation of one Pdg plus the memoized backward transitive
/// closure of every component, as bitsets over CFG node ids. Built once
/// per (program, dependence graph); immutable afterwards, so reads are
/// freely shareable across threads.
class DependenceClosure {
public:
  /// Condenses \p P (control and data edges together) over \p NumNodes
  /// nodes and computes every SCC's closure, charging one \p Guard
  /// checkpoint per node visited and per closure built. On exhaustion
  /// construction stops early and valid() is false.
  DependenceClosure(const Pdg &P, unsigned NumNodes,
                    ResourceGuard *Guard = nullptr);

  /// False when the guard tripped mid-build (closures unusable).
  bool valid() const { return Valid; }

  unsigned numNodes() const { return static_cast<unsigned>(SccId.size()); }
  unsigned numSccs() const { return static_cast<unsigned>(Closure.size()); }

  /// The component of \p Node (components are numbered in Tarjan
  /// completion order; ids are stable for one build only).
  unsigned sccOf(unsigned Node) const { return SccId[Node]; }

  /// The backward dependence closure of \p Node — every node it
  /// transitively depends on, itself included. Shared by all members of
  /// a component.
  const BitVector &closureOf(unsigned Node) const {
    return Closure[SccId[Node]];
  }

private:
  std::vector<unsigned> SccId;
  std::vector<BitVector> Closure;
  bool Valid = false;
};

/// One criterion's outcome in a batch run. `Result` is meaningful only
/// when `Ok`; otherwise `Diags` explains (unresolvable criterion or an
/// exhausted resource budget).
struct BatchEntry {
  Criterion Crit;
  bool Ok = false;
  SliceResult Result;
  DiagList Diags;
};

/// Knobs for BatchSlicer::runAll.
struct BatchOptions {
  SliceAlgorithm Algorithm = SliceAlgorithm::Agrawal;

  /// Worker threads; 0 means the JSLICE_THREADS environment variable,
  /// or the hardware concurrency when it is unset. Algorithms without a
  /// closure-cache implementation (Weiser) always run single-threaded.
  unsigned Threads = 0;
};

/// The all-criteria slicing engine. Construction condenses the PDG and
/// builds the closure cache; each query is then a bitset union plus the
/// (cheap) jump-augmentation layer of the chosen algorithm.
class BatchSlicer {
public:
  /// Builds the closure cache for \p A's PDG, charging A.guard().
  /// \p A must outlive the BatchSlicer.
  explicit BatchSlicer(const Analysis &A);
  ~BatchSlicer();

  BatchSlicer(const BatchSlicer &) = delete;
  BatchSlicer &operator=(const BatchSlicer &) = delete;

  const Analysis &analysis() const { return A; }

  /// The cache over the unaugmented PDG (for tests and introspection).
  const DependenceClosure &closures() const { return Cache; }

  /// One slice through the cache. Bit-identical to
  /// computeSlice(A, RC, Algorithm) modulo resource exhaustion;
  /// algorithms without a cache-backed implementation (Weiser) dispatch
  /// to the single-shot slicer.
  SliceResult slice(const ResolvedCriterion &RC,
                    SliceAlgorithm Algorithm) const;

  /// Cache-backed slice charged against an *external* per-request
  /// guard \p G instead of the analysis' own — the cross-request
  /// analysis cache's hit path, where the artifact's guard belongs to
  /// the request that built it (its deadline long expired) and must
  /// not be charged or raced on by later requests. Returns nullopt
  /// when the algorithm has no cache-backed implementation (Weiser) or
  /// when a closure cache this query needs failed to build; the caller
  /// then serves without the cache. A nullopt never charges \p G past
  /// the validity probe, and a returned slice is bit-identical to
  /// slice() modulo exhaustion of \p G (check G.exhausted(): a tripped
  /// guard means a partial slice that must be discarded).
  std::optional<SliceResult> sliceShared(const ResolvedCriterion &RC,
                                         SliceAlgorithm Algorithm,
                                         ResourceGuard &G) const;

  /// Resolves and slices every criterion, fanning across
  /// Opts.Threads workers. Entry order matches \p Crits. Exhaustion of
  /// the shared budget degrades the remaining entries into
  /// ResourceExhausted diagnostics.
  std::vector<BatchEntry> runAll(const std::vector<Criterion> &Crits,
                                 const BatchOptions &Opts = {}) const;

  /// The thread count used when BatchOptions::Threads is 0: the
  /// JSLICE_THREADS environment variable when set to a positive
  /// integer, otherwise std::thread::hardware_concurrency() (>= 1).
  static unsigned defaultThreads();

private:
  const Analysis &A;
  DependenceClosure Cache;
  /// Lazily built cache over the augmented PDG (Ball–Horwitz only).
  mutable std::once_flag AugOnce;
  mutable std::unique_ptr<DependenceClosure> AugCache;

  /// Resolves the closure cache for \p Algorithm, lazily building the
  /// augmented-PDG cache (Ball–Horwitz only) charged to \p G. \p Shared,
  /// when non-null, serializes that build against concurrent shard
  /// flushes on the same guard.
  const DependenceClosure *augFor(SliceAlgorithm Algorithm, ResourceGuard *G,
                                  BatchGuardState *Shared) const;
  SliceResult sliceLocked(const ResolvedCriterion &RC,
                          SliceAlgorithm Algorithm,
                          BatchGuardState *Shared) const;
};

/// One criterion per source line that holds a statement (empty variable
/// list, i.e. "the variables used at that line") — the batch engine's
/// "slice everything" enumeration, ascending by line.
std::vector<Criterion> allLineCriteria(const Analysis &A);

} // namespace jslice

#endif // JSLICE_SLICER_BATCHSLICER_H
