//===- slicer/WeiserSlicer.cpp - Weiser's iterative dataflow slicer -----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/WeiserSlicer.h"

#include "slicer/SlicerInternal.h"
#include "support/BitVector.h"

using namespace jslice;
using namespace jslice::detail;

namespace {

/// One run of the directly-relevant-variables dataflow: propagates
/// relevance backward to a fixpoint, adding every statement that
/// defines a relevant variable to \p Slice. \p Relevant[n] holds the
/// variables relevant at the *entry* of node n.
void propagateRelevance(const Analysis &A, std::vector<BitVector> &Relevant,
                        std::set<unsigned> &Slice) {
  const Cfg &C = A.cfg();
  const DefUse &DU = A.defUse();
  unsigned NumVars = DU.numVars();

  bool Changed = true;
  BitVector AtExit(NumVars);
  while (Changed) {
    Changed = false;
    for (unsigned Node = 0, E = C.numNodes(); Node != E; ++Node) {
      // Relevant at exit of Node: union over successors' entries.
      AtExit.clear();
      for (unsigned Succ : C.graph().succs(Node))
        AtExit |= Relevant[Succ];

      // Through the statement: kill definitions; a definition of a
      // relevant variable makes the statement's uses relevant and the
      // statement part of the slice.
      BitVector AtEntry = AtExit;
      bool DefinesRelevant = false;
      for (unsigned Var : DU.defsOf(Node)) {
        if (AtExit.test(Var))
          DefinesRelevant = true;
        AtEntry.reset(Var);
      }
      if (DefinesRelevant) {
        for (unsigned Var : DU.usesOf(Node))
          AtEntry.set(Var);
        if (Slice.insert(Node).second)
          Changed = true;
      }

      AtEntry |= Relevant[Node]; // Keep criterion/branch seeds.
      if (AtEntry != Relevant[Node]) {
        Relevant[Node] = std::move(AtEntry);
        Changed = true;
      }
    }
  }
}

} // namespace

SliceResult jslice::sliceWeiser(const Analysis &A,
                                const ResolvedCriterion &RC) {
  const Cfg &C = A.cfg();
  const DefUse &DU = A.defUse();

  SliceResult R;
  R.CriterionNode = RC.Node;
  R.Nodes.insert(RC.Node);
  R.Nodes.insert(C.entry());

  std::vector<BitVector> Relevant(C.numNodes(), BitVector(DU.numVars()));
  for (unsigned Var : RC.VarIds)
    Relevant[RC.Node].set(Var);

  // Alternate dataflow and branch inclusion until no branch is added.
  // INFL(b) — the statements whose execution b decides — is exactly
  // b's control-dependence successor set (FOW region between b and its
  // immediate postdominator).
  for (;;) {
    propagateRelevance(A, Relevant, R.Nodes);

    bool AddedBranch = false;
    for (unsigned B = 0, E = C.numNodes(); B != E; ++B) {
      if (C.node(B).Kind != CfgNodeKind::Predicate || R.contains(B))
        continue;
      bool Influences = false;
      for (unsigned Influenced : A.pdg().Control.succs(B))
        if (R.contains(Influenced))
          Influences = true;
      if (!Influences)
        continue;
      R.Nodes.insert(B);
      // The branch's condition variables become relevant at the branch.
      BitVector WithUses = Relevant[B];
      for (unsigned Var : DU.usesOf(B))
        WithUses.set(Var);
      if (WithUses != Relevant[B]) {
        Relevant[B] = std::move(WithUses);
      }
      AddedBranch = true;
    }
    if (!AddedBranch)
      break;
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}
