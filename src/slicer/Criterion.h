//===- slicer/Criterion.h - Slicing criteria ----------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Weiser slicing criterion (variables, location). Locations are
/// source line numbers, matching how the paper names them ("the slice
/// with respect to positives on line 12").
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_CRITERION_H
#define JSLICE_SLICER_CRITERION_H

#include "slicer/Analysis.h"

#include <string>
#include <vector>

namespace jslice {

/// User-facing criterion: a line and variable names. An empty Vars list
/// means "the variables used at that line".
struct Criterion {
  unsigned Line = 0;
  std::vector<std::string> Vars;

  Criterion() = default;
  Criterion(unsigned Line, std::vector<std::string> Vars)
      : Line(Line), Vars(std::move(Vars)) {}
};

/// Criterion resolved against a program: the CFG node at the location,
/// the interned variable ids, and the slice seeds (the criterion node
/// plus every definition of a criterion variable reaching it).
struct ResolvedCriterion {
  unsigned Node = 0;
  std::vector<unsigned> VarIds;
  std::vector<unsigned> Seeds;
};

/// Resolves \p Crit against \p A. Fails when the line holds no
/// statement or names an unknown variable. When several nodes start on
/// the line (e.g. `if (p) goto L;` is a predicate plus a jump), the
/// leftmost node is the criterion.
ErrorOr<ResolvedCriterion> resolveCriterion(const Analysis &A,
                                            const Criterion &Crit);

/// Weiser's general criterion is a *set* of (location, variables)
/// pairs; the slice must preserve all of them at once. Resolves each
/// and merges the seeds; the first location becomes the nominal
/// criterion node. Fails if \p Crits is empty or any member fails.
ErrorOr<ResolvedCriterion> resolveCriteria(const Analysis &A,
                                           const std::vector<Criterion> &Crits);

} // namespace jslice

#endif // JSLICE_SLICER_CRITERION_H
