//===- slicer/Analysis.h - One-stop analysis bundle --------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything the slicing algorithms consume, built once per program:
/// the CFG, the lexical successor tree, the postdominator tree, def/use
/// and reaching definitions, the program dependence graph, and — for the
/// Ball–Horwitz / Choi–Ferrante baseline — the augmented flowgraph with
/// its own postdominator tree and control dependence graph.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_ANALYSIS_H
#define JSLICE_SLICER_ANALYSIS_H

#include "cfg/Cfg.h"
#include "cfg/LexicalSuccessorTree.h"
#include "dataflow/DefUse.h"
#include "dataflow/ReachingDefinitions.h"
#include "graph/Dominators.h"
#include "lang/Parser.h"
#include "pdg/ControlDependence.h"
#include "pdg/Pdg.h"

#include <memory>
#include <string>
#include <vector>

namespace jslice {

/// Immutable analysis results for one program. Move-only.
///
/// Every construction path runs under a ResourceGuard built from the
/// supplied Budget (unlimited by default): the parser, CFG builder,
/// dominator fixpoints, reaching definitions, and control dependence
/// all poll it, and exhaustion surfaces as a DiagKind::ResourceExhausted
/// diagnostic — never a crash, hang, or partially-built Analysis. The
/// guard stays with the Analysis so later slicing traversals and
/// interpreter runs draw from the same budget.
class Analysis {
public:
  /// Parses, checks, and analyzes \p Source.
  static ErrorOr<Analysis> fromSource(const std::string &Source);

  /// As above, under \p B's resource limits.
  static ErrorOr<Analysis> fromSource(const std::string &Source,
                                      const Budget &B);

  /// Analyzes an already-checked program (takes ownership).
  static ErrorOr<Analysis> fromProgram(std::unique_ptr<Program> Prog);

  /// As above, under \p B's resource limits.
  static ErrorOr<Analysis> fromProgram(std::unique_ptr<Program> Prog,
                                       const Budget &B);

  /// The pipeline's resource meter. Mutable by design: slicers and the
  /// interpreter charge their work against the budget the Analysis was
  /// built under (the Analysis results themselves stay immutable).
  ResourceGuard &guard() const { return *GuardPtr; }

  const Program &program() const { return *ProgPtr; }
  const Cfg &cfg() const { return C; }
  const LexicalSuccessorTree &lst() const { return Lst; }
  const DomTree &pdt() const { return Pdt; }
  const DefUse &defUse() const { return DU; }
  const ReachingDefinitions &reachingDefs() const { return RD; }

  /// Dependence graphs from the *unaugmented* flowgraph (the paper's
  /// preferred construction — both graphs left intact).
  const Pdg &pdg() const { return P; }

  /// The Ball–Horwitz / Choi–Ferrante augmented flowgraph and the
  /// dependence graphs built from it (control from augmented, data from
  /// plain).
  const Digraph &augGraph() const { return AugGraph; }
  const DomTree &augPdt() const { return AugPdt; }
  const Pdg &augPdg() const { return AugP; }

  /// (Predicate node, jump node) pairs for every conditional-jump
  /// statement `if (p) goto/break/continue/return` — the paper's
  /// adaptation of the conventional algorithm needs them.
  const std::vector<std::pair<unsigned, unsigned>> &condJumpPairs() const {
    return CondJumps;
  }

private:
  Analysis(std::unique_ptr<Program> Prog, Cfg Built,
           std::shared_ptr<ResourceGuard> Guard);

  static ErrorOr<Analysis>
  fromProgramGuarded(std::unique_ptr<Program> Prog,
                     std::shared_ptr<ResourceGuard> Guard);

  std::shared_ptr<ResourceGuard> GuardPtr;
  std::unique_ptr<Program> ProgPtr;
  Cfg C;
  LexicalSuccessorTree Lst;
  DomTree Pdt;
  DefUse DU;
  ReachingDefinitions RD;
  Pdg P;
  Digraph AugGraph;
  DomTree AugPdt;
  Pdg AugP;
  std::vector<std::pair<unsigned, unsigned>> CondJumps;
};

} // namespace jslice

#endif // JSLICE_SLICER_ANALYSIS_H
