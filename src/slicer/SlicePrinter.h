//===- slicer/SlicePrinter.h - Textual slices ---------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a SliceResult as program text in the style of the paper's
/// figures: the surviving statements with their original line numbers,
/// and re-associated labels attached to their new carrier statements.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_SLICEPRINTER_H
#define JSLICE_SLICER_SLICEPRINTER_H

#include "slicer/Slicers.h"

#include <string>

namespace jslice {

/// Options for printSlice.
struct SlicePrintOptions {
  bool ShowLineNumbers = true;
};

/// The slice as Mini-C text (a projection of the original program).
std::string printSlice(const Analysis &A, const SliceResult &R,
                       const SlicePrintOptions &Opts = {});

/// One-line summary: "{2, 3, 4, 5, 8, 15} (6 lines)".
std::string summarizeSlice(const Analysis &A, const SliceResult &R);

} // namespace jslice

#endif // JSLICE_SLICER_SLICEPRINTER_H
