//===- slicer/ChoiFerranteSynthesis.cpp - Executable slices with new jumps ----===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/ChoiFerranteSynthesis.h"

#include "lang/PrettyPrinter.h"
#include "slicer/SlicerInternal.h"

#include <algorithm>

using namespace jslice;
using namespace jslice::detail;

std::set<unsigned> SynthesizedSlice::lineSet(const Cfg &C) const {
  std::set<unsigned> Lines;
  for (unsigned Node : Kept)
    if (const Stmt *S = C.node(Node).S)
      if (S->getLoc().isValid())
        Lines.insert(S->getLoc().Line);
  return Lines;
}

SynthesizedSlice
jslice::sliceChoiFerranteSynthesis(const Analysis &A,
                                   const ResolvedCriterion &RC) {
  const Cfg &C = A.cfg();
  SynthesizedSlice R;
  R.CriterionNode = RC.Node;

  // The statements the slice must keep: the augmented-PDG closure (so
  // every guard of every behaviour-relevant jump is present), minus the
  // original jump statements themselves — their routing is re-expressed
  // as synthesized transfers below.
  std::set<unsigned> Closure = A.augPdg().backwardClosure(RC.Seeds);
  for (unsigned Node : Closure)
    if (!C.node(Node).isJump())
      R.Kept.insert(Node);

  // Destination of a raw control transfer to \p Target: the nearest
  // kept postdominator. Every deleted node on the way is either a
  // non-branching statement, a predicate none of whose outcomes a kept
  // statement distinguishes (else it would be in the closure), or a
  // jump whose routing the postdominator walk absorbs.
  auto Destination = [&](unsigned Target) {
    unsigned Cur = Target;
    while (Cur != C.exit() && !R.Kept.count(Cur)) {
      int Up = A.pdt().idom(Cur);
      assert(Up >= 0 && "PDT walk escaped the tree");
      Cur = static_cast<unsigned>(Up);
    }
    return Cur;
  };

  // Textual fall-through destination: where the printed slice would go
  // without an explicit goto — the nearest kept lexical successor.
  auto TextualNext = [&](unsigned Target) {
    unsigned Cur = Target;
    while (Cur != C.exit() && !R.Kept.count(Cur)) {
      int Up = A.lst().parent(Cur);
      if (Up < 0)
        return C.exit();
      Cur = static_cast<unsigned>(Up);
    }
    return Cur;
  };

  for (unsigned Node : R.Kept) {
    if (Node == C.entry())
      continue;
    for (unsigned Target : C.graph().succs(Node)) {
      unsigned Dest = Destination(Target);
      R.Transfers[{Node, Target}] = Dest;
      if (Dest != TextualNext(Target))
        ++R.SynthesizedJumps;
    }
  }
  // Entry's transfer into the program body.
  for (unsigned Target : C.graph().succs(C.entry()))
    if (Target != C.exit())
      R.Transfers[{C.entry(), Target}] = Destination(Target);

  return R;
}

//===----------------------------------------------------------------------===//
// Flattened emission
//===----------------------------------------------------------------------===//

namespace {

/// The source text of one kept simple statement (no label, no newline).
std::string simpleStatementText(const Stmt *S) {
  switch (S->getKind()) {
  case StmtKind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    return Assign->getTarget() + " = " + printExpr(Assign->getValue()) + ";";
  }
  case StmtKind::Read:
    return "read(" + cast<ReadStmt>(S)->getTarget() + ");";
  case StmtKind::Write:
    return "write(" + printExpr(cast<WriteStmt>(S)->getValue()) + ");";
  case StmtKind::Empty:
    return ";";
  default:
    assert(false && "kept statements are simple or predicates");
    return ";";
  }
}

} // namespace

PrintedSynthesis jslice::printSynthesizedSlice(const Analysis &A,
                                               const SynthesizedSlice &S) {
  const Cfg &C = A.cfg();

  // Kept nodes in source order.
  std::vector<unsigned> Order(S.Kept.begin(), S.Kept.end());
  Order.erase(std::remove(Order.begin(), Order.end(), C.entry()),
              Order.end());
  std::sort(Order.begin(), Order.end(), [&](unsigned L, unsigned R) {
    SourceLoc A1 = C.node(L).S->getLoc();
    SourceLoc B1 = C.node(R).S->getLoc();
    return A1 != B1 ? A1 < B1 : L < R;
  });

  std::map<unsigned, std::string> LabelOf;
  for (size_t I = 0; I != Order.size(); ++I)
    LabelOf[Order[I]] = "S" + std::to_string(I);

  // A transfer rendered as a goto/return, or "" when it falls through
  // to the next emitted statement anyway.
  auto TransferText = [&](unsigned Dest, unsigned FallthroughTo,
                          bool AllowElision) -> std::string {
    if (Dest == C.exit())
      return "return;";
    if (AllowElision && Dest == FallthroughTo)
      return "";
    return "goto " + LabelOf.at(Dest) + ";";
  };

  PrintedSynthesis Out;
  unsigned Line = 1;
  auto Emit = [&](const std::string &Text) {
    Out.Text += Text + "\n";
    ++Line;
  };

  // Entry transfer: jump to the first executed kept node if it is not
  // the first emitted one.
  if (!Order.empty()) {
    unsigned Start = C.exit();
    for (unsigned Target : C.graph().succs(C.entry()))
      if (Target != C.exit())
        Start = S.Transfers.at({C.entry(), Target});
    if (Start == C.exit())
      Emit("return;");
    else if (Start != Order.front())
      Emit("goto " + LabelOf.at(Start) + ";");
  }

  for (size_t I = 0; I != Order.size(); ++I) {
    unsigned Node = Order[I];
    unsigned Next = I + 1 < Order.size() ? Order[I + 1] : C.exit();
    const CfgNode &Info = C.node(Node);
    std::string Label = LabelOf.at(Node) + ": ";

    if (Node == S.CriterionNode)
      Out.CriterionLine = Line;

    if (Info.Kind == CfgNodeKind::Statement) {
      unsigned Raw = C.graph().succs(Node).front();
      unsigned Dest = S.Transfers.at({Node, Raw});
      std::string Jump = TransferText(Dest, Next, /*AllowElision=*/true);
      Emit(Label + simpleStatementText(Info.S) +
           (Jump.empty() ? "" : " " + Jump));
      continue;
    }

    assert(Info.Kind == CfgNodeKind::Predicate && "unexpected kept node");
    if (const SwitchTargets *Switch = C.switchTargets(Node)) {
      std::string Head =
          Label + "switch (" + printExpr(Info.Cond) + ") {";
      for (auto [Value, Target] : Switch->Cases)
        Head += " case " + std::to_string(Value) + ": " +
                TransferText(S.Transfers.at({Node, Target}), Next,
                             /*AllowElision=*/false);
      Head += " default: " +
              TransferText(S.Transfers.at({Node, Switch->DefaultTarget}),
                           Next, /*AllowElision=*/false) +
              " }";
      Emit(Head);
      continue;
    }

    const BranchTargets *Branch = C.branchTargets(Node);
    assert(Branch && "predicate without branch targets");
    std::string Cond = Info.Cond ? printExpr(Info.Cond) : "1";
    unsigned TrueDest = S.Transfers.at({Node, Branch->TrueTarget});
    unsigned FalseDest = S.Transfers.at({Node, Branch->FalseTarget});
    std::string TrueJump =
        TransferText(TrueDest, Next, /*AllowElision=*/false);
    std::string FalseJump = TransferText(FalseDest, Next,
                                         /*AllowElision=*/true);
    if (FalseJump.empty())
      Emit(Label + "if (" + Cond + ") " + TrueJump);
    else
      Emit(Label + "if (" + Cond + ") " + TrueJump + " else " + FalseJump);
  }
  return Out;
}
