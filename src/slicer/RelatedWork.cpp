//===- slicer/RelatedWork.cpp - Lyle / Gallagher / JZR baselines --------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The Section 5 related-work algorithms, reconstructed from the paper's
/// descriptions (the primary sources are theses / proceedings the paper
/// summarizes):
///
///  * Lyle [22]: "except in certain degenerate cases, Lyle's algorithm
///    will include all jump statements that lie between S and loc in
///    the control flowgraph". A literal between-S-and-loc rule is
///    unsound for jumps that *abandon* the criterion path (a `return`
///    never lies "between" anything and loc, yet deleting it resurrects
///    the code after its loop), so this reconstruction takes the
///    maximally conservative reading the paper's Figure 3 discussion
///    describes — every jump statement is included, with its dependence
///    closure. Sound and extremely conservative, as the paper says.
///  * Gallagher [11]: include `goto L` when the basic block labeled L
///    contributes a statement to the slice and the goto's controlling
///    predicates are in the slice (break/continue/return are treated as
///    gotos with implicit labels, as the paper suggests). Iterated to a
///    fixpoint. Unsound: misses the goto on line 4 of Figure 16.
///  * Jiang–Zhou–Robson [18]: rule-based; the exact rules are not given
///    in the paper, so this is the documented approximation from
///    DESIGN.md — include a jump when its target node and all its
///    controlling predicates are already in the slice. Unsound: misses
///    the jumps on lines 11 and 13 of Figure 8, the failure the paper
///    reports.
///
//===----------------------------------------------------------------------===//

#include "slicer/SlicerInternal.h"

using namespace jslice;
using namespace jslice::detail;

//===----------------------------------------------------------------------===//
// Lyle
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceLyle(const Analysis &A, const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;

  std::vector<unsigned> Seeds = RC.Seeds;
  for (unsigned J : jumpNodes(A.cfg()))
    Seeds.push_back(J);
  closeWithAdaptation(A, A.pdg(), R.Nodes, std::move(Seeds));

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Gallagher
//===----------------------------------------------------------------------===//

namespace {

/// The basic block starting at \p Head: the maximal straight-line chain
/// of statement/predicate nodes beginning there.
std::vector<unsigned> basicBlockFrom(const Cfg &C, unsigned Head) {
  std::vector<unsigned> Block;
  unsigned Cur = Head;
  for (;;) {
    if (Cur == C.exit() || Cur == C.entry())
      break;
    Block.push_back(Cur);
    if (C.graph().succs(Cur).size() != 1)
      break;
    unsigned Next = C.graph().succs(Cur).front();
    if (C.graph().preds(Next).size() != 1)
      break;
    Cur = Next;
  }
  return Block;
}

} // namespace

SliceResult jslice::sliceGallagher(const Analysis &A,
                                   const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned J : jumpNodes(A.cfg())) {
      if (R.contains(J))
        continue;
      std::optional<unsigned> Target = A.cfg().jumpTarget(J);
      if (!Target)
        continue; // Unresolved (cannot happen post-sema).
      bool TargetBlockInSlice = false;
      for (unsigned Node : basicBlockFrom(A.cfg(), *Target))
        if (R.contains(Node))
          TargetBlockInSlice = true;
      if (*Target == A.cfg().exit())
        TargetBlockInSlice = true; // Returns always "reach" their block.
      if (!TargetBlockInSlice)
        continue;
      if (!allControllingPredicatesInSlice(A.pdg(), J, R.Nodes))
        continue;
      closeWithAdaptation(A, A.pdg(), R.Nodes, {J});
      Changed = true;
    }
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Jiang–Zhou–Robson (approximation; see file header)
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceJiangZhouRobson(const Analysis &A,
                                         const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);

  for (unsigned J : jumpNodes(A.cfg())) {
    if (R.contains(J))
      continue;
    std::optional<unsigned> Target = A.cfg().jumpTarget(J);
    if (!Target)
      continue;
    bool TargetInSlice = *Target == A.cfg().exit() || R.contains(*Target);
    if (TargetInSlice &&
        allControllingPredicatesInSlice(A.pdg(), J, R.Nodes))
      R.Nodes.insert(J);
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}
