//===- slicer/Criterion.cpp - Slicing criteria ---------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/Criterion.h"

#include <algorithm>

using namespace jslice;

ErrorOr<ResolvedCriterion> jslice::resolveCriterion(const Analysis &A,
                                                    const Criterion &Crit) {
  const Cfg &C = A.cfg();
  std::vector<unsigned> OnLine = C.nodesOnLine(Crit.Line);
  if (OnLine.empty()) {
    DiagList Diags;
    Diags.report(SourceLoc(Crit.Line, 1),
                 "no statement on criterion line " +
                     std::to_string(Crit.Line));
    return Diags;
  }

  // The leftmost node on the line is the criterion statement.
  unsigned Node = *std::min_element(
      OnLine.begin(), OnLine.end(), [&](unsigned L, unsigned R) {
        SourceLoc LocL = C.node(L).S->getLoc();
        SourceLoc LocR = C.node(R).S->getLoc();
        return LocL != LocR ? LocL < LocR : L < R;
      });

  ResolvedCriterion Resolved;
  Resolved.Node = Node;

  if (Crit.Vars.empty()) {
    Resolved.VarIds = A.defUse().usesOf(Node);
  } else {
    for (const std::string &Name : Crit.Vars) {
      int Var = A.defUse().varId(Name);
      if (Var < 0) {
        DiagList Diags;
        Diags.report(SourceLoc(Crit.Line, 1),
                     "criterion variable '" + Name +
                         "' does not occur in the program");
        return Diags;
      }
      Resolved.VarIds.push_back(static_cast<unsigned>(Var));
    }
  }

  Resolved.Seeds.push_back(Node);
  for (unsigned Var : Resolved.VarIds)
    for (unsigned Def : A.reachingDefs().reachingDefNodes(Node, Var))
      Resolved.Seeds.push_back(Def);
  return Resolved;
}

ErrorOr<ResolvedCriterion>
jslice::resolveCriteria(const Analysis &A,
                        const std::vector<Criterion> &Crits) {
  if (Crits.empty()) {
    DiagList Diags;
    Diags.report(SourceLoc(), "a slicing criterion set must not be empty");
    return Diags;
  }
  ResolvedCriterion Merged;
  bool First = true;
  for (const Criterion &Crit : Crits) {
    ErrorOr<ResolvedCriterion> One = resolveCriterion(A, Crit);
    if (!One)
      return One.diags();
    if (First) {
      Merged.Node = One->Node;
      Merged.VarIds = One->VarIds;
      First = false;
    }
    for (unsigned Seed : One->Seeds)
      Merged.Seeds.push_back(Seed);
    // Every criterion node is itself a seed, so the slice contains all
    // of them even though only the first is the nominal node.
  }
  return Merged;
}
