//===- slicer/SlicePrinter.cpp - Textual slices --------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/SlicePrinter.h"

#include "lang/PrettyPrinter.h"
#include "support/StringUtils.h"

using namespace jslice;

std::string jslice::printSlice(const Analysis &A, const SliceResult &R,
                               const SlicePrintOptions &Opts) {
  std::set<unsigned> KeepIds = R.stmtIds(A.cfg());

  // Re-associated labels keyed by the carrier statement's id (or the
  // trailing-exit key when the label outlived every statement). The
  // original definitions are suppressed: a label can leave a compound's
  // entry node while the compound itself stays printed, and printing
  // the label in both places would define it twice.
  std::map<unsigned, std::vector<std::string>> ExtraLabels;
  std::set<std::string> MovedLabels;
  for (const auto &[Label, Node] : R.ReassociatedLabels) {
    MovedLabels.insert(Label);
    if (Node == A.cfg().exit()) {
      ExtraLabels[PrintOptions::ExitLabelKey].push_back(Label);
      continue;
    }
    const Stmt *Carrier = A.cfg().node(Node).S;
    assert(Carrier && "label re-associated to a non-statement node");
    ExtraLabels[Carrier->getId()].push_back(Label);
  }

  PrintOptions PO;
  PO.ShowLineNumbers = Opts.ShowLineNumbers;
  PO.KeepIds = &KeepIds;
  PO.ExtraLabels = &ExtraLabels;
  PO.SuppressLabels = &MovedLabels;
  return printProgram(A.program(), PO);
}

std::string jslice::summarizeSlice(const Analysis &A, const SliceResult &R) {
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  return formatLineSet(Lines) + " (" + std::to_string(Lines.size()) +
         " lines)";
}
