//===- slicer/WeiserSlicer.h - Weiser's iterative dataflow slicer -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Weiser's original slicing algorithm [29 in the paper], reconstructed
/// from its classic description: iterate *relevant-variable* sets
/// backward over the flowgraph, take the statements that define a
/// relevant variable, then repeatedly add branch statements whose
/// influence range contains a slice statement (their condition
/// variables become relevant at every point in the range) until a
/// fixpoint.
///
/// The paper's Section 5 makes two claims about it that the test suite
/// verifies:
///  * it determines the right *predicates* even in the presence of
///    jump statements (the influence ranges come from postdominators,
///    which are defined for arbitrary flowgraphs); and
///  * it makes no attempt to include the jump statements themselves —
///    the defect the paper exists to fix.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_WEISERSLICER_H
#define JSLICE_SLICER_WEISERSLICER_H

#include "slicer/Slicers.h"

namespace jslice {

/// Weiser's dataflow slice of \p RC. The result's node set never
/// contains a jump node; labels are re-associated for printing just
/// like the other slicers' results.
SliceResult sliceWeiser(const Analysis &A, const ResolvedCriterion &RC);

} // namespace jslice

#endif // JSLICE_SLICER_WEISERSLICER_H
