//===- slicer/BatchSlicer.cpp - All-criteria slicing engine ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Implementation notes. The cache answers "backward dependence closure
/// of node n" in O(numNodes / 64) words; every slicing algorithm is then
/// re-expressed over bitsets:
///
///  * the conventional core (closure of the seeds plus the
///    conditional-jump adaptation fixpoint) becomes a union of cached
///    closures, iterated over the (predicate, jump) pair list;
///  * the Figure 7 / 12 / 13 layers keep their exact traversal
///    structure — same trees, same visit order, same add conditions —
///    but membership tests and closure growth run on the bitset;
///  * the related-work baselines (Lyle, Gallagher, JZR, Ball–Horwitz)
///    follow the same scheme; only Weiser, whose iterative-dataflow
///    machinery shares nothing with the PDG, dispatches to the
///    single-shot slicer.
///
/// Equality with the single-shot slicers is enforced by unit tests on
/// every paper figure, a PropertyTest generator case, and the stress
/// harness's batch cross-check (tools/jslice_stress.cpp).
///
//===----------------------------------------------------------------------===//

#include "slicer/BatchSlicer.h"

#include "slicer/SlicerInternal.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <optional>
#include <set>
#include <thread>

using namespace jslice;
using namespace jslice::detail;

//===----------------------------------------------------------------------===//
// DependenceClosure: Tarjan condensation + per-SCC closure bitsets
//===----------------------------------------------------------------------===//

namespace {

/// Iterative Tarjan SCC over the union of the control and data edges
/// (recursion would overflow on the deep dependence chains long
/// generated programs produce). Fills \p SccId and returns the SCC
/// member lists in Tarjan completion order (every component is emitted
/// after all components it has edges into).
class TarjanScc {
public:
  TarjanScc(const Pdg &P, unsigned NumNodes, ResourceGuard *Guard)
      : P(P), NumNodes(NumNodes), Guard(Guard) {}

  bool run(std::vector<unsigned> &SccId,
           std::vector<std::vector<unsigned>> &Components) {
    Index.assign(NumNodes, Unvisited);
    LowLink.assign(NumNodes, 0);
    OnStack.assign(NumNodes, false);
    SccId.assign(NumNodes, 0);

    for (unsigned Root = 0; Root != NumNodes; ++Root) {
      if (Index[Root] != Unvisited)
        continue;
      if (!strongConnect(Root, SccId, Components))
        return false;
    }
    return true;
  }

private:
  static constexpr unsigned Unvisited = ~0u;

  /// One DFS frame: the node and the position within its (virtual)
  /// successor list, where positions [0, control) index control succs
  /// and [control, control + data) index data succs.
  struct Frame {
    unsigned Node;
    unsigned NextSucc = 0;
  };

  unsigned succCount(unsigned Node) const {
    return static_cast<unsigned>(P.Control.succs(Node).size() +
                                 P.Data.succs(Node).size());
  }

  unsigned succAt(unsigned Node, unsigned I) const {
    const auto &Ctrl = P.Control.succs(Node);
    if (I < Ctrl.size())
      return Ctrl[I];
    return P.Data.succs(Node)[I - Ctrl.size()];
  }

  bool strongConnect(unsigned Root, std::vector<unsigned> &SccId,
                     std::vector<std::vector<unsigned>> &Components) {
    std::vector<Frame> Dfs;
    Dfs.push_back({Root});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Dfs.empty()) {
      if (Guard && !Guard->checkpoint("batch.scc"))
        return false;
      Frame &Top = Dfs.back();
      unsigned Node = Top.Node;
      if (Top.NextSucc < succCount(Node)) {
        unsigned Succ = succAt(Node, Top.NextSucc++);
        if (Index[Succ] == Unvisited) {
          Index[Succ] = LowLink[Succ] = NextIndex++;
          Stack.push_back(Succ);
          OnStack[Succ] = true;
          Dfs.push_back({Succ});
        } else if (OnStack[Succ]) {
          LowLink[Node] = std::min(LowLink[Node], Index[Succ]);
        }
        continue;
      }

      if (LowLink[Node] == Index[Node]) {
        std::vector<unsigned> Members;
        unsigned Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          SccId[Member] = static_cast<unsigned>(Components.size());
          Members.push_back(Member);
        } while (Member != Node);
        Components.push_back(std::move(Members));
      }

      Dfs.pop_back();
      if (!Dfs.empty()) {
        unsigned Parent = Dfs.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Node]);
      }
    }
    return true;
  }

  const Pdg &P;
  unsigned NumNodes;
  ResourceGuard *Guard;

  unsigned NextIndex = 0;
  std::vector<unsigned> Index;
  std::vector<unsigned> LowLink;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
};

} // namespace

DependenceClosure::DependenceClosure(const Pdg &P, unsigned NumNodes,
                                     ResourceGuard *Guard) {
  std::vector<std::vector<unsigned>> Components;
  if (!TarjanScc(P, NumNodes, Guard).run(SccId, Components))
    return; // Guard tripped; Valid stays false.

  // Closure of a component = its own members plus the closures of every
  // predecessor component. Tarjan emits a component only after every
  // component it points *into*, so its predecessors (the components
  // pointing into it) appear later in emission order — walking the
  // emission list in reverse therefore sees every predecessor's closure
  // before it is needed.
  unsigned NumSccs = static_cast<unsigned>(Components.size());
  Closure.assign(NumSccs, BitVector());
  std::vector<unsigned> LastMerged(NumSccs, ~0u);

  for (unsigned Scc = NumSccs; Scc-- != 0;) {
    if (Guard && !Guard->checkpoint("batch.closure"))
      return; // Valid stays false.
    BitVector &Out = Closure[Scc];
    Out.resize(NumNodes);
    for (unsigned Node : Components[Scc]) {
      Out.set(Node);
      auto MergePreds = [&](const Digraph &G) {
        for (unsigned Pred : G.preds(Node)) {
          unsigned PredScc = SccId[Pred];
          if (PredScc == Scc || LastMerged[PredScc] == Scc)
            continue;
          LastMerged[PredScc] = Scc;
          Out |= Closure[PredScc];
        }
      };
      MergePreds(P.Control);
      MergePreds(P.Data);
    }
  }
  Valid = true;
}

//===----------------------------------------------------------------------===//
// Guard sharing across worker threads
//===----------------------------------------------------------------------===//

namespace jslice {

/// Coordination for one fan-out run over a shared ResourceGuard
/// (which is single-threaded by design): the mutex serializes bulk
/// charges, the flag latches an observed trip so every worker's fast
/// path is one relaxed atomic load.
struct BatchGuardState {
  std::mutex M;
  std::atomic<bool> Tripped{false};
};

} // namespace jslice

namespace {

/// The batch engine's view of the pipeline guard: direct in
/// single-threaded runs (preserving exact per-checkpoint
/// fault-injection ordinals). When criteria fan out across workers,
/// each GuardRef buffers its checkpoints locally and flushes them to
/// the shared guard in stride-sized batches through
/// ResourceGuard::charge() — the shared mutex is taken once per
/// stride, not once per checkpoint, which is what lets the pool scale
/// past a single core. A trip observed by any worker latches the
/// shared flag; others notice at their next checkpoint, so overshoot
/// is bounded by one buffered stride per worker.
class GuardRef {
public:
  GuardRef(ResourceGuard &G, BatchGuardState *Shared)
      : G(G), Shared(Shared),
        FlushStride(Shared ? G.budget().effectivePollStride() : 0) {}

  GuardRef(const GuardRef &) = delete;
  GuardRef &operator=(const GuardRef &) = delete;

  /// Merge-on-exit: steps buffered below the flush stride still reach
  /// the shared meter when the worker finishes its criterion.
  ~GuardRef() {
    if (Shared && Pending)
      flushPending("batch.flush");
  }

  bool checkpoint(const char *Site) const {
    if (!Shared)
      return G.checkpoint(Site);
    if (Shared->Tripped.load(std::memory_order_relaxed))
      return false;
    if (++Pending < FlushStride)
      return true;
    return flushPending(Site);
  }

  bool exhausted() const {
    if (!Shared)
      return G.exhausted();
    if (Pending)
      flushPending("batch.flush");
    if (Shared->Tripped.load(std::memory_order_relaxed))
      return true;
    std::lock_guard<std::mutex> Lock(Shared->M);
    if (!G.exhausted())
      return false;
    Shared->Tripped.store(true, std::memory_order_relaxed);
    return true;
  }

  Diag toDiag() const {
    if (!Shared)
      return G.toDiag();
    std::lock_guard<std::mutex> Lock(Shared->M);
    return G.toDiag();
  }

private:
  bool flushPending(const char *Site) const {
    uint64_t N = Pending;
    Pending = 0;
    std::lock_guard<std::mutex> Lock(Shared->M);
    if (G.charge(N, Site))
      return true;
    Shared->Tripped.store(true, std::memory_order_relaxed);
    return false;
  }

  ResourceGuard &G;
  BatchGuardState *Shared;
  uint64_t FlushStride;
  mutable uint64_t Pending = 0;
};

//===----------------------------------------------------------------------===//
// Bitset re-implementations of the slicing algorithms
//===----------------------------------------------------------------------===//

/// closeWithAdaptation over the closure cache: union the seeds'
/// closures, then iterate the conditional-jump adaptation (a predicate
/// in the slice drags in its jump, with the jump's closure) to a
/// fixpoint. Returns false when the guard trips (partial slice, exactly
/// like the single-shot path).
bool closeBV(const Analysis &A, const DependenceClosure &Cache,
             const GuardRef &Guard, BitVector &Slice,
             const std::vector<unsigned> &Seeds) {
  for (unsigned Seed : Seeds) {
    if (!Guard.checkpoint("batch.close"))
      return false;
    Slice |= Cache.closureOf(Seed);
  }
  for (;;) {
    bool Adapted = false;
    for (auto [Pred, Jump] : A.condJumpPairs()) {
      if (Slice.test(Pred) && !Slice.test(Jump)) {
        if (!Guard.checkpoint("batch.close"))
          return false;
        Slice |= Cache.closureOf(Jump);
        Adapted = true;
      }
    }
    if (!Adapted)
      return true;
  }
}

unsigned nearestPostdomInSliceBV(const Analysis &A, unsigned Node,
                                 const BitVector &Slice) {
  int Cur = A.pdt().idom(Node);
  while (Cur >= 0) {
    unsigned N = static_cast<unsigned>(Cur);
    if (N == A.cfg().exit() || Slice.test(N))
      return N;
    Cur = A.pdt().idom(N);
  }
  return A.cfg().exit();
}

unsigned nearestLexSuccInSliceBV(const Analysis &A, unsigned Node,
                                 const BitVector &Slice) {
  int Cur = A.lst().parent(Node);
  while (Cur >= 0) {
    unsigned N = static_cast<unsigned>(Cur);
    if (N == A.cfg().exit() || Slice.test(N))
      return N;
    Cur = A.lst().parent(N);
  }
  return A.cfg().exit();
}

bool hasControllingPredicateBV(const Pdg &P, unsigned Node,
                               const BitVector &Slice) {
  for (unsigned Pred : P.Control.preds(Node))
    if (Slice.test(Pred))
      return true;
  return false;
}

bool allControllingPredicatesBV(const Pdg &P, unsigned Node,
                                const BitVector &Slice) {
  for (unsigned Pred : P.Control.preds(Node))
    if (!Slice.test(Pred))
      return false;
  return true;
}

/// Converts the working bitset into the public SliceResult form and
/// runs the Figure 7 final step (label re-association).
void finishResult(const Analysis &A, const BitVector &Slice,
                  SliceResult &R) {
  Slice.forEachSetBit([&](size_t Node) {
    R.Nodes.insert(static_cast<unsigned>(Node));
  });
  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
}

SliceResult sliceAgrawalBV(const Analysis &A, const DependenceClosure &Cache,
                           const GuardRef &Guard,
                           const ResolvedCriterion &RC, TraversalTree Tree) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  if (!closeBV(A, Cache, Guard, Slice, RC.Seeds)) {
    finishResult(A, Slice, R);
    return R;
  }

  const std::vector<unsigned> &Order = Tree == TraversalTree::PostDominator
                                           ? A.pdt().preorder()
                                           : A.lst().preorder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Traversals;
    std::vector<unsigned> AddedThisPass;
    for (unsigned J : Order) {
      if (!A.cfg().node(J).isJump() || Slice.test(J))
        continue;
      if (!Guard.checkpoint("batch.traversal")) {
        if (Changed) {
          ++R.ProductiveTraversals;
          R.TraversalAdditions.push_back(std::move(AddedThisPass));
        }
        finishResult(A, Slice, R);
        return R;
      }
      unsigned NearestPd = nearestPostdomInSliceBV(A, J, Slice);
      unsigned NearestLs = nearestLexSuccInSliceBV(A, J, Slice);
      if (NearestPd == NearestLs)
        continue;
      if (!closeBV(A, Cache, Guard, Slice, {J})) {
        AddedThisPass.push_back(J);
        ++R.ProductiveTraversals;
        R.TraversalAdditions.push_back(std::move(AddedThisPass));
        finishResult(A, Slice, R);
        return R;
      }
      AddedThisPass.push_back(J);
      Changed = true;
    }
    if (Changed) {
      ++R.ProductiveTraversals;
      R.TraversalAdditions.push_back(std::move(AddedThisPass));
    }
  }

  finishResult(A, Slice, R);
  return R;
}

SliceResult sliceStructuredBV(const Analysis &A,
                              const DependenceClosure &Cache,
                              const GuardRef &Guard,
                              const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, RC.Seeds);

  R.Traversals = 1;
  for (unsigned J : A.pdt().preorder()) {
    if (!A.cfg().node(J).isJump() || Slice.test(J))
      continue;
    if (!hasControllingPredicateBV(A.pdg(), J, Slice))
      continue;
    if (nearestPostdomInSliceBV(A, J, Slice) ==
        nearestLexSuccInSliceBV(A, J, Slice))
      continue;
    Slice.set(J);
    R.ProductiveTraversals = 1;
  }

  finishResult(A, Slice, R);
  return R;
}

SliceResult sliceConservativeBV(const Analysis &A,
                                const DependenceClosure &Cache,
                                const GuardRef &Guard,
                                const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, RC.Seeds);

  for (unsigned J : jumpNodes(A.cfg()))
    if (!Slice.test(J) && hasControllingPredicateBV(A.pdg(), J, Slice))
      Slice.set(J);

  finishResult(A, Slice, R);
  return R;
}

SliceResult sliceLyleBV(const Analysis &A, const DependenceClosure &Cache,
                        const GuardRef &Guard, const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  std::vector<unsigned> Seeds = RC.Seeds;
  for (unsigned J : jumpNodes(A.cfg()))
    Seeds.push_back(J);
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, Seeds);
  finishResult(A, Slice, R);
  return R;
}

/// Mirrors RelatedWork.cpp's basicBlockFrom (Gallagher's target-block
/// rule needs the same block notion the single-shot slicer uses).
std::vector<unsigned> basicBlockFromBV(const Cfg &C, unsigned Head) {
  std::vector<unsigned> Block;
  unsigned Cur = Head;
  for (;;) {
    if (Cur == C.exit() || Cur == C.entry())
      break;
    Block.push_back(Cur);
    if (C.graph().succs(Cur).size() != 1)
      break;
    unsigned Next = C.graph().succs(Cur).front();
    if (C.graph().preds(Next).size() != 1)
      break;
    Cur = Next;
  }
  return Block;
}

SliceResult sliceGallagherBV(const Analysis &A,
                             const DependenceClosure &Cache,
                             const GuardRef &Guard,
                             const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, RC.Seeds);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned J : jumpNodes(A.cfg())) {
      if (Slice.test(J))
        continue;
      std::optional<unsigned> Target = A.cfg().jumpTarget(J);
      if (!Target)
        continue;
      bool TargetBlockInSlice = *Target == A.cfg().exit();
      for (unsigned Node : basicBlockFromBV(A.cfg(), *Target))
        if (Slice.test(Node))
          TargetBlockInSlice = true;
      if (!TargetBlockInSlice)
        continue;
      if (!allControllingPredicatesBV(A.pdg(), J, Slice))
        continue;
      if (!closeBV(A, Cache, Guard, Slice, {J})) {
        finishResult(A, Slice, R);
        return R;
      }
      Changed = true;
    }
  }

  finishResult(A, Slice, R);
  return R;
}

SliceResult sliceJzrBV(const Analysis &A, const DependenceClosure &Cache,
                       const GuardRef &Guard, const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, RC.Seeds);

  for (unsigned J : jumpNodes(A.cfg())) {
    if (Slice.test(J))
      continue;
    std::optional<unsigned> Target = A.cfg().jumpTarget(J);
    if (!Target)
      continue;
    bool TargetInSlice = *Target == A.cfg().exit() || Slice.test(*Target);
    if (TargetInSlice && allControllingPredicatesBV(A.pdg(), J, Slice))
      Slice.set(J);
  }

  finishResult(A, Slice, R);
  return R;
}

SliceResult sliceSimpleClosureBV(const Analysis &A,
                                 const DependenceClosure &Cache,
                                 const GuardRef &Guard,
                                 const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  BitVector Slice(A.cfg().numNodes());
  closeBV(A, Cache, Guard, Slice, RC.Seeds);
  finishResult(A, Slice, R);
  return R;
}

/// The algorithm switch over the bitset implementations. \p Aug is the
/// resolved augmented-PDG cache (Ball–Horwitz only, null otherwise);
/// an invalid \p Aug means its build tripped the guard — the guard is
/// latched, so return the same empty partial slice the checkpoint
/// failure would have produced instead of indexing a half-built cache.
SliceResult dispatchBV(const Analysis &A, const DependenceClosure &Cache,
                       const DependenceClosure *Aug, const GuardRef &Guard,
                       const ResolvedCriterion &RC,
                       SliceAlgorithm Algorithm) {
  switch (Algorithm) {
  case SliceAlgorithm::Conventional:
    return sliceSimpleClosureBV(A, Cache, Guard, RC);
  case SliceAlgorithm::Agrawal:
    return sliceAgrawalBV(A, Cache, Guard, RC,
                          TraversalTree::PostDominator);
  case SliceAlgorithm::AgrawalLst:
    return sliceAgrawalBV(A, Cache, Guard, RC,
                          TraversalTree::LexicalSuccessor);
  case SliceAlgorithm::Structured:
    return sliceStructuredBV(A, Cache, Guard, RC);
  case SliceAlgorithm::Conservative:
    return sliceConservativeBV(A, Cache, Guard, RC);
  case SliceAlgorithm::BallHorwitz: {
    if (!Aug || !Aug->valid()) {
      SliceResult R;
      R.CriterionNode = RC.Node;
      finishResult(A, BitVector(A.cfg().numNodes()), R);
      return R;
    }
    return sliceSimpleClosureBV(A, *Aug, Guard, RC);
  }
  case SliceAlgorithm::Lyle:
    return sliceLyleBV(A, Cache, Guard, RC);
  case SliceAlgorithm::Gallagher:
    return sliceGallagherBV(A, Cache, Guard, RC);
  case SliceAlgorithm::JiangZhouRobson:
    return sliceJzrBV(A, Cache, Guard, RC);
  case SliceAlgorithm::Weiser:
    break; // Handled by the callers (no cache-backed implementation).
  }
  assert(false && "unknown slicing algorithm");
  return SliceResult();
}

} // namespace

//===----------------------------------------------------------------------===//
// BatchSlicer
//===----------------------------------------------------------------------===//

BatchSlicer::BatchSlicer(const Analysis &A)
    : A(A), Cache(A.pdg(), A.cfg().numNodes(), &A.guard()) {}

BatchSlicer::~BatchSlicer() = default;

const DependenceClosure *BatchSlicer::augFor(SliceAlgorithm Algorithm,
                                             ResourceGuard *G,
                                             BatchGuardState *Shared) const {
  if (Algorithm != SliceAlgorithm::BallHorwitz)
    return nullptr;
  std::call_once(AugOnce, [&] {
    // The build charges \p G directly; under fan-out that guard is
    // shared with workers flushing shards, so hold the shard mutex for
    // the build's duration (waiters on call_once block anyway).
    if (Shared) {
      std::lock_guard<std::mutex> Lock(Shared->M);
      AugCache = std::make_unique<DependenceClosure>(
          A.augPdg(), A.cfg().numNodes(), G);
    } else {
      AugCache = std::make_unique<DependenceClosure>(
          A.augPdg(), A.cfg().numNodes(), G);
    }
  });
  return AugCache.get();
}

SliceResult BatchSlicer::slice(const ResolvedCriterion &RC,
                               SliceAlgorithm Algorithm) const {
  return sliceLocked(RC, Algorithm, nullptr);
}

std::optional<SliceResult>
BatchSlicer::sliceShared(const ResolvedCriterion &RC,
                         SliceAlgorithm Algorithm, ResourceGuard &G) const {
  if (Algorithm == SliceAlgorithm::Weiser)
    return std::nullopt; // Iterative dataflow; nothing cached to reuse.
  if (!Cache.valid())
    return std::nullopt;
  const DependenceClosure *Aug = augFor(Algorithm, &G, nullptr);
  if (Algorithm == SliceAlgorithm::BallHorwitz && (!Aug || !Aug->valid()))
    return std::nullopt; // First builder's budget tripped; stay uncached.
  GuardRef Guard{G, nullptr};
  return dispatchBV(A, Cache, Aug, Guard, RC, Algorithm);
}

SliceResult BatchSlicer::sliceLocked(const ResolvedCriterion &RC,
                                     SliceAlgorithm Algorithm,
                                     BatchGuardState *Shared) const {
  if (Algorithm == SliceAlgorithm::Weiser)
    // No PDG to cache; Weiser's iterative dataflow runs single-shot
    // (runAll serializes these — see below).
    return computeSlice(A, RC, SliceAlgorithm::Weiser);
  const DependenceClosure *Aug = augFor(Algorithm, &A.guard(), Shared);
  GuardRef Guard{A.guard(), Shared};
  return dispatchBV(A, Cache, Aug, Guard, RC, Algorithm);
}

unsigned BatchSlicer::defaultThreads() {
  if (const char *Env = std::getenv("JSLICE_THREADS")) {
    char *End = nullptr;
    long N = std::strtol(Env, &End, 10);
    if (End && *End == '\0' && N > 0 && N <= 1024)
      return static_cast<unsigned>(N);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

std::vector<BatchEntry>
BatchSlicer::runAll(const std::vector<Criterion> &Crits,
                    const BatchOptions &Opts) const {
  std::vector<BatchEntry> Out(Crits.size());
  for (size_t I = 0; I != Crits.size(); ++I)
    Out[I].Crit = Crits[I];

  unsigned Threads = Opts.Threads ? Opts.Threads : defaultThreads();
  // Weiser has no cache-backed implementation: its single-shot slicer
  // polls the guard directly, so concurrent criteria would race on it.
  if (Opts.Algorithm == SliceAlgorithm::Weiser)
    Threads = 1;
  if (Threads > Crits.size())
    Threads = static_cast<unsigned>(Crits.size() ? Crits.size() : 1);

  BatchGuardState Shared;
  BatchGuardState *SharedPtr = Threads > 1 ? &Shared : nullptr;

  auto SliceOne = [&](size_t I) {
    BatchEntry &Entry = Out[I];
    GuardRef Guard{A.guard(), SharedPtr};
    if (!Cache.valid() || Guard.exhausted()) {
      Entry.Diags.report(SourceLoc(), Guard.toDiag().Message,
                         DiagKind::ResourceExhausted);
      return;
    }
    ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Entry.Crit);
    if (!RC) {
      Entry.Diags = RC.diags();
      return;
    }
    SliceResult R = sliceLocked(*RC, Opts.Algorithm, SharedPtr);
    if (Guard.exhausted()) {
      Entry.Diags.report(SourceLoc(), Guard.toDiag().Message,
                         DiagKind::ResourceExhausted);
      return;
    }
    Entry.Ok = true;
    Entry.Result = std::move(R);
  };

  WorkerPool::parallelFor(Threads, Crits.size(), SliceOne);
  return Out;
}

//===----------------------------------------------------------------------===//
// Criterion enumeration
//===----------------------------------------------------------------------===//

std::vector<Criterion> jslice::allLineCriteria(const Analysis &A) {
  std::set<unsigned> Lines;
  const Cfg &C = A.cfg();
  for (unsigned Node = 0, E = C.numNodes(); Node != E; ++Node)
    if (const Stmt *S = C.node(Node).S)
      if (S->getLoc().isValid())
        Lines.insert(S->getLoc().Line);
  std::vector<Criterion> Out;
  Out.reserve(Lines.size());
  for (unsigned Line : Lines)
    Out.emplace_back(Line, std::vector<std::string>());
  return Out;
}
