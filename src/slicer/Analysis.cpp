//===- slicer/Analysis.cpp - One-stop analysis bundle ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/Analysis.h"

#include "lang/AstWalk.h"

using namespace jslice;

namespace {

/// Unwraps single-statement blocks: `{ { goto L; } }` -> `goto L;`.
const Stmt *unwrapSingleton(const Stmt *S) {
  while (const auto *Block = dyn_cast<BlockStmt>(S)) {
    if (Block->getBody().size() != 1)
      return S;
    S = Block->getBody().front();
  }
  return S;
}

/// Collects the (predicate, jump) node pairs of conditional-jump
/// statements: an if without else whose entire body is one unconditional
/// jump. The paper's conventional-algorithm adaptation ties the two.
std::vector<std::pair<unsigned, unsigned>> findCondJumpPairs(const Cfg &C) {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (const Stmt *Top : C.program().topLevel()) {
    walkStmtTree(Top, [&](const Stmt *S) {
      const auto *If = dyn_cast<IfStmt>(S);
      if (!If || If->hasElse())
        return;
      const Stmt *Body = unwrapSingleton(If->getThen());
      if (!Body->isJump())
        return;
      Pairs.emplace_back(C.nodeOf(S), C.nodeOf(Body));
    });
  }
  return Pairs;
}

} // namespace

Analysis::Analysis(std::unique_ptr<Program> Prog, Cfg Built,
                   std::shared_ptr<ResourceGuard> Guard)
    : GuardPtr(std::move(Guard)), ProgPtr(std::move(Prog)),
      C(std::move(Built)), Lst(buildLexicalSuccessorTree(C)),
      Pdt(computePostDominators(C.graph(), C.exit(), GuardPtr.get())),
      DU(DefUse::build(C)),
      RD(ReachingDefinitions::compute(C, DU, GuardPtr.get())),
      P(buildControlDependence(C.graph(), Pdt, GuardPtr.get()),
        buildDataDependence(C, DU, RD)),
      AugGraph(C.buildAugmentedGraph(Lst.parents())),
      AugPdt(computePostDominators(AugGraph, C.exit(), GuardPtr.get())),
      AugP(buildControlDependence(AugGraph, AugPdt, GuardPtr.get()), P.Data),
      CondJumps(findCondJumpPairs(C)) {}

ErrorOr<Analysis> Analysis::fromSource(const std::string &Source) {
  return fromSource(Source, Budget::unlimited());
}

ErrorOr<Analysis> Analysis::fromSource(const std::string &Source,
                                       const Budget &B) {
  auto Guard = std::make_shared<ResourceGuard>(B);
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source, *Guard);
  if (!Prog)
    return Prog.diags();
  return fromProgramGuarded(std::move(*Prog), std::move(Guard));
}

ErrorOr<Analysis> Analysis::fromProgram(std::unique_ptr<Program> Prog) {
  return fromProgram(std::move(Prog), Budget::unlimited());
}

ErrorOr<Analysis> Analysis::fromProgram(std::unique_ptr<Program> Prog,
                                        const Budget &B) {
  return fromProgramGuarded(std::move(Prog),
                            std::make_shared<ResourceGuard>(B));
}

ErrorOr<Analysis>
Analysis::fromProgramGuarded(std::unique_ptr<Program> Prog,
                             std::shared_ptr<ResourceGuard> Guard) {
  ErrorOr<Cfg> Built = Cfg::build(*Prog, Guard.get());
  if (!Built)
    return Built.diags();
  Analysis A(std::move(Prog), std::move(*Built), std::move(Guard));
  // A guard tripped during any phase (a latched guard short-circuits
  // every later phase) means some structure is unconverged; discard the
  // whole bundle so no partially-constructed Analysis escapes.
  if (A.guard().exhausted())
    return A.guard().toDiag();
  return A;
}
