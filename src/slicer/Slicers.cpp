//===- slicer/Slicers.cpp - The paper's slicing algorithms --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Implements the conventional slicer, the paper's Figure 7 / 12 / 13
/// algorithms, and the Ball–Horwitz / Choi–Ferrante baseline. The
/// related-work baselines (Lyle, Gallagher, Jiang–Zhou–Robson) live in
/// RelatedWork.cpp.
///
//===----------------------------------------------------------------------===//

#include "slicer/Slicers.h"

#include "slicer/SlicerInternal.h"
#include "slicer/WeiserSlicer.h"

using namespace jslice;
using namespace jslice::detail;

//===----------------------------------------------------------------------===//
// SliceResult helpers
//===----------------------------------------------------------------------===//

std::set<unsigned> SliceResult::lineSet(const Cfg &C) const {
  std::set<unsigned> Lines;
  for (unsigned Node : Nodes)
    if (const Stmt *S = C.node(Node).S)
      if (S->getLoc().isValid())
        Lines.insert(S->getLoc().Line);
  return Lines;
}

std::set<unsigned> SliceResult::stmtIds(const Cfg &C) const {
  std::set<unsigned> Ids;
  for (unsigned Node : Nodes)
    if (const Stmt *S = C.node(Node).S)
      Ids.insert(S->getId());
  return Ids;
}

const char *jslice::algorithmName(SliceAlgorithm Algorithm) {
  switch (Algorithm) {
  case SliceAlgorithm::Conventional:
    return "conventional";
  case SliceAlgorithm::Agrawal:
    return "agrawal-fig7";
  case SliceAlgorithm::AgrawalLst:
    return "agrawal-fig7-lst";
  case SliceAlgorithm::Structured:
    return "structured-fig12";
  case SliceAlgorithm::Conservative:
    return "conservative-fig13";
  case SliceAlgorithm::BallHorwitz:
    return "ball-horwitz";
  case SliceAlgorithm::Lyle:
    return "lyle";
  case SliceAlgorithm::Gallagher:
    return "gallagher";
  case SliceAlgorithm::JiangZhouRobson:
    return "jiang-zhou-robson";
  case SliceAlgorithm::Weiser:
    return "weiser";
  }
  return "<unknown>";
}

bool jslice::algorithmIsSound(SliceAlgorithm Algorithm) {
  switch (Algorithm) {
  case SliceAlgorithm::Agrawal:
  case SliceAlgorithm::AgrawalLst:
  case SliceAlgorithm::Structured:
  case SliceAlgorithm::Conservative:
  case SliceAlgorithm::BallHorwitz:
  case SliceAlgorithm::Lyle:
    return true;
  case SliceAlgorithm::Conventional:
  case SliceAlgorithm::Gallagher:
  case SliceAlgorithm::JiangZhouRobson:
  case SliceAlgorithm::Weiser:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Conventional slicing (with the conditional-jump adaptation)
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceConventional(const Analysis &A,
                                      const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);
  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Figure 7: the paper's general algorithm
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceAgrawal(const Analysis &A,
                                 const ResolvedCriterion &RC,
                                 TraversalTree Tree) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);

  const std::vector<unsigned> &Order = Tree == TraversalTree::PostDominator
                                           ? A.pdt().preorder()
                                           : A.lst().preorder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Traversals;
    std::vector<unsigned> AddedThisPass;
    for (unsigned J : Order) {
      if (!A.guard().checkpoint("slicer.traversal")) {
        // Budget exhausted mid-traversal: stop growing the slice. The
        // ErrorOr dispatch layer reports the tripped guard.
        R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
        return R;
      }
      if (!A.cfg().node(J).isJump() || R.contains(J))
        continue;
      // The decisive test: a jump is needed exactly when deleting it
      // would change where control falls relative to the slice.
      unsigned NearestPd = nearestPostdomInSlice(A, J, R.Nodes);
      unsigned NearestLs = nearestLexSuccInSlice(A, J, R.Nodes);
      if (NearestPd == NearestLs)
        continue;
      closeWithAdaptation(A, A.pdg(), R.Nodes, {J});
      AddedThisPass.push_back(J);
      Changed = true;
    }
    if (Changed) {
      ++R.ProductiveTraversals;
      R.TraversalAdditions.push_back(std::move(AddedThisPass));
    }
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Figure 12: single traversal for structured programs
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceStructured(const Analysis &A,
                                    const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);

  R.Traversals = 1;
  for (unsigned J : A.pdt().preorder()) {
    if (!A.cfg().node(J).isJump() || R.contains(J))
      continue;
    if (!hasControllingPredicateInSlice(A.pdg(), J, R.Nodes))
      continue;
    unsigned NearestPd = nearestPostdomInSlice(A, J, R.Nodes);
    unsigned NearestLs = nearestLexSuccInSlice(A, J, R.Nodes);
    if (NearestPd == NearestLs)
      continue;
    // For structured programs the jump's dependences are already in the
    // slice (Section 4, property 2) — insert the jump alone.
    R.Nodes.insert(J);
    R.ProductiveTraversals = 1;
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Figure 13: conservative, tree-free
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceConservative(const Analysis &A,
                                      const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  closeWithAdaptation(A, A.pdg(), R.Nodes, RC.Seeds);

  for (unsigned J : jumpNodes(A.cfg())) {
    if (R.contains(J))
      continue;
    if (hasControllingPredicateInSlice(A.pdg(), J, R.Nodes))
      R.Nodes.insert(J);
  }

  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Ball–Horwitz / Choi–Ferrante: augmented-flowgraph baseline
//===----------------------------------------------------------------------===//

SliceResult jslice::sliceBallHorwitz(const Analysis &A,
                                     const ResolvedCriterion &RC) {
  SliceResult R;
  R.CriterionNode = RC.Node;
  // Plain backward reachability over the augmented PDG; jumps enter the
  // slice through augmented control dependence, so no adaptation pass is
  // needed — but running it is harmless and keeps conditional jumps
  // attached to their predicates in degenerate cases.
  closeWithAdaptation(A, A.augPdg(), R.Nodes, RC.Seeds);
  R.ReassociatedLabels = reassociateLabels(A, R.Nodes);
  return R;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

SliceResult jslice::computeSlice(const Analysis &A,
                                 const ResolvedCriterion &RC,
                                 SliceAlgorithm Algorithm) {
  switch (Algorithm) {
  case SliceAlgorithm::Conventional:
    return sliceConventional(A, RC);
  case SliceAlgorithm::Agrawal:
    return sliceAgrawal(A, RC, TraversalTree::PostDominator);
  case SliceAlgorithm::AgrawalLst:
    return sliceAgrawal(A, RC, TraversalTree::LexicalSuccessor);
  case SliceAlgorithm::Structured:
    return sliceStructured(A, RC);
  case SliceAlgorithm::Conservative:
    return sliceConservative(A, RC);
  case SliceAlgorithm::BallHorwitz:
    return sliceBallHorwitz(A, RC);
  case SliceAlgorithm::Lyle:
    return sliceLyle(A, RC);
  case SliceAlgorithm::Gallagher:
    return sliceGallagher(A, RC);
  case SliceAlgorithm::JiangZhouRobson:
    return sliceJiangZhouRobson(A, RC);
  case SliceAlgorithm::Weiser:
    return sliceWeiser(A, RC);
  }
  assert(false && "unknown slicing algorithm");
  return SliceResult();
}

ErrorOr<SliceResult> jslice::computeSlice(const Analysis &A,
                                          const Criterion &Crit,
                                          SliceAlgorithm Algorithm) {
  // A budget already exhausted (by an earlier slice on this Analysis)
  // degrades deterministically rather than returning a partial slice.
  if (A.guard().exhausted())
    return A.guard().toDiag();
  ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Crit);
  if (!RC)
    return RC.diags();
  SliceResult R = computeSlice(A, *RC, Algorithm);
  if (A.guard().exhausted())
    return A.guard().toDiag();
  return R;
}
