//===- slicer/SlicerInternal.cpp - Shared slicer machinery -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "slicer/SlicerInternal.h"

using namespace jslice;
using namespace jslice::detail;

void detail::closeWithAdaptation(const Analysis &A, const Pdg &P,
                                 std::set<unsigned> &Slice,
                                 std::vector<unsigned> Seeds) {
  std::vector<unsigned> Worklist;
  for (unsigned Seed : Seeds)
    if (Slice.insert(Seed).second)
      Worklist.push_back(Seed);

  for (;;) {
    while (!Worklist.empty()) {
      if (!A.guard().checkpoint("slicer.close"))
        return; // Partial closure; the ErrorOr layer reports it.
      unsigned Node = Worklist.back();
      Worklist.pop_back();
      for (unsigned Dep : P.Control.preds(Node))
        if (Slice.insert(Dep).second)
          Worklist.push_back(Dep);
      for (unsigned Dep : P.Data.preds(Node))
        if (Slice.insert(Dep).second)
          Worklist.push_back(Dep);
    }

    // Conditional-jump adaptation: a conditional-jump predicate in the
    // slice drags in the jump it guards (the predicate is useless in
    // the slice without it). New jumps re-enter the closure loop.
    bool Adapted = false;
    for (auto [Pred, Jump] : A.condJumpPairs()) {
      if (Slice.count(Pred) && Slice.insert(Jump).second) {
        Worklist.push_back(Jump);
        Adapted = true;
      }
    }
    if (!Adapted)
      return;
  }
}

unsigned detail::nearestPostdomInSlice(const Analysis &A, unsigned Node,
                                       const std::set<unsigned> &Slice) {
  int Cur = A.pdt().idom(Node);
  while (Cur >= 0) {
    unsigned N = static_cast<unsigned>(Cur);
    if (N == A.cfg().exit() || Slice.count(N))
      return N;
    Cur = A.pdt().idom(N);
  }
  return A.cfg().exit();
}

unsigned detail::nearestLexSuccInSlice(const Analysis &A, unsigned Node,
                                       const std::set<unsigned> &Slice) {
  int Cur = A.lst().parent(Node);
  while (Cur >= 0) {
    unsigned N = static_cast<unsigned>(Cur);
    if (N == A.cfg().exit() || Slice.count(N))
      return N;
    Cur = A.lst().parent(N);
  }
  return A.cfg().exit();
}

unsigned
detail::nearestPostdomInSliceInclusive(const Analysis &A, unsigned Node,
                                       const std::set<unsigned> &Slice) {
  if (Node == A.cfg().exit() || Slice.count(Node))
    return Node;
  return nearestPostdomInSlice(A, Node, Slice);
}

std::map<std::string, unsigned>
detail::reassociateLabels(const Analysis &A,
                          const std::set<unsigned> &Slice) {
  std::map<std::string, unsigned> Out;
  for (unsigned Node : Slice) {
    const CfgNode &Info = A.cfg().node(Node);
    if (!Info.S)
      continue;
    const auto *Goto = dyn_cast<GotoStmt>(Info.S);
    if (!Goto)
      continue;
    std::optional<unsigned> Target = A.cfg().jumpTarget(Node);
    assert(Target && "goto in slice without resolved target");
    if (Slice.count(*Target))
      continue; // The labeled statement survived; no re-association.
    Out[Goto->getTargetLabel()] =
        nearestPostdomInSliceInclusive(A, *Target, Slice);
  }
  return Out;
}

bool detail::hasControllingPredicateInSlice(const Pdg &P, unsigned Node,
                                            const std::set<unsigned> &Slice) {
  for (unsigned Pred : P.Control.preds(Node))
    if (Slice.count(Pred))
      return true;
  return false;
}

bool detail::allControllingPredicatesInSlice(
    const Pdg &P, unsigned Node, const std::set<unsigned> &Slice) {
  for (unsigned Pred : P.Control.preds(Node))
    if (!Slice.count(Pred))
      return false;
  return true;
}

std::vector<unsigned> detail::jumpNodes(const Cfg &C) {
  std::vector<unsigned> Out;
  for (unsigned Node = 0, E = C.numNodes(); Node != E; ++Node)
    if (C.node(Node).isJump())
      Out.push_back(Node);
  return Out;
}
