//===- slicer/SlicerInternal.h - Shared slicer machinery ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the slicing algorithm implementations.
/// Not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_SLICERINTERNAL_H
#define JSLICE_SLICER_SLICERINTERNAL_H

#include "slicer/Slicers.h"

#include <set>
#include <vector>

namespace jslice {
namespace detail {

/// Extends \p Slice with the backward dependence closure of \p Seeds and
/// keeps applying the paper's conditional-jump adaptation (a predicate
/// in the slice drags in its accompanying jump) until a fixpoint. Every
/// algorithm that honours the adaptation funnels through here.
void closeWithAdaptation(const Analysis &A, const Pdg &P,
                         std::set<unsigned> &Slice,
                         std::vector<unsigned> Seeds);

/// Nearest postdominator of \p Node that is in \p Slice. Walks proper
/// PDT ancestors; Exit terminates every walk (the paper treats Exit as
/// the root of both trees).
unsigned nearestPostdomInSlice(const Analysis &A, unsigned Node,
                               const std::set<unsigned> &Slice);

/// Nearest lexical successor of \p Node that is in \p Slice (proper LST
/// ancestors; Exit terminates).
unsigned nearestLexSuccInSlice(const Analysis &A, unsigned Node,
                               const std::set<unsigned> &Slice);

/// Nearest postdominator of \p Node that is in \p Slice, starting the
/// walk at \p Node itself (used for label re-association where the
/// target may or may not be in the slice).
unsigned nearestPostdomInSliceInclusive(const Analysis &A, unsigned Node,
                                        const std::set<unsigned> &Slice);

/// Figure 7's final step: re-associates the label of every in-slice
/// goto whose target statement left the slice.
std::map<std::string, unsigned>
reassociateLabels(const Analysis &A, const std::set<unsigned> &Slice);

/// True when \p Node has a direct control-dependence parent inside
/// \p Slice (the paper's "directly control dependent on a predicate in
/// the slice"; Entry — the dummy predicate — counts).
bool hasControllingPredicateInSlice(const Pdg &P, unsigned Node,
                                    const std::set<unsigned> &Slice);

/// True when every direct control-dependence parent of \p Node is in
/// \p Slice (vacuously true with no parents).
bool allControllingPredicatesInSlice(const Pdg &P, unsigned Node,
                                     const std::set<unsigned> &Slice);

/// All jump nodes of the CFG, ascending.
std::vector<unsigned> jumpNodes(const Cfg &C);

} // namespace detail
} // namespace jslice

#endif // JSLICE_SLICER_SLICERINTERNAL_H
