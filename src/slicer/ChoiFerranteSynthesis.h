//===- slicer/ChoiFerranteSynthesis.h - Executable slices with new jumps ------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5 describes a second Choi–Ferrante algorithm
/// for when a slice "is not constrained to be a subprogram of the
/// original program": keep only the conventional(-augmented) slice's
/// statements and *construct new jump statements* to preserve their
/// execution order, instead of retaining the original jumps and their
/// dependence closures. The slices are smaller; the nesting structure
/// may differ from the original.
///
/// Reconstruction (see DESIGN.md, Substitutions): the kept statements
/// are the Ball–Horwitz closure minus the original jump statements, and
/// every control transfer is redirected to the target's nearest kept
/// postdominator — a static map, which is exactly what synthesized
/// gotos encode. A transfer needs an explicit synthesized goto when its
/// destination is not the statement the printed text would fall into.
/// The projection interpreter has a matching transfer mode
/// (runTransferProjection) so these slices are behaviourally testable
/// like all the others.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SLICER_CHOIFERRANTESYNTHESIS_H
#define JSLICE_SLICER_CHOIFERRANTESYNTHESIS_H

#include "slicer/Slicers.h"

#include <map>

namespace jslice {

/// A slice whose control flow is carried by synthesized transfers
/// instead of original jump statements.
struct SynthesizedSlice {
  /// Kept statement/predicate nodes; never contains a jump node.
  std::set<unsigned> Kept;

  unsigned CriterionNode = 0;

  /// Every control transfer of the synthesized program:
  /// (kept source node, raw CFG target) -> kept destination (or Exit).
  /// The destination is the raw target's nearest kept postdominator.
  std::map<std::pair<unsigned, unsigned>, unsigned> Transfers;

  /// Transfers that need an explicit synthesized goto (the destination
  /// is not the next kept statement in textual order).
  unsigned SynthesizedJumps = 0;

  std::set<unsigned> lineSet(const Cfg &C) const;
};

/// Builds the synthesized slice for \p RC.
SynthesizedSlice sliceChoiFerranteSynthesis(const Analysis &A,
                                            const ResolvedCriterion &RC);

/// A synthesized slice rendered as a runnable Mini-C program.
struct PrintedSynthesis {
  /// Flattened program: every kept statement in source order, labeled,
  /// with explicit synthesized gotos carrying the transfer map
  /// (predicates become `if (cond) goto Lt; else goto Lf;`, transfers
  /// to program exit become `return;`).
  std::string Text;

  /// Line of the criterion statement in Text (for re-slicing or
  /// re-running against the original behaviour).
  unsigned CriterionLine = 0;
};

/// Emits \p S as a self-contained Mini-C program. The result re-parses
/// and, run on the same input, reproduces the original program's
/// criterion-value sequence (tested in tests/ExtensionsTest.cpp) —
/// Choi–Ferrante's "slice that is not a subprogram", made concrete.
PrintedSynthesis printSynthesizedSlice(const Analysis &A,
                                       const SynthesizedSlice &S);

} // namespace jslice

#endif // JSLICE_SLICER_CHOIFERRANTESYNTHESIS_H
