//===- support/ResourceGuard.cpp - Budgets, guards, fault injection --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGuard.h"

using namespace jslice;

std::atomic<uint64_t> FaultInjection::FailAt{0};
std::atomic<uint64_t> FaultInjection::Count{0};
std::atomic<const char *> FaultInjection::LastSite{""};

void FaultInjection::arm(uint64_t FailAtCheckpoint) {
  Count.store(0, std::memory_order_relaxed);
  LastSite.store("", std::memory_order_relaxed);
  FailAt.store(FailAtCheckpoint, std::memory_order_release);
}

void FaultInjection::disarm() { FailAt.store(0, std::memory_order_release); }

bool FaultInjection::armed() {
  return FailAt.load(std::memory_order_acquire) != 0;
}

uint64_t FaultInjection::observedCheckpoints() {
  return Count.load(std::memory_order_relaxed);
}

void FaultInjection::resetCount() { Count.store(0, std::memory_order_relaxed); }

bool FaultInjection::shouldFail(const char *Site, uint64_t SiteCount) {
  (void)SiteCount;
  uint64_t Seen = Count.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t At = FailAt.load(std::memory_order_acquire);
  if (At == 0 || Seen != At)
    return false;
  LastSite.store(Site, std::memory_order_relaxed);
  return true;
}

const char *FaultInjection::trippedSite() {
  return LastSite.load(std::memory_order_relaxed);
}
