//===- support/ResourceGuard.cpp - Budgets, guards, fault injection --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGuard.h"

using namespace jslice;

uint64_t FaultInjection::FailAt = 0;
uint64_t FaultInjection::Count = 0;
const char *FaultInjection::LastSite = "";

void FaultInjection::arm(uint64_t FailAtCheckpoint) {
  FailAt = FailAtCheckpoint;
  Count = 0;
  LastSite = "";
}

void FaultInjection::disarm() { FailAt = 0; }

bool FaultInjection::armed() { return FailAt != 0; }

uint64_t FaultInjection::observedCheckpoints() { return Count; }

void FaultInjection::resetCount() { Count = 0; }

bool FaultInjection::shouldFail(const char *Site, uint64_t SiteCount) {
  (void)SiteCount;
  ++Count;
  if (FailAt == 0 || Count != FailAt)
    return false;
  LastSite = Site;
  return true;
}

const char *FaultInjection::trippedSite() { return LastSite; }
