//===- support/StringUtils.cpp - Small string helpers ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

using namespace jslice;

std::string jslice::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Out;
  for (const std::string &Part : Parts) {
    if (!Out.empty())
      Out += Sep;
    Out += Part;
  }
  return Out;
}

std::string jslice::formatLineSet(const std::set<unsigned> &Lines) {
  std::string Out = "{";
  bool First = true;
  for (unsigned Line : Lines) {
    if (!First)
      Out += ", ";
    Out += std::to_string(Line);
    First = false;
  }
  Out += "}";
  return Out;
}

std::vector<std::string> jslice::splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::string Current;
  for (char C : Text) {
    if (C == '\n') {
      Lines.push_back(Current);
      Current.clear();
      continue;
    }
    Current += C;
  }
  if (!Current.empty())
    Lines.push_back(Current);
  return Lines;
}

std::string jslice::indent(unsigned Count) {
  return std::string(static_cast<size_t>(Count) * 2, ' ');
}
