//===- support/BitVector.h - Dense fixed-width bit set --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit set sized at construction, with the bulk set algebra the
/// reaching-definitions solver needs (|=, &=, reset-of, equality).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_BITVECTOR_H
#define JSLICE_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace jslice {

/// Dense bit set over the index range [0, size()).
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t NumBits) { resize(NumBits); }

  void resize(size_t NumBits) {
    Size = NumBits;
    Words.assign((NumBits + BitsPerWord - 1) / BitsPerWord, 0);
  }

  size_t size() const { return Size; }

  bool test(size_t Idx) const {
    assert(Idx < Size && "bit index out of range");
    return (Words[Idx / BitsPerWord] >> (Idx % BitsPerWord)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < Size && "bit index out of range");
    Words[Idx / BitsPerWord] |= Word(1) << (Idx % BitsPerWord);
  }

  void reset(size_t Idx) {
    assert(Idx < Size && "bit index out of range");
    Words[Idx / BitsPerWord] &= ~(Word(1) << (Idx % BitsPerWord));
  }

  void clear() {
    for (Word &W : Words)
      W = 0;
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (Word W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (Word W : Words)
      if (W)
        return true;
    return false;
  }

  /// Set union; both operands must have equal size.
  BitVector &operator|=(const BitVector &RHS) {
    assert(Size == RHS.Size && "size mismatch in BitVector |=");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  /// Set intersection; both operands must have equal size.
  BitVector &operator&=(const BitVector &RHS) {
    assert(Size == RHS.Size && "size mismatch in BitVector &=");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Set difference: removes every bit set in \p RHS.
  BitVector &resetOf(const BitVector &RHS) {
    assert(Size == RHS.Size && "size mismatch in BitVector resetOf");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  friend bool operator==(const BitVector &A, const BitVector &B) {
    return A.Size == B.Size && A.Words == B.Words;
  }
  friend bool operator!=(const BitVector &A, const BitVector &B) {
    return !(A == B);
  }

  /// Invokes \p Fn on every set index, in increasing order.
  template <typename Callable> void forEachSetBit(Callable Fn) const {
    for (size_t WI = 0, WE = Words.size(); WI != WE; ++WI) {
      Word W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * BitsPerWord + Bit);
        W &= W - 1;
      }
    }
  }

private:
  using Word = uint64_t;
  static constexpr size_t BitsPerWord = 64;

  size_t Size = 0;
  std::vector<Word> Words;
};

} // namespace jslice

#endif // JSLICE_SUPPORT_BITVECTOR_H
