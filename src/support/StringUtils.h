//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joining, indentation, and line-set formatting helpers shared by the
/// pretty-printer, the DOT exporter, and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_STRINGUTILS_H
#define JSLICE_SUPPORT_STRINGUTILS_H

#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Joins \p Parts with \p Sep ("a, b, c" for Sep = ", ").
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders a set of statement line numbers as "{1, 4, 7}".
std::string formatLineSet(const std::set<unsigned> &Lines);

/// Splits \p Text into lines (without terminators). A trailing newline
/// does not produce an empty final element.
std::vector<std::string> splitLines(const std::string &Text);

/// Returns \p Count copies of two-space indentation.
std::string indent(unsigned Count);

} // namespace jslice

#endif // JSLICE_SUPPORT_STRINGUTILS_H
