//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of llvm/Support/Casting.h.
///
/// A class hierarchy participates by exposing a discriminator through a
/// static member function `classof`:
///
/// \code
///   struct Stmt { StmtKind getKind() const; ... };
///   struct GotoStmt : Stmt {
///     static bool classof(const Stmt *S) {
///       return S->getKind() == StmtKind::Goto;
///     }
///   };
/// \endcode
///
/// Then `isa<GotoStmt>(S)`, `cast<GotoStmt>(S)`, and `dyn_cast<GotoStmt>(S)`
/// behave like their LLVM counterparts.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_CASTING_H
#define JSLICE_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace jslice {

/// Returns true if \p Val is an instance of \p To (or a subclass).
/// \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is an instance of any of the listed types.
template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null input (returning null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like dyn_cast_if_present, const overload.
template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace jslice

#endif // JSLICE_SUPPORT_CASTING_H
