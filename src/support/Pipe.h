//===- support/Pipe.h - Pipes, poll, and wait-status helpers ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX layer under the process-isolated sandbox workers
/// (service/Supervisor.h): close-on-exec pipes, EINTR-looped full
/// reads/writes, a poll() wrapper with a millisecond deadline, and a
/// human-readable rendering of waitpid() statuses — the supervisor's
/// crash forensics quote these strings verbatim in `crashed`
/// responses. Everything here returns error codes instead of throwing;
/// the library is exception-free by contract.
///
/// Non-POSIX builds compile but every function fails closed
/// (pipes cannot be made, waits describe nothing); the service then
/// runs thread-isolated only, which Server enforces at construction.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_PIPE_H
#define JSLICE_SUPPORT_PIPE_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace jslice {

#if defined(__unix__) || defined(__APPLE__)
#define JSLICE_HAVE_POSIX_PROCESS 1
#endif

/// One unidirectional pipe. Fds are -1 until makePipe succeeds; close()
/// is idempotent and the destructor closes whatever is still open, so a
/// Pipe can be safely abandoned on any error path.
struct Pipe {
  int ReadFd = -1;
  int WriteFd = -1;

  Pipe() = default;
  ~Pipe() { close(); }
  Pipe(const Pipe &) = delete;
  Pipe &operator=(const Pipe &) = delete;
  Pipe(Pipe &&O) noexcept : ReadFd(O.ReadFd), WriteFd(O.WriteFd) {
    O.ReadFd = O.WriteFd = -1;
  }
  Pipe &operator=(Pipe &&O) noexcept {
    if (this != &O) {
      close();
      ReadFd = O.ReadFd;
      WriteFd = O.WriteFd;
      O.ReadFd = O.WriteFd = -1;
    }
    return *this;
  }

  /// Creates the pipe (close-on-exec where supported). False on
  /// failure or non-POSIX builds.
  bool make();

  void close();
  void closeRead();
  void closeWrite();
};

/// Closes \p Fd if it is >= 0, swallowing EINTR; sets it to -1.
void closeQuietly(int &Fd);

/// poll() for readability with a deadline. Returns 1 when \p Fd is
/// readable (or at EOF), 0 on timeout, -1 on error. \p TimeoutMs < 0
/// blocks indefinitely.
int pollReadable(int Fd, int TimeoutMs);

/// poll() for readability on two fds at once (the self-pipe shutdown
/// pattern in jslice_serve). Returns a bitmask: bit 0 = FdA readable,
/// bit 1 = FdB readable; 0 on timeout, -1 on error.
int pollReadable2(int FdA, int FdB, int TimeoutMs);

/// Reads exactly \p N bytes, looping over EINTR and short reads.
/// Returns N on success, 0 on clean EOF before any byte, -1 on error
/// or EOF mid-record.
int64_t readFull(int Fd, void *Buf, size_t N);

/// One read() call, looping only over EINTR: returns however many
/// bytes were available (up to \p N), 0 on EOF, -1 on error. The
/// deadline-driven frame reader uses this so a peer trickling a torn
/// frame cannot pin the caller past its poll deadline.
int64_t readSome(int Fd, void *Buf, size_t N);

/// Writes all \p N bytes, looping over EINTR and short writes.
/// Returns true on success; false on error (including EPIPE — callers
/// must have SIGPIPE ignored, see Supervisor).
bool writeFull(int Fd, const void *Buf, size_t N);

/// Renders a waitpid() status: "exited with code 1", "killed by signal
/// 9 (SIGKILL)", "killed by signal 11 (SIGSEGV, core dumped)". Empty
/// string on non-POSIX builds.
std::string describeWaitStatus(int Status);

/// True when the wait status is a clean zero exit.
bool exitedCleanly(int Status);

/// Current resident set size in MiB, or 0 when unknown (non-Linux).
/// The server's overload control sheds above a watermark; a 0 reading
/// simply never sheds on memory, which fails open by design — the
/// bounded queue still caps admission.
uint64_t currentRssMb();

} // namespace jslice

#endif // JSLICE_SUPPORT_PIPE_H
