//===- support/SourceLoc.h - Source positions and ranges ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions for diagnostics and for naming slicing criteria.
/// The paper identifies statements by source line number; jslice follows
/// suit, so `SourceLoc::Line` doubles as the user-facing statement id.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_SOURCELOC_H
#define JSLICE_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace jslice {

/// A 1-based (line, column) position in a Mini-C source buffer.
/// Line 0 denotes "unknown"; synthesized nodes carry it.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
  friend constexpr bool operator!=(SourceLoc A, SourceLoc B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Col < B.Col;
  }

  /// Renders as "line:col" (or "<unknown>" for invalid locations).
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace jslice

#endif // JSLICE_SUPPORT_SOURCELOC_H
