//===- support/ResourceGuard.h - Budgets, guards, fault injection ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The robustness contract of the pipeline (DESIGN.md, "Robustness
/// contract"): no input may crash or hang an analysis. Every layer —
/// parser, CFG builder, dominators, control dependence, reaching
/// definitions, the slicing traversals, and the interpreter — polls one
/// ResourceGuard at its checkpoints; when a Budget dimension is
/// exhausted the layer stops early and the failure surfaces as a Diag
/// of kind DiagKind::ResourceExhausted through the usual ErrorOr
/// plumbing. Degradation is deterministic: the same input under the
/// same budget trips the same checkpoint.
///
/// FaultInjection is the test hook that proves the error paths work: it
/// deterministically fails the Nth checkpoint process-wide, letting a
/// test (tests/FaultInjectionTest.cpp) iterate every site the pipeline
/// passes through and assert clean failure plus clean recovery.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_RESOURCEGUARD_H
#define JSLICE_SUPPORT_RESOURCEGUARD_H

#include "support/Error.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace jslice {

/// Resource limits for one analysis pipeline. A zero in any dimension
/// means "unlimited" for that dimension; the default Budget bounds only
/// nesting depth (the one dimension whose exhaustion mode — stack
/// overflow in the recursive-descent parser — cannot be survived).
struct Budget {
  /// Maximum nesting depth of statements and expressions in the parser.
  /// Bounds recursion frames, so it must stay well under the platform
  /// stack limit; 0 means the generous built-in default still applies
  /// (there is no truly unlimited setting for recursion).
  unsigned MaxNestingDepth = 0;

  /// Maximum CFG nodes built for one program (0 = unlimited).
  uint64_t MaxNodes = 0;

  /// Maximum guard checkpoints over the whole pipeline — a portable
  /// proxy for CPU work across parsing, dataflow fixpoints, slicing
  /// traversals, and interpretation (0 = unlimited).
  uint64_t MaxSteps = 0;

  /// Soft wall-clock deadline in milliseconds, measured from guard
  /// construction and polled every PollStride checkpoints
  /// (0 = no deadline).
  uint64_t DeadlineMs = 0;

  /// How many checkpoints pass between deadline (and cancellation)
  /// polls. Clock reads are much more expensive than the counter
  /// bump, so the guard only looks at the wall between strides — but a
  /// phase with expensive work *between* checkpoints can overshoot the
  /// deadline by up to (stride - 1) checkpoints' worth of it. Latency-
  /// sensitive callers (the slicing service) tighten this; 0 means the
  /// built-in default. Rounded up to a power of two.
  uint64_t PollStride = 0;

  /// External cancellation flag, polled on the same stride as the
  /// deadline; when it reads true the guard trips at the next poll
  /// ("cancelled at <site>"). Not owned; must outlive every guard built
  /// from this budget. The slicing service points one per-request flag
  /// here so `{"cancel": id}` can stop an in-flight analysis.
  const std::atomic<bool> *Cancel = nullptr;

  /// The nesting depth enforced when MaxNestingDepth is 0.
  static constexpr unsigned DefaultNestingDepth = 250;

  /// The poll stride enforced when PollStride is 0 (the historical
  /// `Steps & 255` cadence).
  static constexpr uint64_t DefaultPollStride = 256;

  unsigned effectiveNestingDepth() const {
    return MaxNestingDepth ? MaxNestingDepth : DefaultNestingDepth;
  }

  /// The stride actually used: PollStride (or the default) rounded up
  /// to the next power of two, so the hot path can mask instead of
  /// divide.
  uint64_t effectivePollStride() const {
    uint64_t S = PollStride ? PollStride : DefaultPollStride;
    uint64_t P = 1;
    while (P < S)
      P <<= 1;
    return P;
  }

  /// Everything unlimited except the recursion backstop.
  static Budget unlimited() { return Budget(); }

  /// The stress harness's adversarial setting: small enough that deep
  /// or loop-heavy programs degrade, large enough that typical
  /// generator output completes.
  static Budget tight() {
    Budget B;
    B.MaxNestingDepth = 48;
    B.MaxNodes = 4096;
    B.MaxSteps = 2000000;
    B.DeadlineMs = 2000;
    return B;
  }
};

/// Deterministic process-wide fault hook. When armed at ordinal N, the
/// Nth ResourceGuard checkpoint after arming fails as if its budget had
/// been exhausted. The counters are atomic so concurrent guards (the
/// slicing service runs one per in-flight request) may checkpoint
/// freely, but arming is only *deterministic* when a single pipeline
/// runs between arm() and the trip — fault-sweep drivers serialize
/// their requests. Tests arm it through the RAII ScopedArm.
class FaultInjection {
public:
  /// Arms the hook: the \p FailAtCheckpoint-th checkpoint (1-based)
  /// observed from now on fails. Resets the observation counter.
  static void arm(uint64_t FailAtCheckpoint);

  /// Disarms the hook; checkpoints keep being counted.
  static void disarm();

  static bool armed();

  /// Checkpoints observed since the last arm()/resetCount().
  static uint64_t observedCheckpoints();

  /// Restarts the observation counter (for a counting pass that sizes
  /// a pipeline before iterating injection ordinals).
  static void resetCount();

  /// The guard's question: should the checkpoint at \p Site, the
  /// \p SiteCount-th at that site, fail now? Counts every call.
  static bool shouldFail(const char *Site, uint64_t SiteCount);

  /// The site name of the checkpoint that last tripped (empty if none).
  static const char *trippedSite();

  /// RAII arming for tests.
  struct ScopedArm {
    explicit ScopedArm(uint64_t FailAtCheckpoint) { arm(FailAtCheckpoint); }
    ~ScopedArm() { disarm(); }
    ScopedArm(const ScopedArm &) = delete;
    ScopedArm &operator=(const ScopedArm &) = delete;
  };

private:
  static std::atomic<uint64_t> FailAt; // 0 = disarmed.
  static std::atomic<uint64_t> Count;
  static std::atomic<const char *> LastSite;
};

/// One pipeline's running resource meter. Layers call checkpoint() (and
/// countNode() for memory-shaped growth); once any dimension is
/// exhausted the guard latches and every later checkpoint fails fast,
/// so partial phases cannot keep burning budget.
class ResourceGuard {
public:
  ResourceGuard() : ResourceGuard(Budget()) {}
  explicit ResourceGuard(const Budget &B)
      : B(B), StrideMask(B.effectivePollStride() - 1),
        Start(std::chrono::steady_clock::now()) {}

  const Budget &budget() const { return B; }

  /// Polls the guard at \p Site. Returns false — permanently, for every
  /// subsequent call — when the step budget, the deadline, an external
  /// cancellation, or an armed fault injection trips.
  bool checkpoint(const char *Site) {
    if (Exhausted)
      return false;
    ++Steps;
    if (FaultInjection::shouldFail(Site, Steps))
      return trip(Site, "injected fault");
    if (B.MaxSteps && Steps > B.MaxSteps)
      return trip(Site, "step budget exhausted");
    if ((Steps & StrideMask) == 0) {
      if (B.Cancel && B.Cancel->load(std::memory_order_relaxed))
        return trip(Site, "cancelled");
      if (B.DeadlineMs && pastDeadline())
        return trip(Site, "deadline exceeded");
    }
    return true;
  }

  /// Charges \p N checkpoints' worth of steps at \p Site in one call —
  /// the batch engine's per-thread shards flush their locally-counted
  /// checkpoints through this, so the shared guard mutex is taken once
  /// per flush instead of once per checkpoint. A bulk charge is one
  /// fault-injection observation and always polls the deadline and the
  /// cancellation flag (it arrives at stride-sized batches already, so
  /// the per-checkpoint stride mask would be redundant).
  bool charge(uint64_t N, const char *Site) {
    if (Exhausted)
      return false;
    if (N == 0)
      return true;
    Steps += N;
    if (FaultInjection::shouldFail(Site, Steps))
      return trip(Site, "injected fault");
    if (B.MaxSteps && Steps > B.MaxSteps)
      return trip(Site, "step budget exhausted");
    if (B.Cancel && B.Cancel->load(std::memory_order_relaxed))
      return trip(Site, "cancelled");
    if (B.DeadlineMs && pastDeadline())
      return trip(Site, "deadline exceeded");
    return true;
  }

  /// checkpoint() plus the node-count dimension (call once per CFG or
  /// dependence-graph node built).
  bool countNode(const char *Site) {
    if (!checkpoint(Site))
      return false;
    ++Nodes;
    if (B.MaxNodes && Nodes > B.MaxNodes)
      return trip(Site, "node budget exhausted");
    return true;
  }

  bool exhausted() const { return Exhausted; }
  uint64_t steps() const { return Steps; }
  uint64_t nodes() const { return Nodes; }

  /// "step budget exhausted at slicer.traversal" — empty until tripped.
  const std::string &reason() const { return Reason; }

  /// The exhaustion as a diagnostic, classified ResourceExhausted.
  Diag toDiag(SourceLoc Loc = SourceLoc()) const {
    return Diag(Loc, Reason.empty() ? "resource budget exhausted" : Reason,
                DiagKind::ResourceExhausted);
  }

private:
  bool pastDeadline() const {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - Start);
    return static_cast<uint64_t>(Elapsed.count()) >= B.DeadlineMs;
  }

  bool trip(const char *Site, const char *What) {
    Exhausted = true;
    Reason = std::string(What) + " at " + Site;
    return false;
  }

  Budget B;
  uint64_t StrideMask = 0;
  uint64_t Steps = 0;
  uint64_t Nodes = 0;
  bool Exhausted = false;
  std::string Reason;
  std::chrono::steady_clock::time_point Start;
};

} // namespace jslice

#endif // JSLICE_SUPPORT_RESOURCEGUARD_H
