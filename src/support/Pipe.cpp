//===- support/Pipe.cpp - Pipes, poll, and wait-status helpers -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/Pipe.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <fcntl.h>
#include <poll.h>
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

bool Pipe::make() {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  close();
  int Fds[2];
#if defined(__linux__)
  if (::pipe2(Fds, O_CLOEXEC) != 0)
    return false;
#else
  if (::pipe(Fds) != 0)
    return false;
  ::fcntl(Fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(Fds[1], F_SETFD, FD_CLOEXEC);
#endif
  ReadFd = Fds[0];
  WriteFd = Fds[1];
  return true;
#else
  return false;
#endif
}

void Pipe::close() {
  closeRead();
  closeWrite();
}

void Pipe::closeRead() { closeQuietly(ReadFd); }
void Pipe::closeWrite() { closeQuietly(WriteFd); }

void jslice::closeQuietly(int &Fd) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  if (Fd >= 0)
    ::close(Fd);
#endif
  Fd = -1;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS
namespace {

/// Milliseconds left before \p Deadline (clamped at 0), or -1 when the
/// caller asked to block forever. EINTR restarts must poll against the
/// *remaining* time, not the original timeout — a signal storm faster
/// than the timeout would otherwise defer the deadline indefinitely,
/// and these deadlines are the supervisor's hang detection.
int pollRemainingMs(int TimeoutMs,
                    std::chrono::steady_clock::time_point Deadline) {
  if (TimeoutMs < 0)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - std::chrono::steady_clock::now());
  return Left.count() <= 0 ? 0 : static_cast<int>(Left.count());
}

} // namespace
#endif

int jslice::pollReadable(int Fd, int TimeoutMs) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs > 0 ? TimeoutMs : 0);
  struct pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, pollRemainingMs(TimeoutMs, Deadline));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return 0;
    return 1; // POLLIN, POLLHUP, or POLLERR — all "go read".
  }
#else
  (void)Fd;
  (void)TimeoutMs;
  return -1;
#endif
}

int jslice::pollReadable2(int FdA, int FdB, int TimeoutMs) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs > 0 ? TimeoutMs : 0);
  struct pollfd P[2];
  P[0].fd = FdA;
  P[0].events = POLLIN;
  P[0].revents = 0;
  P[1].fd = FdB;
  P[1].events = POLLIN;
  P[1].revents = 0;
  for (;;) {
    int N = ::poll(P, 2, pollRemainingMs(TimeoutMs, Deadline));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return 0;
    int Mask = 0;
    if (P[0].revents)
      Mask |= 1;
    if (P[1].revents)
      Mask |= 2;
    return Mask;
  }
#else
  (void)FdA;
  (void)FdB;
  (void)TimeoutMs;
  return -1;
#endif
}

int64_t jslice::readFull(int Fd, void *Buf, size_t N) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, P + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      return Got == 0 ? 0 : -1; // EOF mid-record is an error.
    Got += static_cast<size_t>(R);
  }
  return static_cast<int64_t>(Got);
#else
  (void)Fd;
  (void)Buf;
  (void)N;
  return -1;
#endif
}

int64_t jslice::readSome(int Fd, void *Buf, size_t N) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  for (;;) {
    ssize_t R = ::read(Fd, Buf, N);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    return static_cast<int64_t>(R);
  }
#else
  (void)Fd;
  (void)Buf;
  (void)N;
  return -1;
#endif
}

bool jslice::writeFull(int Fd, const void *Buf, size_t N) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  const char *P = static_cast<const char *>(Buf);
  size_t Sent = 0;
  while (Sent < N) {
    ssize_t W = ::write(Fd, P + Sent, N - Sent);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
#else
  (void)Fd;
  (void)Buf;
  (void)N;
  return false;
#endif
}

std::string jslice::describeWaitStatus(int Status) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  char Buf[128];
  if (WIFEXITED(Status)) {
    std::snprintf(Buf, sizeof(Buf), "exited with code %d",
                  WEXITSTATUS(Status));
    return Buf;
  }
  if (WIFSIGNALED(Status)) {
    int Sig = WTERMSIG(Status);
    const char *Name = strsignal(Sig);
    bool Core = false;
#ifdef WCOREDUMP
    Core = WCOREDUMP(Status);
#endif
    std::snprintf(Buf, sizeof(Buf), "killed by signal %d (%s%s)", Sig,
                  Name ? Name : "?", Core ? ", core dumped" : "");
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "wait status 0x%x", Status);
  return Buf;
#else
  (void)Status;
  return "";
#endif
}

bool jslice::exitedCleanly(int Status) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
#else
  (void)Status;
  return false;
#endif
}

uint64_t jslice::currentRssMb() {
#if defined(__linux__)
  // /proc/self/statm field 2 is resident pages.
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int N = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (N != 2)
    return 0;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  return Resident * static_cast<unsigned long long>(Page) / (1024 * 1024);
#else
  return 0;
#endif
}
