//===- support/WorkerPool.h - Shared worker-thread machinery ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two worker-thread shapes the codebase needs, in one place:
///
///  * WorkerPool::parallelFor — the batch slicing engine's fan-out: a
///    fixed index space chewed through by transient workers pulling
///    indices off one atomic counter (no queue, no allocation per
///    item). Blocks until every index is done.
///  * WorkerPool — a persistent pool with a task queue, for callers
///    whose work arrives over time (the slicing server dispatches one
///    task per request as it reads the stream). Tasks run in submit
///    order but complete in any order; drain() barriers on "queue
///    empty and every worker idle".
///
/// Tasks must not throw (the library is exception-free by contract);
/// a task that does terminates the process, which for a service is the
/// correct failure mode — the write-ahead journal marks the in-flight
/// request poisoned on the next startup.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_WORKERPOOL_H
#define JSLICE_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jslice {

/// A persistent worker pool with a FIFO task queue.
class WorkerPool {
public:
  /// Starts \p Threads workers (at least one).
  explicit WorkerPool(unsigned Threads);

  /// Drains the queue, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned threads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task; returns immediately.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Runs Body(0..N-1) across up to \p Threads transient workers,
  /// blocking until all indices complete. Threads <= 1 (or N <= 1)
  /// runs inline on the caller's thread.
  static void parallelFor(unsigned Threads, size_t N,
                          const std::function<void(size_t)> &Body);

private:
  void workerMain();

  std::mutex M;
  std::condition_variable WakeWorker;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  unsigned Busy = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace jslice

#endif // JSLICE_SUPPORT_WORKERPOOL_H
