//===- support/WorkerPool.cpp - Shared worker-thread machinery -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

#include <atomic>

using namespace jslice;

WorkerPool::WorkerPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WakeWorker.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void WorkerPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(Task));
  }
  WakeWorker.notify_one();
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> Lock(M);
  Idle.wait(Lock, [this] { return Queue.empty() && Busy == 0; });
}

void WorkerPool::workerMain() {
  std::unique_lock<std::mutex> Lock(M);
  for (;;) {
    WakeWorker.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) // Stopping, and nothing left to run.
      return;
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++Busy;
    Lock.unlock();
    Task();
    Lock.lock();
    --Busy;
    if (Queue.empty() && Busy == 0)
      Idle.notify_all();
  }
}

void WorkerPool::parallelFor(unsigned Threads, size_t N,
                             const std::function<void(size_t)> &Body) {
  if (Threads > N)
    Threads = static_cast<unsigned>(N);
  if (Threads <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Body(I);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}
