//===- support/Error.h - Recoverable-error plumbing -----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal recoverable-error machinery in the spirit of llvm::Expected.
/// Library code never throws; fallible operations return ErrorOr<T>, and
/// malformed-input conditions are reported as Diag records that carry the
/// offending source location.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SUPPORT_ERROR_H
#define JSLICE_SUPPORT_ERROR_H

#include "support/SourceLoc.h"

#include <cassert>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace jslice {

/// Coarse classification of a diagnostic. Callers (services, the CLI,
/// the stress driver) branch on this to tell malformed input apart from
/// deterministic degradation under a resource Budget.
enum class DiagKind {
  Error,             ///< Malformed input: syntax, sema, CFG shape, criterion.
  ResourceExhausted, ///< A ResourceGuard budget (or an injected fault) tripped.
};

/// One diagnostic: a message anchored at a source location.
/// Messages follow the LLVM style: lowercase first word, no trailing period.
struct Diag {
  SourceLoc Loc;
  std::string Message;
  DiagKind Kind = DiagKind::Error;

  Diag() = default;
  Diag(SourceLoc Loc, std::string Message, DiagKind Kind = DiagKind::Error)
      : Loc(Loc), Message(std::move(Message)), Kind(Kind) {}

  bool isResourceExhausted() const {
    return Kind == DiagKind::ResourceExhausted;
  }

  /// Renders as "line:col: error: message".
  std::string str() const { return Loc.str() + ": error: " + Message; }
};

/// An ordered list of diagnostics produced by one fallible operation.
class DiagList {
public:
  void report(SourceLoc Loc, std::string Message,
              DiagKind Kind = DiagKind::Error) {
    Diags.emplace_back(Loc, std::move(Message), Kind);
  }

  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }
  const std::vector<Diag> &diags() const { return Diags; }

  /// True when any member is classified \p Kind.
  bool hasKind(DiagKind Kind) const {
    for (const Diag &D : Diags)
      if (D.Kind == Kind)
        return true;
    return false;
  }

  /// All diagnostics joined with newlines, for test failure messages.
  std::string str() const {
    std::string Out;
    for (const Diag &D : Diags) {
      if (!Out.empty())
        Out += '\n';
      Out += D.str();
    }
    return Out;
  }

private:
  std::vector<Diag> Diags;
};

/// Either a value or the diagnostics explaining why there is none.
///
/// Unlike llvm::Expected there is no checked-flag discipline; this type is
/// a plain sum. Use `if (!R) ... R.diags() ...` then `*R` / `R->`.
template <typename T> class ErrorOr {
public:
  /*implicit*/ ErrorOr(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ ErrorOr(DiagList Errors) : Storage(std::move(Errors)) {
    assert(!std::get<DiagList>(Storage).empty() &&
           "error state requires at least one diagnostic");
  }
  /*implicit*/ ErrorOr(Diag Error) : Storage(DiagList()) {
    std::get<DiagList>(Storage).report(Error.Loc, std::move(Error.Message),
                                       Error.Kind);
  }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return hasValue(); }

  T &get() {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }
  const T &get() const {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const DiagList &diags() const {
    assert(!hasValue() && "accessing diagnostics of a success result");
    return std::get<DiagList>(Storage);
  }

private:
  std::variant<T, DiagList> Storage;
};

} // namespace jslice

#endif // JSLICE_SUPPORT_ERROR_H
