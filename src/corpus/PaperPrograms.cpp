//===- corpus/PaperPrograms.cpp - The paper's figure programs -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"

#include <cassert>

using namespace jslice;

namespace {

std::vector<PaperExample> buildExamples() {
  std::vector<PaperExample> Out;

  // Figure 1-a: the jump-free running example. Slice w.r.t. positives
  // on line 12 (Figure 1-b).
  {
    PaperExample Ex;
    Ex.Name = "fig1a";
    Ex.Caption = "jump-free example program (Figure 1-a)";
    Ex.Source = "sum = 0;\n"
                "positives = 0;\n"
                "while (!eof()) {\n"
                "read(x);\n"
                "if (x <= 0)\n"
                "sum = sum + f1(x); else {\n"
                "positives = positives + 1;\n"
                "if (x % 2 == 0)\n"
                "sum = sum + f2(x); else\n"
                "sum = sum + f3(x); } }\n"
                "write(sum);\n"
                "write(positives);\n";
    Ex.Crit = Criterion(12, {"positives"});
    Ex.Structured = true;
    Ex.ConventionalLines = {2, 3, 4, 5, 7, 12};
    Ex.AgrawalLines = {2, 3, 4, 5, 7, 12};
    Ex.StructuredLines = Ex.AgrawalLines;
    Ex.ConservativeLines = Ex.AgrawalLines;
    Ex.ExpectedProductiveTraversals = 0;
    Out.push_back(std::move(Ex));
  }

  // Figure 3-a: goto version via an indirect `L13: goto L3`. Slice
  // w.r.t. positives on line 15 (Figures 3-b and 3-c).
  {
    PaperExample Ex;
    Ex.Name = "fig3a";
    Ex.Caption = "goto version with indirect back-jump (Figure 3-a)";
    Ex.Source = "sum = 0;\n"
                "positives = 0;\n"
                "L3: if (eof()) goto L14;\n"
                "read(x);\n"
                "if (x > 0) goto L8;\n"
                "sum = sum + f1(x);\n"
                "goto L13;\n"
                "L8: positives = positives + 1;\n"
                "if (x % 2 != 0) goto L12;\n"
                "sum = sum + f2(x);\n"
                "goto L13;\n"
                "L12: sum = sum + f3(x);\n"
                "L13: goto L3;\n"
                "L14: write(sum);\n"
                "write(positives);\n";
    Ex.Crit = Criterion(15, {"positives"});
    Ex.Structured = false;
    Ex.ConventionalLines = {2, 3, 4, 5, 8, 15};
    Ex.AgrawalLines = {2, 3, 4, 5, 7, 8, 13, 15};
    Ex.ExpectedReassociations = {{"L14", 15}};
    Ex.ExpectedProductiveTraversals = 1;
    Out.push_back(std::move(Ex));
  }

  // Figure 5-a: continue version. Slice w.r.t. positives on line 14
  // (Figures 5-b and 5-c).
  {
    PaperExample Ex;
    Ex.Name = "fig5a";
    Ex.Caption = "continue version of the running example (Figure 5-a)";
    Ex.Source = "sum = 0;\n"
                "positives = 0;\n"
                "while (!eof()) {\n"
                "read(x);\n"
                "if (x <= 0) {\n"
                "sum = sum + f1(x);\n"
                "continue; }\n"
                "positives = positives + 1;\n"
                "if (x % 2 == 0) {\n"
                "sum = sum + f2(x);\n"
                "continue; }\n"
                "sum = sum + f3(x); }\n"
                "write(sum);\n"
                "write(positives);\n";
    Ex.Crit = Criterion(14, {"positives"});
    Ex.Structured = true;
    Ex.ConventionalLines = {2, 3, 4, 5, 8, 14};
    Ex.AgrawalLines = {2, 3, 4, 5, 7, 8, 14};
    Ex.StructuredLines = Ex.AgrawalLines;
    Ex.ConservativeLines = Ex.AgrawalLines;
    Ex.ExpectedProductiveTraversals = 1;
    Out.push_back(std::move(Ex));
  }

  // Figure 8-a: goto version with direct back-jumps. Slice w.r.t.
  // positives on line 15 (Figures 8-b and 8-c). Also the program on
  // which the Jiang–Zhou–Robson rules miss lines 11 and 13.
  {
    PaperExample Ex;
    Ex.Name = "fig8a";
    Ex.Caption = "goto version with direct back-jumps (Figure 8-a)";
    Ex.Source = "sum = 0;\n"
                "positives = 0;\n"
                "L3: if (eof()) goto L14;\n"
                "read(x);\n"
                "if (x > 0) goto L8;\n"
                "sum = sum + f1(x);\n"
                "goto L3;\n"
                "L8: positives = positives + 1;\n"
                "if (x % 2 != 0) goto L12;\n"
                "sum = sum + f2(x);\n"
                "goto L3;\n"
                "L12: sum = sum + f3(x);\n"
                "goto L3;\n"
                "L14: write(sum);\n"
                "write(positives);\n";
    Ex.Crit = Criterion(15, {"positives"});
    Ex.Structured = false;
    Ex.ConventionalLines = {2, 3, 4, 5, 8, 15};
    Ex.AgrawalLines = {2, 3, 4, 5, 7, 8, 9, 11, 13, 15};
    Ex.JzrLines = std::set<unsigned>{2, 3, 4, 5, 7, 8, 15};
    Ex.ExpectedReassociations = {{"L14", 15}, {"L12", 13}};
    Ex.ExpectedProductiveTraversals = 1;
    Out.push_back(std::move(Ex));
  }

  // Figure 10-a: the unstructured program that needs two traversals.
  // Slice w.r.t. y on line 9 (Figure 10-b). The paper writes the
  // assignments as "..."; distinct literals stand in for them.
  {
    PaperExample Ex;
    Ex.Name = "fig10a";
    Ex.Caption = "unstructured program needing two traversals (Fig. 10-a)";
    Ex.Source = "if (c1) {\n"
                "goto L6;\n"
                "L3: y = 1;\n"
                "goto L8; }\n"
                "z = 2;\n"
                "L6: x = 3;\n"
                "goto L3;\n"
                "L8: write(x);\n"
                "write(y);\n"
                "write(z);\n";
    Ex.Crit = Criterion(9, {"y"});
    Ex.Structured = false;
    Ex.ConventionalLines = {3, 9};
    Ex.AgrawalLines = {1, 2, 3, 4, 7, 9};
    Ex.ExpectedReassociations = {{"L6", 7}, {"L8", 9}};
    Ex.ExpectedProductiveTraversals = 2;
    Out.push_back(std::move(Ex));
  }

  // Figure 14-a: the switch program separating Figure 12 from
  // Figure 13. Slices w.r.t. y on line 9 (Figures 14-b and 14-c).
  {
    PaperExample Ex;
    Ex.Name = "fig14a";
    Ex.Caption = "switch program where Figures 12 and 13 differ (14-a)";
    Ex.Source = "switch (c) { case 1:\n"
                "x = 1;\n"
                "break; case 2:\n"
                "y = 2;\n"
                "break; case 3:\n"
                "z = 3;\n"
                "break; }\n"
                "write(x);\n"
                "write(y);\n"
                "write(z);\n";
    Ex.Crit = Criterion(9, {"y"});
    Ex.Structured = true;
    Ex.ConventionalLines = {1, 4, 9};
    Ex.AgrawalLines = {1, 3, 4, 9};
    Ex.StructuredLines = std::set<unsigned>{1, 3, 4, 9};
    Ex.ConservativeLines = std::set<unsigned>{1, 3, 4, 5, 7, 9};
    Ex.ExpectedProductiveTraversals = 1;
    Out.push_back(std::move(Ex));
  }

  // Figure 16-a: the program on which Gallagher's rule loses the goto
  // on line 4. Slice w.r.t. y on line 10 (Figures 16-b and 16-c). Both
  // gotos are forward to lexical successors, so the program is
  // structured in the paper's sense.
  {
    PaperExample Ex;
    Ex.Name = "fig16a";
    Ex.Caption = "program where Gallagher's rule fails (Figure 16-a)";
    Ex.Source = "read(x);\n"
                "if (x < 0) {\n"
                "y = f1(x);\n"
                "goto L6; }\n"
                "y = f2(x);\n"
                "L6: if (y < 0) {\n"
                "z = g1(y);\n"
                "goto L10; }\n"
                "z = g2(y);\n"
                "L10: write(y);\n"
                "write(z);\n";
    Ex.Crit = Criterion(10, {"y"});
    Ex.Structured = true;
    Ex.ConventionalLines = {1, 2, 3, 5, 10};
    Ex.AgrawalLines = {1, 2, 3, 4, 5, 10};
    Ex.StructuredLines = std::set<unsigned>{1, 2, 3, 4, 5, 10};
    Ex.ConservativeLines = std::set<unsigned>{1, 2, 3, 4, 5, 10};
    Ex.GallagherLines = std::set<unsigned>{1, 2, 3, 5, 10};
    Ex.ExpectedReassociations = {{"L6", 10}};
    Ex.ExpectedProductiveTraversals = 1;
    Out.push_back(std::move(Ex));
  }

  return Out;
}

} // namespace

const std::vector<PaperExample> &jslice::paperExamples() {
  static const std::vector<PaperExample> Examples = buildExamples();
  return Examples;
}

const PaperExample &jslice::paperExample(const std::string &Name) {
  for (const PaperExample &Ex : paperExamples())
    if (Ex.Name == Name)
      return Ex;
  assert(false && "unknown paper example");
  static const PaperExample Empty;
  return Empty;
}
