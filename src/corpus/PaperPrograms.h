//===- corpus/PaperPrograms.h - The paper's figure programs -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every example program from the paper's figures, as Mini-C sources
/// whose statements sit on exactly the line numbers the paper uses, plus
/// the slices the paper reports for them. Golden tests and the figure
/// benches consume these.
///
/// Where the paper leaves an expression as "...", a distinct literal or
/// intrinsic call is substituted (documented in DESIGN.md); this never
/// changes dependences.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_CORPUS_PAPERPROGRAMS_H
#define JSLICE_CORPUS_PAPERPROGRAMS_H

#include "slicer/Criterion.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// One figure program with the paper's expected results.
struct PaperExample {
  std::string Name;    ///< "fig1a", "fig3a", ...
  std::string Caption; ///< What the paper uses it for.
  std::string Source;  ///< Mini-C, line numbers matching the paper.
  Criterion Crit;      ///< The paper's slicing criterion.

  /// True when every jump is structured (Section 4's precondition).
  bool Structured = false;

  /// Expected line sets, per the paper's figures. Empty optionals mean
  /// the paper does not show that slice for this program.
  std::set<unsigned> ConventionalLines;           ///< The "(b)" figures.
  std::set<unsigned> AgrawalLines;                ///< Figure 7's result.
  std::optional<std::set<unsigned>> StructuredLines;   ///< Figure 12.
  std::optional<std::set<unsigned>> ConservativeLines; ///< Figure 13.
  std::optional<std::set<unsigned>> GallagherLines;    ///< Figure 16-b.
  std::optional<std::set<unsigned>> JzrLines;          ///< Figure 8 claim.

  /// Labels the paper shows re-associated, label -> carrier line.
  std::map<std::string, unsigned> ExpectedReassociations;

  /// The number of productive Figure-7 traversals the paper reports.
  unsigned ExpectedProductiveTraversals = 0;
};

/// All figure programs, in paper order.
const std::vector<PaperExample> &paperExamples();

/// Lookup by name; asserts the name exists.
const PaperExample &paperExample(const std::string &Name);

} // namespace jslice

#endif // JSLICE_CORPUS_PAPERPROGRAMS_H
