//===- jslice/jslice.h - Umbrella public API ----------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for library users. Typical use:
///
/// \code
///   auto A = jslice::Analysis::fromSource(Source);
///   if (!A) { report(A.diags()); return; }
///   auto Slice = jslice::computeSlice(*A, jslice::Criterion(12, {"x"}),
///                                     jslice::SliceAlgorithm::Agrawal);
///   std::cout << jslice::printSlice(*A, *Slice);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_JSLICE_H
#define JSLICE_JSLICE_H

#include "cfg/Cfg.h"
#include "cfg/LexicalSuccessorTree.h"
#include "dataflow/DefUse.h"
#include "dataflow/ReachingDefinitions.h"
#include "graph/Digraph.h"
#include "graph/Dominators.h"
#include "graph/Dot.h"
#include "interp/Interpreter.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "pdg/ControlDependence.h"
#include "pdg/Pdg.h"
#include "slicer/Analysis.h"
#include "slicer/BatchSlicer.h"
#include "slicer/Criterion.h"
#include "slicer/ChoiFerranteSynthesis.h"
#include "slicer/SlicePrinter.h"
#include "slicer/Slicers.h"
#include "slicer/WeiserSlicer.h"

#endif // JSLICE_JSLICE_H
