//===- gen/ProgramGenerator.cpp - Seeded random Mini-C programs ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"

#include "lang/AstWalk.h"
#include "slicer/Analysis.h"

#include <random>

using namespace jslice;

namespace {

class Generator {
public:
  explicit Generator(const GenOptions &Opts)
      : Opts(Opts), Rng(Opts.Seed), Remaining(Opts.TargetStmts) {}

  std::string run() {
    // Keep emitting top-level statements until the budget is spent (a
    // top-level unconditional jump ends the program — anything after it
    // would be dead code).
    while (Remaining > 0)
      if (genStmt(/*Depth=*/0))
        break;
    if (!EmittedWrite)
      emitLine("write(" + varName(0) + ");");
    // Park any labels still dangling on trailing empty statements
    // (emitRaw: emitLine would attach a second pending label to the
    // same line, producing an invalid double label).
    for (unsigned Label : PendingLabels)
      emitRaw("L" + std::to_string(Label) + ": ;");
    PendingLabels.clear();
    return Out;
  }

private:
  unsigned randint(unsigned Lo, unsigned Hi) {
    return std::uniform_int_distribution<unsigned>(Lo, Hi)(Rng);
  }
  bool chance(unsigned Percent) { return randint(1, 100) <= Percent; }

  std::string varName(unsigned Index) {
    return "x" + std::to_string(Index % std::max(1u, Opts.NumVars));
  }
  std::string randomVar() { return varName(randint(0, Opts.NumVars - 1)); }

  /// A small side-effect-free expression.
  std::string genExpr(unsigned Depth) {
    switch (randint(0, Depth >= 2 ? 2 : 5)) {
    case 0:
      return std::to_string(randint(0, 9));
    case 1:
    case 2:
      return randomVar();
    case 3:
      return "f" + std::to_string(randint(1, 3)) + "(" + randomVar() + ")";
    default: {
      static const char *Ops[] = {"+", "-", "*", "%"};
      return genExpr(Depth + 1) + " " + Ops[randint(0, 3)] + " " +
             genExpr(Depth + 1);
    }
    }
  }

  /// A condition; biased toward eof() inside loops so generated loops
  /// usually terminate on a finite input stream.
  std::string genCond(bool ForLoop) {
    if (ForLoop && chance(50))
      return "!eof()";
    static const char *Rels[] = {"<", "<=", ">", ">=", "==", "!="};
    return genExpr(1) + " " + Rels[randint(0, 5)] + " " + genExpr(1);
  }

  void emitLine(const std::string &Text) {
    std::string Prefix;
    // Attach a dangling forward-goto label here — always when the
    // previous line was a goto (keeping the line after a goto reachable
    // and the generated program free of dead code), sometimes otherwise.
    if (!PendingLabels.empty() && (ForceLabel || chance(40))) {
      Prefix = "L" + std::to_string(PendingLabels.back()) + ": ";
      PendingLabels.pop_back();
    }
    ForceLabel = false;
    Out += Prefix + Text + "\n";
  }

  /// Emits a line that opens or continues compound syntax; labels are
  /// never attached to these (they carry no fresh statement).
  void emitRaw(const std::string &Text) { Out += Text + "\n"; }

  void genStmtList(unsigned Depth) {
    unsigned Count = randint(1, 4 + Depth);
    for (unsigned I = 0; I != Count && Remaining > 0; ++I) {
      // Never emit a statement directly after an unconditional jump:
      // it would be unreachable, and dead jump statements void the
      // paper's guarantees (see Cfg::unreachableNodes).
      if (genStmt(Depth))
        break;
    }
  }

  /// Returns true when the emitted statement unconditionally transfers
  /// control (the rest of the current list would be dead code).
  bool genStmt(unsigned Depth) {
    if (Remaining == 0)
      return false;
    --Remaining;

    bool AtDepthLimit = Depth >= Opts.MaxDepth;
    unsigned Roll = randint(1, 100);

    // Simple statements — always available.
    if (AtDepthLimit || Roll <= 45) {
      switch (randint(0, 5)) {
      case 0:
      case 1:
        emitLine(randomVar() + " = " + genExpr(0) + ";");
        return false;
      case 2:
        emitLine("read(" + randomVar() + ");");
        return false;
      case 3:
      case 4:
        emitLine("write(" + genExpr(1) + ");");
        EmittedWrite = true;
        return false;
      default:
        return genJumpOrAssign(Depth);
      }
    }

    if (Roll <= 65) { // if / if-else
      emitLine("if (" + genCond(false) + ") {");
      genStmtList(Depth + 1);
      if (chance(40)) {
        emitRaw("} else {");
        genStmtList(Depth + 1);
      }
      emitRaw("}");
      return false;
    }

    if (Roll <= 80) { // while
      emitLine("while (" + genCond(true) + ") {");
      ++LoopDepth;
      genStmtList(Depth + 1);
      --LoopDepth;
      emitRaw("}");
      return false;
    }

    if (Roll <= 87) { // do-while
      emitLine("do {");
      ++LoopDepth;
      genStmtList(Depth + 1);
      --LoopDepth;
      emitRaw("} while (" + genCond(true) + ");");
      return false;
    }

    if (Roll <= 94 || !Opts.AllowSwitch) { // for
      std::string Var = randomVar();
      emitLine("for (" + Var + " = 0; " + Var + " < " +
               std::to_string(randint(1, 5)) + "; " + Var + " = " + Var +
               " + 1) {");
      ++LoopDepth;
      genStmtList(Depth + 1);
      --LoopDepth;
      emitRaw("}");
      return false;
    }

    // switch
    unsigned Clauses = randint(1, 3);
    emitLine("switch (" + genExpr(1) + ") { case 0:");
    ++SwitchDepth;
    bool UsedDefault = false;
    for (unsigned Clause = 0; Clause != Clauses; ++Clause) {
      genStmtList(Depth + 1);
      if (Clause + 1 == Clauses)
        continue;
      if (!UsedDefault && chance(25)) {
        emitRaw("default:");
        UsedDefault = true;
      } else {
        emitRaw("case " + std::to_string(Clause + 1) + ":");
      }
    }
    --SwitchDepth;
    emitRaw("}");
    return false;
  }

  /// Returns true when a jump was emitted.
  bool genJumpOrAssign(unsigned Depth) {
    (void)Depth;
    // Pick among the jump kinds the options and context allow; fall back
    // to an assignment.
    if (Opts.AllowGotos && chance(50)) {
      unsigned Label = NextLabel++;
      // Emit before registering the label so it can never land on this
      // very goto (`L0: goto L0;` would be an exit-unreachable cycle).
      emitLine("goto L" + std::to_string(Label) + ";");
      PendingLabels.push_back(Label);
      // The next emitted line takes this label, so generation can keep
      // going without creating dead code.
      ForceLabel = true;
      return false;
    }
    if (Opts.AllowStructuredJumps) {
      unsigned Kind = randint(0, 9);
      if (Kind <= 3 && (LoopDepth > 0 || SwitchDepth > 0)) {
        emitLine("break;");
        return true;
      }
      if (Kind <= 6 && LoopDepth > 0) {
        emitLine("continue;");
        return true;
      }
      if (Kind == 7 && Opts.AllowReturn) {
        emitLine(chance(50) ? "return;" : "return " + genExpr(1) + ";");
        return true;
      }
    }
    emitLine(randomVar() + " = " + genExpr(0) + ";");
    return false;
  }

  const GenOptions &Opts;
  std::mt19937_64 Rng;
  unsigned Remaining;
  std::string Out;
  unsigned LoopDepth = 0;
  unsigned SwitchDepth = 0;
  unsigned NextLabel = 0;
  bool ForceLabel = false;
  std::vector<unsigned> PendingLabels;
  bool EmittedWrite = false;
};

} // namespace

std::string jslice::generateProgram(const GenOptions &Opts) {
  return Generator(Opts).run();
}

std::vector<Criterion> jslice::writeCriteria(const Program &Prog) {
  std::vector<Criterion> Out;
  for (const Stmt *Top : Prog.topLevel()) {
    walkStmtTree(Top, [&](const Stmt *S) {
      const auto *Write = dyn_cast<WriteStmt>(S);
      if (!Write)
        return;
      std::set<std::string> Used;
      collectUsedVars(S, Used);
      Out.emplace_back(S->getLoc().Line,
                       std::vector<std::string>(Used.begin(), Used.end()));
    });
  }
  return Out;
}

std::vector<Criterion> jslice::reachableWriteCriteria(const Analysis &A) {
  std::vector<bool> Reachable =
      reachableFrom(A.cfg().graph(), A.cfg().entry());
  std::vector<Criterion> Out;
  for (const Criterion &Crit : writeCriteria(A.program())) {
    bool Live = false;
    for (unsigned Node : A.cfg().nodesOnLine(Crit.Line))
      if (Reachable[Node])
        Live = true;
    if (Live)
      Out.push_back(Crit);
  }
  return Out;
}
