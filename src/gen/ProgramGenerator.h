//===- gen/ProgramGenerator.h - Seeded random Mini-C programs -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random program generator producing Mini-C source text, used
/// by the property tests (slice correctness over thousands of programs)
/// and the scaling benchmarks. Two dialects:
///
///  * structured mode — if/while/do/for/switch plus break, continue,
///    and return (every jump is structured in the paper's sense);
///  * unstructured mode — additionally forward gotos, including jumps
///    into and out of compound statements (unstructured control flow
///    with exit-reachability guaranteed by construction: all gotos jump
///    forward in the text, so the only back edges are loop back edges,
///    which always carry a structural exit).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_GEN_PROGRAMGENERATOR_H
#define JSLICE_GEN_PROGRAMGENERATOR_H

#include "lang/Ast.h"
#include "slicer/Criterion.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jslice {

/// Generation knobs.
struct GenOptions {
  uint64_t Seed = 1;

  /// Approximate number of statements to emit.
  unsigned TargetStmts = 30;

  /// Maximum nesting depth of compound statements.
  unsigned MaxDepth = 4;

  /// Number of scalar variables (x0..x{n-1}).
  unsigned NumVars = 4;

  /// Emit forward gotos (unstructured mode).
  bool AllowGotos = false;

  /// Emit break/continue/return.
  bool AllowStructuredJumps = true;

  /// Emit return statements. Returns are multi-level exits; they are
  /// the ingredient of the Section-4 property-2 counterexample (see
  /// DESIGN.md), so the Figure-12/13 property tests turn them off.
  bool AllowReturn = true;

  /// Emit switch statements. C's clause fall-through makes a switch
  /// behave jump-like even without break statements — it breaks the
  /// LST == PDT identity for jump-free programs (see DESIGN.md) — so
  /// the property test for that identity turns switches off.
  bool AllowSwitch = true;
};

/// Generates one program as Mini-C source text (one statement per line,
/// so line numbers are usable as criteria). The result always parses,
/// passes sema, and builds a CFG (exit-reachable by construction).
std::string generateProgram(const GenOptions &Opts);

/// Criteria worth slicing on: one per write statement (its line, the
/// variables it uses), in source order.
std::vector<Criterion> writeCriteria(const Program &Prog);

/// Like writeCriteria, but restricted to writes reachable from program
/// entry. Criteria in dead code are degenerate — the criterion never
/// executes, every slice is behaviour-preserving, and the paper's
/// equivalence theorems (Figure 7 == Ball–Horwitz, Figure 12 ==
/// Figure 7) do not apply — so the property tests use this filter.
std::vector<Criterion> reachableWriteCriteria(const Analysis &A);

} // namespace jslice

#endif // JSLICE_GEN_PROGRAMGENERATOR_H
