//===- net/ChaosProxy.cpp - Network fault-injection proxy ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/ChaosProxy.h"

#include "net/Socket.h"
#include "support/Pipe.h"

#include <cerrno>
#include <chrono>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace jslice;

/// One proxied connection. The pump thread owns the fds and closes
/// them (under M) when it exits; stop() only shuts them down — also
/// under M, so it can never touch a closed (possibly reused) fd
/// number. Finished connections are reaped by the accept loop.
struct ChaosProxy::Conn {
  std::mutex M; ///< Guards the fds against the close/shutdown race.
  int ClientFd = -1;
  int UpstreamFd = -1;
  uint64_t Rng = 1;
  std::atomic<bool> Done{false};
  std::thread Pump;
};

ChaosProxy::ChaosProxy(const ChaosOptions &O) : Opts(O) {}

ChaosProxy::~ChaosProxy() { stop(); }

ChaosStats ChaosProxy::stats() const {
  ChaosStats S;
  S.Connections = Connections.load(std::memory_order_relaxed);
  S.Delays = Delays.load(std::memory_order_relaxed);
  S.Truncations = Truncations.load(std::memory_order_relaxed);
  S.Resets = Resets.load(std::memory_order_relaxed);
  S.Stalls = Stalls.load(std::memory_order_relaxed);
  S.BytesForwarded = BytesForwarded.load(std::memory_order_relaxed);
  return S;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

namespace {

uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

/// Rolls a permille check against the connection's PRNG stream.
bool roll(uint64_t &S, unsigned Permille) {
  return Permille && nextRand(S) % 1000 < Permille;
}

} // namespace

bool ChaosProxy::start(std::string &Err) {
  if (Opts.UpstreamPort == 0) {
    Err = "chaos proxy needs an upstream port";
    return false;
  }
  ListenFd = listenTcp(Opts.ListenHost, Opts.ListenPort, /*Backlog=*/128,
                       Err);
  if (ListenFd < 0)
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

uint16_t ChaosProxy::port() const {
  return ListenFd >= 0 ? tcpLocalPort(ListenFd) : 0;
}

void ChaosProxy::stop() {
  if (Stopping.exchange(true))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::shared_ptr<Conn>> Local;
  {
    std::lock_guard<std::mutex> L(ConnsM);
    Local.swap(Conns);
  }
  for (auto &C : Local) {
    // Shutdown (not close) wakes the pump thread's poll; the thread
    // still owns the fds and closes them on exit.
    std::lock_guard<std::mutex> FdLock(C->M);
    if (C->ClientFd >= 0)
      ::shutdown(C->ClientFd, SHUT_RDWR);
    if (C->UpstreamFd >= 0)
      ::shutdown(C->UpstreamFd, SHUT_RDWR);
  }
  for (auto &C : Local)
    if (C->Pump.joinable())
      C->Pump.join();
  closeQuietly(ListenFd);
}

void ChaosProxy::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    // Reap finished connections so a long soak (resets force constant
    // reconnects) doesn't accumulate dead threads.
    {
      std::lock_guard<std::mutex> L(ConnsM);
      for (size_t I = 0; I != Conns.size();) {
        if (Conns[I]->Done.load(std::memory_order_acquire)) {
          if (Conns[I]->Pump.joinable())
            Conns[I]->Pump.join();
          Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
        } else {
          ++I;
        }
      }
    }
    struct pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, 100);
    if (N <= 0)
      continue;
    int ClientFd = acceptTcp(ListenFd);
    if (ClientFd < 0)
      continue;
    setNonBlocking(ClientFd, false);

    std::string Err;
    int UpFd = connectTcp(Opts.UpstreamHost, Opts.UpstreamPort,
                          /*TimeoutMs=*/5000, Err);
    if (UpFd < 0) {
      ::close(ClientFd);
      continue;
    }

    auto C = std::make_shared<Conn>();
    C->ClientFd = ClientFd;
    C->UpstreamFd = UpFd;
    C->Rng = (Opts.Seed ^ (NextConnId++ * 0x9E3779B97F4A7C15ull)) | 1;
    Connections.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(ConnsM);
      Conns.push_back(C);
    }
    C->Pump = std::thread([this, C] { pump(C); });
  }
}

void ChaosProxy::pump(std::shared_ptr<Conn> C) {
  bool ClientOpen = true, UpstreamOpen = true;
  char Chunk[16384];

  auto sendAll = [](int Fd, const char *Data, size_t N) {
    size_t Sent = 0;
    while (Sent < N) {
      int64_t W = sendSome(Fd, Data + Sent, N - Sent);
      if (W <= 0)
        return false;
      Sent += static_cast<size_t>(W);
    }
    return true;
  };

  while ((ClientOpen || UpstreamOpen) &&
         !Stopping.load(std::memory_order_relaxed)) {
    struct pollfd P[2];
    P[0] = {C->ClientFd, static_cast<short>(ClientOpen ? POLLIN : 0), 0};
    P[1] = {C->UpstreamFd, static_cast<short>(UpstreamOpen ? POLLIN : 0),
            0};
    int N = ::poll(P, 2, 100);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0)
      continue;

    // Request direction: client -> upstream. Delay/stall only — torn
    // *requests* are covered by the server's read-deadline tests; the
    // soak needs every accepted request to eventually reach the server
    // so the exactly-once audit can hold.
    if (ClientOpen && P[0].revents) {
      int64_t R = recvSome(C->ClientFd, Chunk, sizeof(Chunk));
      if (R <= 0 && R != NetWouldBlock) {
        ClientOpen = false;
        ::shutdown(C->UpstreamFd, SHUT_WR); // Propagate the half-close.
      } else if (R > 0) {
        if (roll(C->Rng, Opts.StallPermille)) {
          Stalls.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.StallMs));
        } else if (roll(C->Rng, Opts.DelayPermille)) {
          Delays.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.DelayMs));
        }
        if (!sendAll(C->UpstreamFd, Chunk, static_cast<size_t>(R)))
          UpstreamOpen = ClientOpen = false;
        else
          BytesForwarded.fetch_add(static_cast<uint64_t>(R),
                                   std::memory_order_relaxed);
      }
    }

    // Response direction: upstream -> client. All four faults.
    if (UpstreamOpen && P[1].revents) {
      int64_t R = recvSome(C->UpstreamFd, Chunk, sizeof(Chunk));
      if (R <= 0 && R != NetWouldBlock) {
        UpstreamOpen = false;
        ::shutdown(C->ClientFd, SHUT_WR);
      } else if (R > 0) {
        size_t Forward = static_cast<size_t>(R);
        bool CloseAfter = false, HardReset = false;
        if (roll(C->Rng, Opts.ResetPermille)) {
          Resets.fetch_add(1, std::memory_order_relaxed);
          Forward /= 2;
          CloseAfter = HardReset = true;
        } else if (roll(C->Rng, Opts.TruncatePermille)) {
          Truncations.fetch_add(1, std::memory_order_relaxed);
          Forward /= 2;
          CloseAfter = true;
        } else if (roll(C->Rng, Opts.StallPermille)) {
          Stalls.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.StallMs));
        } else if (roll(C->Rng, Opts.DelayPermille)) {
          Delays.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Opts.DelayMs));
        }
        if (Forward &&
            !sendAll(C->ClientFd, Chunk, Forward))
          CloseAfter = true;
        else
          BytesForwarded.fetch_add(Forward, std::memory_order_relaxed);
        if (CloseAfter) {
          if (HardReset)
            setHardReset(C->ClientFd); // close() sends RST, not FIN.
          break;
        }
      }
    }
  }

  {
    std::lock_guard<std::mutex> FdLock(C->M);
    closeQuietly(C->ClientFd);
    closeQuietly(C->UpstreamFd);
  }
  C->Done.store(true, std::memory_order_release);
}

#else // !JSLICE_HAVE_POSIX_PROCESS

bool ChaosProxy::start(std::string &Err) {
  Err = "TCP transport unavailable on this platform";
  return false;
}
uint16_t ChaosProxy::port() const { return 0; }
void ChaosProxy::stop() { Stopping.store(true); }
void ChaosProxy::acceptLoop() {}
void ChaosProxy::pump(std::shared_ptr<Conn>) {}

#endif
