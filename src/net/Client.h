//===- net/Client.h - Retrying JSON-Lines client ---------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the TCP transport: one connection, strict
/// request/response (one line out, one line back), with timeouts on
/// every blocking step and bounded retries over fresh connections.
///
/// The retry contract (DESIGN.md, "TCP transport & fault containment"):
/// a transport failure — connect refused, send error, torn or absent
/// response, response deadline — closes the connection, backs off
/// (exponential with jitter, bounded), reconnects, and resubmits the
/// *same line*. Resubmission is safe for slice requests because the
/// server deduplicates by the journal's content key: a request that
/// crashed the service before answering is quarantined, and the
/// resubmission draws a deterministic `poisoned` verdict instead of
/// crashing the service twice. A request that *completed* before the
/// response was torn re-runs from scratch — slicing is a pure function
/// of the request, so the client observes the same terminal status
/// (the one duplicate-side-effect-free case a stateless resubmit
/// needs). A `bad-request` naming an id already in flight is also
/// retried, since it means the first submission is still being served.
///
/// Responses are never interleaved across retries: every retry starts
/// on a fresh connection, so a late response to a previous attempt can
/// only land on a socket this client has already closed.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_CLIENT_H
#define JSLICE_NET_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace jslice {

struct ClientOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;

  /// Failover set: "host:port" endpoints tried in order. When
  /// non-empty this overrides Host/Port; a transport failure rotates
  /// to the next endpoint before the retry reconnects, so a request
  /// that dies with the primary is resubmitted to the standby.
  /// Resubmission across endpoints is idempotent for the same reason
  /// same-endpoint retries are: the server dedups crashed work by the
  /// journal's content key, and slicing is a pure function of the
  /// request (DESIGN.md, "Replication & failover").
  std::vector<std::string> Endpoints;

  int ConnectTimeoutMs = 5000;
  /// Deadline for the full response line, measured from the moment the
  /// request was sent.
  int ResponseTimeoutMs = 30000;

  /// Total attempts per request (1 = never retry).
  unsigned MaxAttempts = 4;
  /// Exponential backoff between attempts: min(Cap, Base << (n-1))
  /// plus up to half that again in jitter.
  uint64_t BackoffBaseMs = 50;
  uint64_t BackoffCapMs = 2000;
  /// Total retry wall-clock budget per request() call, in
  /// milliseconds: once elapsed time crosses it no further attempt
  /// starts and the sleep before a retry is clipped to what remains.
  /// A dead endpoint then costs a bounded, deterministic failure
  /// instead of the full backoff ladder. 0 = unbounded (the historical
  /// behavior).
  uint64_t RetryBudgetMs = 0;
  /// Seed for the jitter PRNG; 0 = derived from this object's address
  /// (distinct across concurrent clients, which is all jitter needs).
  uint64_t JitterSeed = 0;
};

/// The outcome of one request after all retries.
struct ClientResult {
  bool Ok = false;          ///< A complete response line arrived.
  std::string Response;     ///< The line (without newline) when Ok.
  std::string TransportError; ///< Last failure when !Ok.
  unsigned Attempts = 0;    ///< Connections consumed (1 = first try).
};

/// One logical connection to a jslice_serve --listen endpoint.
/// Reconnects under the hood; not thread-safe (one request in flight).
class ClientConnection {
public:
  explicit ClientConnection(const ClientOptions &Opts);
  ~ClientConnection();

  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Sends \p Line (newline appended) and waits for one response line,
  /// retrying over fresh connections per the options.
  ClientResult request(const std::string &Line);

  /// Like request() but never retries and tolerates no response (used
  /// for fire-and-forget control lines during shutdown races).
  ClientResult requestOnce(const std::string &Line);

  /// Drops the current connection (next request reconnects).
  void disconnect();

  /// Total reconnects performed across the connection's lifetime.
  uint64_t reconnects() const { return Reconnects; }

  /// Endpoint failovers performed (rotations through Opts.Endpoints).
  uint64_t failovers() const { return Failovers; }

  /// The "host:port" the next attempt will connect to.
  std::string currentEndpoint() const;

  /// True when the last request() stopped because RetryBudgetMs ran
  /// out rather than because attempts were exhausted.
  bool budgetExhausted() const { return BudgetExhausted; }

private:
  bool ensureConnected(std::string &Err);
  /// One attempt: send + read one line. False = transport failure (the
  /// connection is closed on the way out).
  bool attempt(const std::string &Line, std::string &Response,
               std::string &Err);
  void backoff(unsigned Attempt, uint64_t MaxSleepMs);
  void rotateEndpoint();

  ClientOptions Opts;
  int Fd = -1;
  std::string RecvBuf; ///< Bytes past the last consumed newline.
  bool EverConnected = false;
  uint64_t Reconnects = 0;
  uint64_t Failovers = 0;
  size_t EndpointIdx = 0; ///< Index into Opts.Endpoints (when set).
  bool BudgetExhausted = false;
  uint64_t JitterState;
};

/// True when \p Response is a bad-request naming an id already in
/// flight — the one *protocol-level* response the retry loop treats as
/// transient (the original submission is still being served; back off
/// and resubmit to collect its verdict).
bool isRetriableInFlight(const std::string &Response);

} // namespace jslice

#endif // JSLICE_NET_CLIENT_H
