//===- net/Socket.h - Thin TCP socket helpers ------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The POSIX socket layer under the TCP transport (net/TcpServer.h),
/// the retrying client (net/Client.h), and the chaos proxy
/// (net/ChaosProxy.h). Same discipline as support/Pipe.h: error codes
/// instead of exceptions, close-on-exec everywhere, and non-POSIX
/// builds compile but fail closed (every function reports failure, so
/// the service falls back to its stdin transport).
///
/// All sends go through ::send with MSG_NOSIGNAL — no caller needs a
/// process-wide SIGPIPE disposition to survive a peer reset; the reset
/// surfaces as an error return on exactly the connection that died.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_SOCKET_H
#define JSLICE_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace jslice {

/// Splits "HOST:PORT" (e.g. "127.0.0.1:9000", ":9000" meaning all
/// interfaces is not supported — the host is required). False on a
/// missing colon, empty host, or a port outside 1..65535 (port 0 is
/// accepted: "bind me an ephemeral port").
bool parseHostPort(const std::string &Spec, std::string &Host,
                   uint16_t &Port);

/// Creates a listening TCP socket on \p Host:\p Port (SO_REUSEADDR,
/// close-on-exec, non-blocking). Port 0 binds an ephemeral port — read
/// it back with tcpLocalPort(). With \p ReusePort, SO_REUSEPORT is set
/// before bind so several listeners (one per transport shard) can
/// share the port and let the kernel spread accepted connections;
/// fails with a reason on platforms without the option, and the
/// sharded transport falls back to fd handoff. Returns the fd, or -1
/// with a human-readable reason in \p Err.
int listenTcp(const std::string &Host, uint16_t Port, int Backlog,
              std::string &Err, bool ReusePort = false);

/// Accepts one pending connection from \p ListenFd (close-on-exec,
/// non-blocking). Returns the fd, or -1 when nothing is pending or on
/// error — the accept loop treats both the same way: go back to poll.
int acceptTcp(int ListenFd);

/// Connects to \p Host:\p Port within \p TimeoutMs milliseconds
/// (non-blocking connect + poll, then the socket is returned in
/// *blocking* mode — clients pace reads with poll, not O_NONBLOCK).
/// Returns the fd, or -1 with a reason in \p Err.
int connectTcp(const std::string &Host, uint16_t Port, int TimeoutMs,
               std::string &Err);

/// The locally bound port of \p Fd, or 0 on error.
uint16_t tcpLocalPort(int Fd);

/// Flips O_NONBLOCK. False on error.
bool setNonBlocking(int Fd, bool NonBlocking);

/// Shrinks the kernel send buffer (ops/test knob for exercising
/// backpressure; the kernel clamps to its own minimum). No-op when
/// \p Bytes is 0.
void setSendBufferBytes(int Fd, int Bytes);

/// Disables Nagle; a JSON-Lines request/response protocol is exactly
/// the small-write pattern Nagle penalizes.
void setTcpNoDelay(int Fd);

/// Arms SO_LINGER with a zero timeout so the next close() sends RST
/// instead of FIN — the chaos proxy's "mid-response reset" fault.
void setHardReset(int Fd);

/// Sentinel for sendSome/recvSome: the operation would block.
constexpr int64_t NetWouldBlock = -2;

/// One ::send(MSG_NOSIGNAL), looping only over EINTR. Returns bytes
/// sent, NetWouldBlock on EAGAIN, -1 on error (including EPIPE /
/// ECONNRESET from a dead peer).
int64_t sendSome(int Fd, const void *Buf, size_t N);

/// One ::recv, looping only over EINTR. Returns bytes read, 0 on EOF,
/// NetWouldBlock on EAGAIN, -1 on error.
int64_t recvSome(int Fd, void *Buf, size_t N);

/// Creates a connected AF_UNIX SOCK_STREAM pair (close-on-exec NOT set
/// on either end — the pair exists to cross an exec boundary during a
/// generation handoff; callers close the end they keep after fork).
/// False on error.
bool makeSocketPair(int Fds[2]);

/// Sends a duplicate of \p Fd over the Unix-domain socket \p Sock via
/// SCM_RIGHTS (one data byte rides along so the receiver has something
/// to block on). The caller keeps ownership of \p Fd. False on error
/// or on platforms without Unix-domain sockets.
bool sendFdOverSocket(int Sock, int Fd);

/// Receives one fd sent with sendFdOverSocket, blocking up to
/// \p TimeoutMs milliseconds. Returns the fd (caller owns it), or -1
/// on timeout, EOF, or a message without ancillary data.
int recvFdOverSocket(int Sock, int TimeoutMs);

} // namespace jslice

#endif // JSLICE_NET_SOCKET_H
