//===- net/Socket.cpp - Thin TCP socket helpers ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include "support/Pipe.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace jslice;

bool jslice::parseHostPort(const std::string &Spec, std::string &Host,
                           uint16_t &Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0)
    return false;
  std::string PortText = Spec.substr(Colon + 1);
  if (PortText.empty() || PortText.size() > 5)
    return false;
  uint32_t P = 0;
  for (char C : PortText) {
    if (C < '0' || C > '9')
      return false;
    P = P * 10 + static_cast<uint32_t>(C - '0');
  }
  if (P > 65535)
    return false;
  Host = Spec.substr(0, Colon);
  Port = static_cast<uint16_t>(P);
  return true;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

namespace {

void setCloexec(int Fd) { ::fcntl(Fd, F_SETFD, FD_CLOEXEC); }

/// Milliseconds left until \p Deadline, clamped at 0; -1 when the
/// caller asked to wait forever. Same discipline as support/Pipe.cpp:
/// every poll() restart after EINTR waits the *remaining* time, so a
/// signal storm cannot stretch the timeout.
int remainingMs(int TimeoutMs, std::chrono::steady_clock::time_point Deadline) {
  if (TimeoutMs < 0)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - std::chrono::steady_clock::now());
  return Left.count() <= 0 ? 0 : static_cast<int>(Left.count());
}

/// Resolves \p Host:\p Port into an IPv4 sockaddr. False with a
/// reason when the name does not resolve.
bool resolveV4(const std::string &Host, uint16_t Port, sockaddr_in &Out,
               std::string &Err) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sin_family = AF_INET;
  Out.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Out.sin_addr) == 1)
    return true;
  addrinfo Hints = {};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int RC = ::getaddrinfo(Host.c_str(), nullptr, &Hints, &Res);
  if (RC != 0 || !Res) {
    Err = "cannot resolve host '" + Host + "': " + ::gai_strerror(RC);
    return false;
  }
  Out.sin_addr = reinterpret_cast<sockaddr_in *>(Res->ai_addr)->sin_addr;
  ::freeaddrinfo(Res);
  return true;
}

} // namespace

int jslice::listenTcp(const std::string &Host, uint16_t Port, int Backlog,
                      std::string &Err, bool ReusePort) {
  sockaddr_in Addr;
  if (!resolveV4(Host, Port, Addr, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  setCloexec(Fd);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (ReusePort) {
#ifdef SO_REUSEPORT
    if (::setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One)) != 0) {
      Err = std::string("setsockopt(SO_REUSEPORT): ") + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
#else
    Err = "SO_REUSEPORT unavailable on this platform";
    ::close(Fd);
    return -1;
#endif
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("bind: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, Backlog) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  setNonBlocking(Fd, true);
  return Fd;
}

int jslice::acceptTcp(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    setCloexec(Fd);
    setNonBlocking(Fd, true);
    setTcpNoDelay(Fd);
    return Fd;
  }
}

int jslice::connectTcp(const std::string &Host, uint16_t Port,
                       int TimeoutMs, std::string &Err) {
  sockaddr_in Addr;
  if (!resolveV4(Host, Port, Addr, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  setCloexec(Fd);
  setNonBlocking(Fd, true);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC != 0 && errno != EINPROGRESS && errno != EINTR) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (RC != 0) {
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLOUT;
    P.revents = 0;
    // The timeout is a deadline, not a per-poll() budget: EINTR
    // restarts wait only the remaining time. Restarting the full
    // TimeoutMs per signal let a steady signal storm hold a dead
    // connect attempt open indefinitely.
    std::chrono::steady_clock::time_point Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);
    for (;;) {
      int N = ::poll(&P, 1, remainingMs(TimeoutMs, Deadline));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Err = N == 0 ? "connect timed out"
                     : std::string("poll: ") + std::strerror(errno);
        ::close(Fd);
        return -1;
      }
      break;
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len) != 0 ||
        SoErr != 0) {
      Err = std::string("connect: ") + std::strerror(SoErr ? SoErr : errno);
      ::close(Fd);
      return -1;
    }
  }
  setNonBlocking(Fd, false);
  setTcpNoDelay(Fd);
  return Fd;
}

uint16_t jslice::tcpLocalPort(int Fd) {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return 0;
  return ntohs(Addr.sin_port);
}

bool jslice::setNonBlocking(int Fd, bool NonBlocking) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  Flags = NonBlocking ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return ::fcntl(Fd, F_SETFL, Flags) == 0;
}

void jslice::setSendBufferBytes(int Fd, int Bytes) {
  if (Bytes > 0)
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Bytes, sizeof(Bytes));
}

void jslice::setTcpNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

void jslice::setHardReset(int Fd) {
  struct linger L;
  L.l_onoff = 1;
  L.l_linger = 0;
  ::setsockopt(Fd, SOL_SOCKET, SO_LINGER, &L, sizeof(L));
}

int64_t jslice::sendSome(int Fd, const void *Buf, size_t N) {
  for (;;) {
    ssize_t W = ::send(Fd, Buf, N, MSG_NOSIGNAL);
    if (W >= 0)
      return static_cast<int64_t>(W);
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return NetWouldBlock;
    return -1;
  }
}

int64_t jslice::recvSome(int Fd, void *Buf, size_t N) {
  for (;;) {
    ssize_t R = ::recv(Fd, Buf, N, 0);
    if (R >= 0)
      return static_cast<int64_t>(R);
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return NetWouldBlock;
    return -1;
  }
}

bool jslice::makeSocketPair(int Fds[2]) {
  // No FD_CLOEXEC: the whole point of the pair is to survive the
  // successor generation's exec so the listener can cross it.
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) == 0;
}

bool jslice::sendFdOverSocket(int Sock, int Fd) {
  char Byte = 'f';
  struct iovec IO;
  IO.iov_base = &Byte;
  IO.iov_len = 1;
  // Aligned cmsg buffer, per cmsg(3).
  union {
    struct cmsghdr Align;
    char Buf[CMSG_SPACE(sizeof(int))];
  } Ctl;
  std::memset(&Ctl, 0, sizeof(Ctl));
  struct msghdr Msg;
  std::memset(&Msg, 0, sizeof(Msg));
  Msg.msg_iov = &IO;
  Msg.msg_iovlen = 1;
  Msg.msg_control = Ctl.Buf;
  Msg.msg_controllen = sizeof(Ctl.Buf);
  struct cmsghdr *Cm = CMSG_FIRSTHDR(&Msg);
  Cm->cmsg_level = SOL_SOCKET;
  Cm->cmsg_type = SCM_RIGHTS;
  Cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(Cm), &Fd, sizeof(int));
  for (;;) {
    ssize_t W = ::sendmsg(Sock, &Msg, MSG_NOSIGNAL);
    if (W >= 0)
      return true;
    if (errno != EINTR)
      return false;
  }
}

int jslice::recvFdOverSocket(int Sock, int TimeoutMs) {
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);
  struct pollfd P;
  P.fd = Sock;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int N = ::poll(&P, 1, remainingMs(TimeoutMs, Deadline));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return -1;
    break;
  }
  char Byte = 0;
  struct iovec IO;
  IO.iov_base = &Byte;
  IO.iov_len = 1;
  union {
    struct cmsghdr Align;
    char Buf[CMSG_SPACE(sizeof(int))];
  } Ctl;
  std::memset(&Ctl, 0, sizeof(Ctl));
  struct msghdr Msg;
  std::memset(&Msg, 0, sizeof(Msg));
  Msg.msg_iov = &IO;
  Msg.msg_iovlen = 1;
  Msg.msg_control = Ctl.Buf;
  Msg.msg_controllen = sizeof(Ctl.Buf);
  for (;;) {
    ssize_t R = ::recvmsg(Sock, &Msg, 0);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      return -1;
    break;
  }
  for (struct cmsghdr *Cm = CMSG_FIRSTHDR(&Msg); Cm;
       Cm = CMSG_NXTHDR(&Msg, Cm))
    if (Cm->cmsg_level == SOL_SOCKET && Cm->cmsg_type == SCM_RIGHTS &&
        Cm->cmsg_len >= CMSG_LEN(sizeof(int))) {
      int Fd = -1;
      std::memcpy(&Fd, CMSG_DATA(Cm), sizeof(int));
      return Fd;
    }
  return -1;
}

#else // !JSLICE_HAVE_POSIX_PROCESS

int jslice::listenTcp(const std::string &, uint16_t, int, std::string &Err,
                      bool) {
  Err = "TCP transport unavailable on this platform";
  return -1;
}
int jslice::acceptTcp(int) { return -1; }
int jslice::connectTcp(const std::string &, uint16_t, int, std::string &Err) {
  Err = "TCP transport unavailable on this platform";
  return -1;
}
uint16_t jslice::tcpLocalPort(int) { return 0; }
bool jslice::setNonBlocking(int, bool) { return false; }
void jslice::setSendBufferBytes(int, int) {}
void jslice::setTcpNoDelay(int) {}
void jslice::setHardReset(int) {}
int64_t jslice::sendSome(int, const void *, size_t) { return -1; }
int64_t jslice::recvSome(int, void *, size_t) { return -1; }
bool jslice::makeSocketPair(int[2]) { return false; }
bool jslice::sendFdOverSocket(int, int) { return false; }
int jslice::recvFdOverSocket(int, int) { return -1; }

#endif
