//===- net/StandbyTail.h - Replication stream consumer ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standby side of journal shipping (service/Replication.h): a
/// background thread that connects to the primary like any client,
/// sends `{"repl_subscribe": <last applied seq>}`, and tails the
/// record stream into a local replica journal. Every record frame is
/// CRC32-verified on the exact bytes the primary journaled — a corrupt
/// frame is dropped and counted, never applied — and applied through
/// Journal::appendReplica, which keeps the replica's in-flight index
/// warm: at promotion the standby recovers from its own journal with
/// the same quarantine-exactly-the-casualties guarantee a reboot has.
///
/// Acks carry the standby's *durable* high-water mark: the tail only
/// acks a sequence after appendReplica returned (the replica journal's
/// fsync policy has run), which is what lets the primary's
/// --repl-ack=sync prove "zero acknowledged-but-lost records" in the
/// failover matrix. One ack per drained read burst, not per record —
/// the ack names the highest contiguous applied seq, so batching loses
/// nothing.
///
/// Reconnects are the tail's job: a torn stream (primary restart,
/// partition, chaos-proxy truncation) backs off and resubscribes from
/// the last applied sequence. The primary decides resume-vs-snapshot
/// (hello "snapshot":true means compaction ate the gap; the tail
/// resets the replica and applies the full stream). The tail never
/// promotes itself — promotion is the server's decision
/// (Server::promote), driven by an operator or the watchdog.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_STANDBYTAIL_H
#define JSLICE_NET_STANDBYTAIL_H

#include "service/Journal.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace jslice {

struct StandbyTailOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;

  int ConnectTimeoutMs = 5000;
  /// Backoff between reconnect attempts: min(Cap, Base << (n-1)).
  uint64_t ReconnectBaseMs = 100;
  uint64_t ReconnectCapMs = 2000;
};

/// Counter snapshot for {"health"} / the failover matrix.
struct StandbyTailStats {
  bool Connected = false;
  uint64_t Connects = 0;       ///< Successful subscribes.
  uint64_t Disconnects = 0;    ///< Streams torn (EOF, reset, bad frame).
  uint64_t Snapshots = 0;      ///< Full-snapshot catch-ups applied.
  uint64_t Applied = 0;        ///< Records durably applied.
  uint64_t Duplicates = 0;     ///< Records skipped by the seq high-water
                               ///< mark (catch-up overlap; expected).
  uint64_t CorruptFrames = 0;  ///< Frames failing CRC/framing; dropped.
  uint64_t AppliedSeq = 0;     ///< Durable high-water mark (what we ack).
  uint64_t PrimarySeq = 0;     ///< Primary's last_seq from the newest
                               ///< hello, advanced by streamed records.
  uint64_t PrimaryEpoch = 0;   ///< Primary's epoch from the hello.
};

/// Tails a primary's replication stream into \p Replica. Thread-safe
/// observers; start()/stop() from one thread.
class StandbyTail {
public:
  StandbyTail(const StandbyTailOptions &Opts, Journal &Replica);
  ~StandbyTail();

  StandbyTail(const StandbyTail &) = delete;
  StandbyTail &operator=(const StandbyTail &) = delete;

  /// Spawns the tailing thread. False (with \p Err) only when already
  /// started — connection failures are retried forever in-thread, a
  /// standby seeded before its primary is a supported boot order.
  bool start(std::string &Err);

  /// Stops tailing and joins. Safe to call twice; the destructor calls
  /// it. After stop() the replica journal is quiescent — promotion can
  /// recover from it without racing appends.
  void stop();

  StandbyTailStats stats() const;

  /// Replication lag in records: how far the primary's known sequence
  /// runs ahead of what this standby has durably applied.
  uint64_t lagRecords() const;

private:
  void tailMain();
  /// One connected session: subscribe, stream, apply. Returns when the
  /// stream tears or stop() is requested.
  void runSession(int Fd);
  /// Applies one frame line. False = protocol damage (tear the
  /// stream and resubscribe; never apply a suspect record).
  bool applyFrame(const std::string &Frame, uint64_t &AckOut);

  StandbyTailOptions Opts;
  Journal &Replica;

  std::thread Tailer;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Started{false};

  mutable std::mutex M;
  StandbyTailStats Stats;
};

} // namespace jslice

#endif // JSLICE_NET_STANDBYTAIL_H
