//===- net/ChaosProxy.h - Network fault-injection proxy --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, in-process TCP fault proxy: it accepts connections,
/// forwards bytes to an upstream jslice_serve listener, and injects the
/// network failure modes the transport and client must survive:
///
///  * delay — hold a chunk for DelayMs before forwarding;
///  * truncate — forward only a prefix of a response chunk, then close
///    (the client sees a torn line);
///  * reset — arm SO_LINGER{1,0} and close mid-response (the client
///    sees ECONNRESET, not EOF);
///  * stall — stop pumping this connection for StallMs (the client's
///    response deadline, or the server's write-buffer bound, trips).
///
/// Faults fire per forwarded chunk with permille probabilities drawn
/// from a seeded xorshift PRNG, so a soak run is reproducible from its
/// seed. Truncate/reset target the response direction (upstream ->
/// client); delay and stall apply to both. Each proxied connection
/// runs on its own thread with its own PRNG stream (seed XOR
/// connection id) — faults on one connection never slow another, which
/// is exactly the containment claim the soak's parallel well-behaved
/// connection verifies.
///
/// Used by tools/jslice_netchaos (standalone) and jslice_soak --net
/// (in-process).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_CHAOSPROXY_H
#define JSLICE_NET_CHAOSPROXY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jslice {

struct ChaosOptions {
  std::string ListenHost = "127.0.0.1";
  uint16_t ListenPort = 0; ///< 0 = ephemeral; read back with port().
  std::string UpstreamHost = "127.0.0.1";
  uint16_t UpstreamPort = 0;

  /// Per-chunk fault probabilities in permille (0 = never, 1000 =
  /// every chunk). Evaluated in this order; at most one fires.
  unsigned ResetPermille = 0;
  unsigned TruncatePermille = 0;
  unsigned StallPermille = 0;
  unsigned DelayPermille = 0;

  uint64_t DelayMs = 20;
  uint64_t StallMs = 500;

  uint64_t Seed = 1; ///< PRNG seed; same seed = same fault schedule.
};

struct ChaosStats {
  uint64_t Connections = 0;
  uint64_t Delays = 0;
  uint64_t Truncations = 0;
  uint64_t Resets = 0;
  uint64_t Stalls = 0;
  uint64_t BytesForwarded = 0;
};

class ChaosProxy {
public:
  explicit ChaosProxy(const ChaosOptions &Opts);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy &) = delete;
  ChaosProxy &operator=(const ChaosProxy &) = delete;

  /// Binds the listener and starts the accept thread. False with a
  /// reason on failure (including non-POSIX builds).
  bool start(std::string &Err);

  /// The bound listen port (after start()).
  uint16_t port() const;

  /// Stops accepting, severs every proxied connection, joins threads.
  /// Idempotent; the destructor calls it.
  void stop();

  ChaosStats stats() const;

private:
  struct Conn;
  void acceptLoop();
  void pump(std::shared_ptr<Conn> C);

  ChaosOptions Opts;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;

  std::atomic<uint64_t> Connections{0}, Delays{0}, Truncations{0},
      Resets{0}, Stalls{0}, BytesForwarded{0};
};

} // namespace jslice

#endif // JSLICE_NET_CHAOSPROXY_H
