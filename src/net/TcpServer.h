//===- net/TcpServer.h - Socket transport with fault containment -----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TCP front end of the slicing service (DESIGN.md, "TCP transport
/// & fault containment"): a single poll()-driven event loop that
/// accepts JSON-Lines connections and feeds each complete line to a
/// Server with a per-connection ResponseSink. The loop never blocks on
/// any one peer and never allocates unboundedly on any one peer's
/// behalf; every slicing request still runs on the server's worker
/// pool (or its sandbox processes), so a poisonous program costs what
/// it always cost — one budget, one worker — and a misbehaving *byte
/// stream* now costs exactly one connection:
///
///  * connection cap — at MaxConnections, extra accepts are answered
///    with a one-line `shed` refusal and closed;
///  * read deadline — a partial line must complete within
///    ReadDeadlineMs (slowloris defense);
///  * idle timeout — a connection with no traffic and nothing pending
///    for IdleTimeoutMs is closed;
///  * line cap — the server's MaxLineBytes bounds the input buffer; an
///    oversized line is answered with a deterministic `shed` refusal
///    and the remainder discarded through its newline;
///  * bounded write buffers — a reader that stops draining its
///    responses (backpressure past MaxWriteBufferBytes) is
///    disconnected; it never blocks the loop or other connections;
///  * per-connection error containment — malformed frames are answered
///    as `bad-request` on that connection only; a read error or peer
///    reset closes that connection only.
///
/// Connection lifecycle (see DESIGN.md for the full state machine):
///   OPEN -> READ_CLOSED (peer EOF, responses still flushing)
///        -> CLOSED (clean | idle | deadline | backpressure | reset)
/// A connection with responses in flight when it dies simply swallows
/// them: sinks capture connection state by shared_ptr, so a late
/// response appends to a buffer nobody will ever flush, and the
/// request's terminal status stays in the journal.
///
/// Graceful drain: when the shutdown flag trips (or requestStop() is
/// called — async-signal-safe), the loop closes the listener, stops
/// reading, finishes flushing every in-flight response (bounded by
/// DrainGraceMs), closes all connections, and returns.
///
/// Threading: run() is the only thread that touches fds. Pool threads
/// touch only ConnShared (mutex-guarded) through their sinks and wake
/// the loop over a self-pipe; only the loop closes sockets.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_TCPSERVER_H
#define JSLICE_NET_TCPSERVER_H

#include "service/Server.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace jslice {

struct Pipe;

/// Listener configuration. The line cap is deliberately absent: the
/// transport reads it from the Server so stdin and TCP share one knob.
struct TcpServerOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 = ephemeral; read back with port().

  /// Accepted connections above this are answered with a one-line
  /// `shed` refusal and closed.
  unsigned MaxConnections = 256;

  /// A connection with no traffic, no partial line, and no pending
  /// responses for this long is closed. 0 disables.
  uint64_t IdleTimeoutMs = 30000;

  /// A partial request line must complete within this (slowloris
  /// defense). 0 disables.
  uint64_t ReadDeadlineMs = 10000;

  /// Per-connection bound on buffered-but-unsent response bytes; a
  /// stalled reader past this is disconnected. 0 = unbounded.
  uint64_t MaxWriteBufferBytes = 4u << 20;

  /// Drain bound: after a stop request the loop waits at most this
  /// long for in-flight responses to finish and flush before closing
  /// connections anyway.
  uint64_t DrainGraceMs = 10000;

  /// Shrink each connection's kernel send buffer (0 = leave alone).
  /// Ops/test knob: makes backpressure observable with small volumes.
  int SendBufferBytes = 0;

  /// Same contract as ServerOptions::ShutdownFlag: when it reads true
  /// the loop drains and returns. requestStop() is the in-process
  /// equivalent.
  const std::atomic<bool> *ShutdownFlag = nullptr;
};

/// Transport counters, all-time since start(). Served in-band by the
/// {"stats"} control line (under "transport") once start() registers
/// the provider with the server.
struct TransportStats {
  uint64_t Accepted = 0;
  uint64_t RefusedAtCap = 0;
  uint64_t Active = 0;
  uint64_t CleanClosed = 0;        ///< Peer EOF, everything flushed.
  uint64_t IdleClosed = 0;
  uint64_t DeadlineClosed = 0;     ///< Slowloris: partial line too old.
  uint64_t BackpressureClosed = 0; ///< Write buffer overflow.
  uint64_t PeerResets = 0;         ///< Read/write error closes.
  uint64_t OversizedLines = 0;     ///< Refused while still streaming.
  uint64_t LinesDispatched = 0;
  uint64_t ResponsesDelivered = 0; ///< Appended to some write buffer.
  /// Largest per-connection input retention ever observed (after
  /// complete lines dispatch and discarded tails drop) — the witness
  /// that the line cap actually bounds memory.
  uint64_t InBufHighWaterBytes = 0;

  JsonValue toJson() const;
};

class TcpServer {
public:
  /// Responses route to per-connection buffers; \p Log carries
  /// operational lines (accept/close/drain), same stream jslice_serve
  /// gives the Server.
  TcpServer(Server &S, const TcpServerOptions &Opts, std::ostream &Log);
  ~TcpServer();

  TcpServer(const TcpServer &) = delete;
  TcpServer &operator=(const TcpServer &) = delete;

  /// Binds and listens (so port() is valid before run() starts) and
  /// registers the transport-stats provider with the server. False
  /// with a reason on failure — including non-POSIX builds, where the
  /// caller falls back to the stdin transport.
  bool start(std::string &Err);

  /// The bound port (after start()); useful with Port = 0.
  uint16_t port() const;

  /// The event loop. Returns after a drain completes: stop requested
  /// via requestStop()/ShutdownFlag, listener closed, in-flight
  /// responses flushed (bounded by DrainGraceMs), connections closed.
  void run();

  /// Async-signal-safe stop: a flag store and one self-pipe write.
  void requestStop();

  /// Counter snapshot (thread-safe).
  TransportStats stats() const;

private:
  struct Conn;
  struct ConnShared;

  void acceptPending();
  void handleReadable(Conn &C);
  void processInput(Conn &C);
  void dispatchLine(Conn &C, const std::string &Line);
  void flushConn(Conn &C);
  void closeConn(Conn &C, const char *Why, std::atomic<uint64_t> *Counter);
  int computePollTimeout(bool Draining,
                         std::chrono::steady_clock::time_point DrainBy);

  Server &Srv;
  TcpServerOptions Opts;
  std::ostream &Log;
  int ListenFd = -1;
  int WakeWriteFd = -1; ///< Plain copy for the signal-safe requestStop.
  std::shared_ptr<Pipe> Wake;
  std::atomic<bool> StopRequested{false};
  std::vector<std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;

  // Counters are atomics so stats() needs no lock against the loop.
  std::atomic<uint64_t> Accepted{0}, RefusedAtCap{0}, Active{0},
      CleanClosed{0}, IdleClosed{0}, DeadlineClosed{0},
      BackpressureClosed{0}, PeerResets{0}, OversizedLines{0},
      LinesDispatched{0}, InBufHighWaterBytes{0};
  /// Shared with sinks (which may outlive this object).
  std::shared_ptr<std::atomic<uint64_t>> ResponsesDelivered;
};

} // namespace jslice

#endif // JSLICE_NET_TCPSERVER_H
