//===- net/TcpServer.h - Sharded socket transport with fault containment ---===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TCP front end of the slicing service (DESIGN.md, "TCP transport
/// & fault containment" and "Sharded transport"): N poll()-driven
/// reactor shards that accept JSON-Lines connections and feed each
/// complete line to a Server with a per-connection ResponseSink. Each
/// shard owns its connections outright — fds, input buffers, write
/// buffers, timers, wake pipe, and counters — so shards never contend
/// on anything but the global connection budget and the (mutex-guarded)
/// operational log. No shard ever blocks on any one peer and never
/// allocates unboundedly on any one peer's behalf; every slicing
/// request still runs on the server's worker pool (or its sandbox
/// processes), so a poisonous program costs what it always cost — one
/// budget, one worker — and a misbehaving *byte stream* costs exactly
/// one connection on exactly one shard:
///
///  * connection cap — a single atomic budget across all shards; at
///    MaxConnections total, extra accepts are answered with a one-line
///    `shed` refusal and closed, deterministically, whichever shard
///    fields them;
///  * read deadline — a partial line must complete within
///    ReadDeadlineMs (slowloris defense);
///  * idle timeout — a connection with no traffic and nothing pending
///    for IdleTimeoutMs is closed;
///  * line cap — the server's MaxLineBytes bounds the input buffer; an
///    oversized line is answered with a deterministic `shed` refusal
///    and the remainder discarded through its newline;
///  * bounded write buffers — a reader that stops draining its
///    responses (backpressure past MaxWriteBufferBytes) is
///    disconnected; it never blocks its shard's loop, let alone
///    another shard's connections;
///  * per-connection error containment — malformed frames are answered
///    as `bad-request` on that connection only; a read error or peer
///    reset closes that connection only.
///
/// Connections reach their shard one of two ways (AcceptMode):
/// SO_REUSEPORT gives every shard its own listener on the shared port
/// and lets the kernel spread the accept load; where that is
/// unavailable (or when a test wants deterministic placement), shard 0
/// owns the sole listener and hands accepted fds round-robin to shard
/// inboxes over their wake pipes. Auto tries REUSEPORT and falls back.
///
/// Connection lifecycle (see DESIGN.md for the full state machine):
///   OPEN -> READ_CLOSED (peer EOF, responses still flushing)
///        -> CLOSED (clean | idle | deadline | backpressure | reset)
/// A connection with responses in flight when it dies simply swallows
/// them: sinks capture connection state by shared_ptr, so a late
/// response appends to a buffer nobody will ever flush, and the
/// request's terminal status stays in the journal.
///
/// Graceful drain: when the shutdown flag trips (or requestStop() is
/// called — async-signal-safe), every shard closes its listener, stops
/// *dispatching* — bytes that still arrive are read only to detect
/// EOF/reset, never parsed into requests — finishes flushing every
/// in-flight response (bounded by DrainGraceMs), and closes its
/// connections. run() returns only after all shards have drained, so
/// the caller's clean-shutdown journal record truthfully covers the
/// whole transport.
///
/// Threading: run() is shard 0's loop; shards 1..N-1 run on threads
/// run() spawns and joins. Only a connection's owning shard touches
/// its fd. Pool threads touch only ConnShared (mutex-guarded) through
/// their sinks and wake the owning shard over its self-pipe.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_TCPSERVER_H
#define JSLICE_NET_TCPSERVER_H

#include "service/Server.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jslice {

struct Pipe;

/// How accepted connections find their owning shard.
enum class TcpAcceptMode {
  Auto,      ///< REUSEPORT when the platform has it, else Handoff.
  ReusePort, ///< One listener per shard on the shared port.
  Handoff,   ///< Shard 0 accepts, hands fds round-robin to inboxes.
};

/// Listener configuration. The line cap is deliberately absent: the
/// transport reads it from the Server so stdin and TCP share one knob.
struct TcpServerOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 = ephemeral; read back with port().

  /// Reactor shard count; 0 = hardware_concurrency. Clamped to 1..64.
  unsigned Shards = 0;

  /// Shard placement policy; tests force Handoff for deterministic
  /// round-robin pinning.
  TcpAcceptMode AcceptMode = TcpAcceptMode::Auto;

  /// Accepted connections above this (total, across all shards) are
  /// answered with a one-line `shed` refusal and closed.
  unsigned MaxConnections = 256;

  /// A connection with no traffic, no partial line, and no pending
  /// responses for this long is closed. 0 disables.
  uint64_t IdleTimeoutMs = 30000;

  /// A partial request line must complete within this (slowloris
  /// defense). 0 disables.
  uint64_t ReadDeadlineMs = 10000;

  /// Per-connection bound on buffered-but-unsent response bytes; a
  /// stalled reader past this is disconnected. 0 = unbounded.
  uint64_t MaxWriteBufferBytes = 4u << 20;

  /// Drain bound: after a stop request each shard waits at most this
  /// long for in-flight responses to finish and flush before closing
  /// connections anyway.
  uint64_t DrainGraceMs = 10000;

  /// Shrink each connection's kernel send buffer (0 = leave alone).
  /// Ops/test knob: makes backpressure observable with small volumes.
  int SendBufferBytes = 0;

  /// Force SO_REUSEPORT on every listener, including the single-shard
  /// and fallback paths. Upgradable servers (jslice_serve with hot
  /// restart enabled) set this so a successor generation can bind the
  /// same port alongside the still-draining predecessor; the kernel
  /// requires *all* sockets on the port to carry the option. When the
  /// platform lacks SO_REUSEPORT, start() fails honestly and the
  /// caller falls back to SCM_RIGHTS fd inheritance.
  bool ReusePortAlways = false;

  /// An already-bound, already-listening fd to adopt as shard 0's
  /// listener instead of binding (the fd-passing upgrade fallback: the
  /// predecessor ships its listener over a Unix socketpair). The
  /// transport takes ownership; multi-shard placement degrades to
  /// Handoff, since only one listener exists.
  int InheritedListenerFd = -1;

  /// A reactor shard whose loop has not turned over for this long is
  /// reported wedged by {"health"} and {"stats"} (0 disables). The
  /// loop beats at least every poll tick (200ms), so anything past a
  /// few seconds means a stuck shard, not an idle one.
  uint64_t WedgeThresholdMs = 5000;

  /// Same contract as ServerOptions::ShutdownFlag: when it reads true
  /// the shards drain and run() returns. requestStop() is the
  /// in-process equivalent.
  const std::atomic<bool> *ShutdownFlag = nullptr;
};

/// Transport counters, all-time since start(). Served in-band by the
/// {"stats"} control line (under "transport") once start() registers
/// the provider with the server; the merged view sums every counter
/// across shards except InBufHighWaterBytes, which takes the max.
struct TransportStats {
  uint64_t Accepted = 0;
  uint64_t RefusedAtCap = 0;
  uint64_t Active = 0;
  uint64_t CleanClosed = 0;        ///< Peer EOF, everything flushed.
  uint64_t IdleClosed = 0;
  uint64_t DeadlineClosed = 0;     ///< Slowloris: partial line too old.
  uint64_t BackpressureClosed = 0; ///< Write buffer overflow.
  uint64_t PeerResets = 0;         ///< Read/write error closes.
  uint64_t OversizedLines = 0;     ///< Refused while still streaming.
  uint64_t LinesDispatched = 0;
  uint64_t ResponsesDelivered = 0; ///< Appended to some write buffer.
  /// Largest per-connection input retention ever observed (after
  /// complete lines dispatch and discarded tails drop) — the witness
  /// that the line cap actually bounds memory.
  uint64_t InBufHighWaterBytes = 0;
  /// Bytes read and thrown away during drain: after the stop request
  /// the transport still reads (to see EOF/reset) but never dispatches.
  uint64_t DrainDiscardedBytes = 0;
  /// Ms since the shard's loop last turned over (liveness heartbeat);
  /// the merged view takes the worst (max) across shards. 0 until the
  /// loop first runs.
  uint64_t HeartbeatAgeMs = 0;

  JsonValue toJson() const;
};

/// Lock-free max update for watermark counters shared across reactor
/// threads: the load-then-store idiom loses races the moment a second
/// writer exists, so raise the mark with a compare-exchange loop.
inline void storeMaxRelaxed(std::atomic<uint64_t> &Mark, uint64_t Value) {
  uint64_t Cur = Mark.load(std::memory_order_relaxed);
  while (Cur < Value &&
         !Mark.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

class TcpServer {
public:
  /// Responses route to per-connection buffers; \p Log carries
  /// operational lines (accept/close/drain), same stream jslice_serve
  /// gives the Server. Shards share it behind a mutex.
  TcpServer(Server &S, const TcpServerOptions &Opts, std::ostream &Log);
  ~TcpServer();

  TcpServer(const TcpServer &) = delete;
  TcpServer &operator=(const TcpServer &) = delete;

  /// Binds and listens (so port() is valid before run() starts) and
  /// registers the transport-stats provider with the server. False
  /// with a reason on failure — including non-POSIX builds, where the
  /// caller falls back to the stdin transport.
  bool start(std::string &Err);

  /// The bound port (after start()); useful with Port = 0.
  uint16_t port() const;

  /// The number of reactor shards (after start()).
  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }

  /// Whether the shards listen via SO_REUSEPORT (after start()); false
  /// means shard 0 accepts and hands fds off round-robin.
  bool usesReusePort() const { return UseReusePort; }

  /// The event loop: runs shard 0 inline, shards 1..N-1 on spawned
  /// threads, and returns only after *every* shard's drain completes:
  /// stop requested via requestStop()/ShutdownFlag, listeners closed,
  /// in-flight responses flushed (bounded by DrainGraceMs),
  /// connections closed.
  void run();

  /// Async-signal-safe stop: a flag store and one self-pipe write per
  /// shard.
  void requestStop();

  /// Merged counter snapshot across all shards (thread-safe).
  TransportStats stats() const;

  /// One shard's counter snapshot (thread-safe); Index < shardCount().
  TransportStats shardStats(unsigned Index) const;

  /// Per-shard liveness heartbeat ages in ms (lock-free; reads each
  /// shard's last-progress atomic). 0 for a shard whose loop has not
  /// started yet.
  std::vector<uint64_t> shardHeartbeatAgesMs() const;

  /// True when any shard's heartbeat age exceeds WedgeThresholdMs.
  bool anyShardWedged() const;

  /// The {"health"} transport probe: shard count, heartbeat ages, and
  /// the wedged verdict. Registered with the Server by start().
  JsonValue healthProbeJson() const;

  /// Shard 0's live listener fd (for SCM_RIGHTS handoff to a successor
  /// generation), or -1 once draining has closed it. The caller must
  /// dup-transfer it (sendFdOverSocket dups internally) — ownership
  /// stays with the shard.
  int shardZeroListenerFd() const;

private:
  struct Conn;
  struct ConnShared;
  struct Shard;

  /// One shard's event loop; true when its drain completed quietly
  /// (everything flushed), false on grace expiry or poll failure.
  bool shardLoop(Shard &S);
  void acceptPending(Shard &S);
  void adoptConn(Shard &S, int Fd);
  void adoptHandoffs(Shard &S, bool Draining);
  void refuseAtCap(Shard &S, int Fd);
  void handleReadable(Shard &S, Conn &C);
  void drainReadable(Shard &S, Conn &C);
  void processInput(Shard &S, Conn &C);
  void dispatchLine(Shard &S, Conn &C, const std::string &Line);
  void flushConn(Conn &C);
  void closeConn(Shard &S, Conn &C, const char *Why,
                 std::atomic<uint64_t> *Counter);
  int computePollTimeout(bool Draining,
                         std::chrono::steady_clock::time_point DrainBy);
  bool tryAcquireConnSlot();
  void logLine(const std::string &Line);
  JsonValue transportJson() const;

  Server &Srv;
  TcpServerOptions Opts;
  std::ostream &Log;
  std::mutex LogM; ///< Shards share the operational log stream.
  std::vector<std::unique_ptr<Shard>> Shards;
  bool UseReusePort = false;
  /// Wake-pipe write fds, immutable after start(): requestStop() runs
  /// in signal context and may only flag-store and write().
  std::vector<int> WakeWriteFds;
  std::atomic<bool> StopRequested{false};
  /// Remaining connection slots (global across shards). Acquired with
  /// a CAS loop at accept, released at close — the shed refusal stays
  /// deterministic no matter which shard fields the accept.
  std::atomic<int64_t> ConnSlots{0};
  std::atomic<uint64_t> NextConnId{1};
};

} // namespace jslice

#endif // JSLICE_NET_TCPSERVER_H
