//===- net/WriteBuffer.h - Bounded, backpressure-aware write buffer --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-connection outbound buffer of the TCP transport
/// (net/TcpServer.h). Two rules give the containment guarantee:
///
///  * append() is *bounded*: once buffered-but-unsent bytes would
///    exceed the cap, it refuses. The connection behind a reader that
///    stopped draining gets disconnected — it never grows the server's
///    memory and never blocks the event loop or other connections.
///  * flush() never blocks: it loops sendSome() (non-blocking, short
///    writes expected) until the buffer drains, the socket would
///    block, or the peer turns out to be dead. EAGAIN is a normal
///    outcome, not an error — the caller re-arms POLLOUT and moves on.
///
/// Flushed bytes are trimmed lazily (an offset, compacted once it
/// passes half the buffer) so a slow reader costs one memmove per
/// buffer-half, not one per write.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_NET_WRITEBUFFER_H
#define JSLICE_NET_WRITEBUFFER_H

#include <cstddef>
#include <string>

namespace jslice {

class WriteBuffer {
public:
  /// \p CapBytes bounds *pending* (unsent) bytes; 0 means unbounded.
  explicit WriteBuffer(size_t CapBytes) : Cap(CapBytes) {}

  /// Queues \p Data. False — and nothing queued — when pending bytes
  /// would exceed the cap; the caller must treat the connection as a
  /// stalled reader and disconnect it.
  bool append(const std::string &Data);

  enum class FlushResult {
    Drained,    ///< Everything pending was written.
    Blocked,    ///< Socket full; re-arm POLLOUT and retry later.
    PeerClosed, ///< EPIPE/ECONNRESET — the peer is gone.
  };

  /// Writes as much pending data as the socket accepts right now.
  FlushResult flush(int Fd);

  bool empty() const { return Off == Buf.size(); }
  size_t pending() const { return Buf.size() - Off; }

private:
  size_t Cap;
  size_t Off = 0; ///< Bytes of Buf already written.
  std::string Buf;
};

} // namespace jslice

#endif // JSLICE_NET_WRITEBUFFER_H
