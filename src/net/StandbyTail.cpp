//===- net/StandbyTail.cpp - Replication stream consumer -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/StandbyTail.h"

#include "net/Socket.h"
#include "service/Json.h"
#include "support/Pipe.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#endif

using namespace jslice;

StandbyTail::StandbyTail(const StandbyTailOptions &O, Journal &R)
    : Opts(O), Replica(R) {}

StandbyTail::~StandbyTail() { stop(); }

bool StandbyTail::start(std::string &Err) {
  if (Started.exchange(true)) {
    Err = "standby tail already started";
    return false;
  }
  Stop = false;
  Tailer = std::thread([this] { tailMain(); });
  return true;
}

void StandbyTail::stop() {
  Stop = true;
  if (Tailer.joinable())
    Tailer.join();
  Started = false;
}

StandbyTailStats StandbyTail::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}

uint64_t StandbyTail::lagRecords() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats.PrimarySeq > Stats.AppliedSeq
             ? Stats.PrimarySeq - Stats.AppliedSeq
             : 0;
}

bool StandbyTail::applyFrame(const std::string &Frame, uint64_t &AckOut) {
  std::optional<JsonValue> V = JsonValue::parse(Frame);
  if (!V || !V->isObject()) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.CorruptFrames;
    return false; // Framing damage: tear and resubscribe.
  }
  const JsonValue *Kind = V->find("repl");
  if (!Kind || !Kind->isString())
    return true; // Not a replication frame (future extension); skip.

  if (Kind->asString() == "hello") {
    bool Snapshot = false;
    if (const JsonValue *S = V->find("snapshot"))
      Snapshot = S->isBool() && S->asBool();
    uint64_t LastSeq = 0, Epoch = 0;
    if (const JsonValue *L = V->find("last_seq"))
      if (L->isNumber() && L->asInt() > 0)
        LastSeq = static_cast<uint64_t>(L->asInt());
    if (const JsonValue *E = V->find("epoch"))
      if (E->isNumber() && E->asInt() > 0)
        Epoch = static_cast<uint64_t>(E->asInt());
    if (Snapshot) {
      // Compaction ate the records between our resume point and the
      // file: applying the compacted file over our stale tail would
      // resurrect completed begins. Start the replica over.
      if (!Replica.resetForSnapshot())
        return false;
    }
    std::lock_guard<std::mutex> Lock(M);
    if (Snapshot) {
      ++Stats.Snapshots;
      Stats.AppliedSeq = 0;
    }
    Stats.PrimarySeq = std::max(Stats.PrimarySeq, LastSeq);
    Stats.PrimaryEpoch = std::max(Stats.PrimaryEpoch, Epoch);
    return true;
  }

  if (Kind->asString() != "rec")
    return true;
  const JsonValue *Line = V->find("line");
  if (!Line || !Line->isString()) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.CorruptFrames;
    return false;
  }
  const std::string &Rec = Line->asString();
  uint64_t Seq = 0;
  // End-to-end verification on the exact bytes the primary journaled:
  // the record's own CRC32, not the transport's checksum, decides.
  if (verifyJournalLine(Rec, &Seq) == JournalLineCheck::Corrupt) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.CorruptFrames;
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    // Taps are seq-ordered on the primary, so a high-water mark dedups
    // the catch-up/live overlap. Legacy records (seq 0) always apply.
    if (Seq && Seq <= Stats.AppliedSeq) {
      ++Stats.Duplicates;
      return true;
    }
  }
  if (!Replica.appendReplica(Rec))
    return false; // Replica disk trouble: tear, back off, resubscribe.
  std::lock_guard<std::mutex> Lock(M);
  ++Stats.Applied;
  Stats.AppliedSeq = std::max(Stats.AppliedSeq, Seq);
  Stats.PrimarySeq = std::max(Stats.PrimarySeq, Seq);
  AckOut = Stats.AppliedSeq;
  return true;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

namespace {

bool sendAll(int Fd, const std::string &Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    int64_t W = sendSome(Fd, Data.data() + Sent, Data.size() - Sent);
    if (W <= 0)
      return false;
    Sent += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

void StandbyTail::runSession(int Fd) {
  uint64_t FromSeq;
  {
    std::lock_guard<std::mutex> Lock(M);
    FromSeq = Stats.AppliedSeq;
  }
  JsonValue Sub = JsonValue::object();
  Sub.set("repl_subscribe", FromSeq);
  if (!sendAll(Fd, Sub.str() + "\n"))
    return;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Connects;
    Stats.Connected = true;
  }

  std::string RecvBuf;
  uint64_t LastAcked = FromSeq;
  while (!Stop) {
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, 100); // Short: stop() must stay responsive.
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      continue;
    char Chunk[65536];
    int64_t R = recvSome(Fd, Chunk, sizeof(Chunk));
    if (R == NetWouldBlock)
      continue;
    if (R <= 0)
      return; // EOF or reset: the stream tore.
    RecvBuf.append(Chunk, static_cast<size_t>(R));

    // Apply every complete line in the burst, then ack the durable
    // high-water mark once — batched acks lose nothing because the
    // ack names a sequence, not a record.
    uint64_t AckHigh = 0;
    size_t NL;
    while ((NL = RecvBuf.find('\n')) != std::string::npos) {
      std::string Frame = RecvBuf.substr(0, NL);
      RecvBuf.erase(0, NL + 1);
      if (Frame.empty())
        continue;
      if (!applyFrame(Frame, AckHigh))
        return;
    }
    if (AckHigh > LastAcked) {
      JsonValue Ack = JsonValue::object();
      Ack.set("repl_ack", AckHigh);
      if (!sendAll(Fd, Ack.str() + "\n"))
        return;
      LastAcked = AckHigh;
    }
  }
}

void StandbyTail::tailMain() {
  unsigned Attempt = 0;
  while (!Stop) {
    std::string Err;
    int Fd = connectTcp(Opts.Host, Opts.Port, Opts.ConnectTimeoutMs, Err);
    if (Fd >= 0) {
      setTcpNoDelay(Fd);
      Attempt = 0;
      runSession(Fd);
      closeQuietly(Fd);
      std::lock_guard<std::mutex> Lock(M);
      Stats.Connected = false;
      ++Stats.Disconnects;
    }
    if (Stop)
      return;
    // Backoff before the next subscribe; a standby seeded before its
    // primary just keeps knocking.
    uint64_t Shift = Attempt > 10 ? 10 : Attempt;
    uint64_t Delay = Opts.ReconnectBaseMs << Shift;
    if (Opts.ReconnectCapMs && Delay > Opts.ReconnectCapMs)
      Delay = Opts.ReconnectCapMs;
    ++Attempt;
    // Sleep in small slices so stop() never waits out a full backoff.
    while (Delay && !Stop) {
      uint64_t Slice = Delay > 50 ? 50 : Delay;
      std::this_thread::sleep_for(std::chrono::milliseconds(Slice));
      Delay -= Slice;
    }
  }
}

#else // !JSLICE_HAVE_POSIX_PROCESS

void StandbyTail::runSession(int) {}

void StandbyTail::tailMain() {
  // No sockets on this platform; the tail reports disconnected and
  // the standby never warms (fail closed, like the TCP transport).
}

#endif
