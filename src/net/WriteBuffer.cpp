//===- net/WriteBuffer.cpp - Bounded, backpressure-aware write buffer ------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/WriteBuffer.h"

#include "net/Socket.h"

using namespace jslice;

bool WriteBuffer::append(const std::string &Data) {
  if (Cap && pending() + Data.size() > Cap)
    return false;
  // Compact before growing once the dead prefix dominates; amortized
  // one move per buffer-half.
  if (Off > Buf.size() / 2 && Off > 4096) {
    Buf.erase(0, Off);
    Off = 0;
  }
  Buf.append(Data);
  return true;
}

WriteBuffer::FlushResult WriteBuffer::flush(int Fd) {
  while (Off < Buf.size()) {
    int64_t W = sendSome(Fd, Buf.data() + Off, Buf.size() - Off);
    if (W == NetWouldBlock)
      return FlushResult::Blocked;
    if (W < 0)
      return FlushResult::PeerClosed;
    Off += static_cast<size_t>(W);
  }
  Buf.clear();
  Off = 0;
  return FlushResult::Drained;
}
