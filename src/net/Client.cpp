//===- net/Client.cpp - Retrying JSON-Lines client -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/Socket.h"
#include "service/Json.h"
#include "support/Pipe.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#endif

using namespace jslice;

using Clock = std::chrono::steady_clock;

bool jslice::isRetriableInFlight(const std::string &Response) {
  // Match the parsed envelope fields, not substrings of the raw line:
  // a response that merely *echoes* the magic strings (a program body
  // or diagnostic containing them) must not be misread as "our earlier
  // submission is still in flight" and resubmitted.
  std::optional<JsonValue> V = JsonValue::parse(Response);
  if (!V || !V->isObject())
    return false;
  const JsonValue *Status = V->find("status");
  const JsonValue *Error = V->find("error");
  return Status && Status->isString() &&
         Status->asString() == "bad-request" && Error &&
         Error->isString() &&
         Error->asString() == "request id already in flight";
}

ClientConnection::ClientConnection(const ClientOptions &O) : Opts(O) {
  JitterState = Opts.JitterSeed
                    ? Opts.JitterSeed
                    : reinterpret_cast<uintptr_t>(this) | 1;
}

ClientConnection::~ClientConnection() { disconnect(); }

void ClientConnection::disconnect() {
  closeQuietly(Fd);
  RecvBuf.clear();
}

std::string ClientConnection::currentEndpoint() const {
  if (Opts.Endpoints.empty())
    return Opts.Host + ":" + std::to_string(Opts.Port);
  return Opts.Endpoints[EndpointIdx % Opts.Endpoints.size()];
}

void ClientConnection::rotateEndpoint() {
  if (Opts.Endpoints.size() < 2)
    return;
  EndpointIdx = (EndpointIdx + 1) % Opts.Endpoints.size();
  ++Failovers;
}

bool ClientConnection::ensureConnected(std::string &Err) {
  if (Fd >= 0)
    return true;
  std::string Host = Opts.Host;
  uint16_t Port = Opts.Port;
  if (!Opts.Endpoints.empty() &&
      !parseHostPort(currentEndpoint(), Host, Port)) {
    Err = "bad endpoint: " + currentEndpoint();
    return false;
  }
  Fd = connectTcp(Host, Port, Opts.ConnectTimeoutMs, Err);
  if (Fd < 0)
    return false;
  RecvBuf.clear();
  // The first connection of the lifetime is not a *re*connect.
  if (EverConnected)
    ++Reconnects;
  EverConnected = true;
  return true;
}

void ClientConnection::backoff(unsigned Attempt, uint64_t MaxSleepMs) {
  uint64_t Shift = Attempt > 10 ? 10 : Attempt;
  uint64_t Delay = Opts.BackoffBaseMs << (Shift ? Shift - 1 : 0);
  if (Opts.BackoffCapMs && Delay > Opts.BackoffCapMs)
    Delay = Opts.BackoffCapMs;
  // xorshift64: cheap deterministic jitter, up to +50% of the delay so
  // a fleet of clients retrying after one server blip desynchronizes.
  JitterState ^= JitterState << 13;
  JitterState ^= JitterState >> 7;
  JitterState ^= JitterState << 17;
  if (Delay)
    Delay += JitterState % (Delay / 2 + 1);
  if (Delay > MaxSleepMs)
    Delay = MaxSleepMs; // Never sleep past the retry budget.
  if (Delay)
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

bool ClientConnection::attempt(const std::string &Line,
                               std::string &Response, std::string &Err) {
  if (!ensureConnected(Err))
    return false;

  std::string Framed = Line;
  Framed.push_back('\n');
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    // connectTcp hands back a blocking socket; a send error here is a
    // dead peer, not EAGAIN.
    int64_t W = sendSome(Fd, Framed.data() + Sent, Framed.size() - Sent);
    if (W <= 0) {
      Err = "send failed: connection lost";
      disconnect();
      return false;
    }
    Sent += static_cast<size_t>(W);
  }

  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Opts.ResponseTimeoutMs);
  for (;;) {
    size_t NL = RecvBuf.find('\n');
    if (NL != std::string::npos) {
      Response = RecvBuf.substr(0, NL);
      RecvBuf.erase(0, NL + 1);
      return true;
    }
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - Clock::now());
    if (Left.count() <= 0) {
      Err = "response deadline exceeded";
      disconnect();
      return false;
    }
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, static_cast<int>(Left.count()));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("poll: ") + std::strerror(errno);
      disconnect();
      return false;
    }
    if (N == 0)
      continue; // Deadline check at the top of the loop.
    char Chunk[65536];
    int64_t R = recvSome(Fd, Chunk, sizeof(Chunk));
    if (R == NetWouldBlock)
      continue;
    if (R == 0) {
      // EOF with a partial line buffered = torn response; either way
      // the response is absent and the attempt failed.
      Err = RecvBuf.empty() ? "connection closed before response"
                            : "torn response (connection closed mid-line)";
      disconnect();
      return false;
    }
    if (R < 0) {
      Err = "connection reset";
      disconnect();
      return false;
    }
    RecvBuf.append(Chunk, static_cast<size_t>(R));
  }
}

#else // !JSLICE_HAVE_POSIX_PROCESS

bool ClientConnection::attempt(const std::string &, std::string &,
                               std::string &Err) {
  Err = "TCP transport unavailable on this platform";
  return false;
}

#endif

ClientResult ClientConnection::requestOnce(const std::string &Line) {
  ClientResult R;
  R.Attempts = 1;
  std::string Err;
  if (attempt(Line, R.Response, Err))
    R.Ok = true;
  else
    R.TransportError = Err;
  return R;
}

ClientResult ClientConnection::request(const std::string &Line) {
  ClientResult R;
  BudgetExhausted = false;
  unsigned Max = Opts.MaxAttempts ? Opts.MaxAttempts : 1;
  Clock::time_point Start = Clock::now();
  // Milliseconds of retry budget left; UINT64_MAX = unbounded.
  auto BudgetLeft = [&]() -> uint64_t {
    if (!Opts.RetryBudgetMs)
      return UINT64_MAX;
    uint64_t Spent = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              Start)
            .count());
    return Spent >= Opts.RetryBudgetMs ? 0 : Opts.RetryBudgetMs - Spent;
  };
  for (unsigned A = 1; A <= Max; ++A) {
    R.Attempts = A;
    std::string Err, Response;
    if (attempt(Line, Response, Err)) {
      if (isRetriableInFlight(Response) && A < Max) {
        uint64_t Left = BudgetLeft();
        if (!Left) {
          BudgetExhausted = true;
          R.Ok = true; // The in-flight verdict is a real response.
          R.Response = Response;
          return R;
        }
        // Our earlier submission is still being served; give it time
        // and resubmit to collect its verdict.
        backoff(A, Left);
        continue;
      }
      R.Ok = true;
      R.Response = Response;
      return R;
    }
    R.TransportError = Err;
    // A transport failure may be one dead endpoint, not a dead
    // service: rotate to the next endpoint before retrying.
    rotateEndpoint();
    uint64_t Left = BudgetLeft();
    if (!Left) {
      BudgetExhausted = true;
      R.TransportError += " (retry budget exhausted)";
      return R;
    }
    if (A < Max)
      backoff(A, Left);
  }
  return R;
}
