//===- net/TcpServer.cpp - Socket transport with fault containment ---------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/TcpServer.h"

#include "net/Socket.h"
#include "net/WriteBuffer.h"
#include "support/Pipe.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <ostream>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#include <unistd.h>
#endif

using namespace jslice;

using Clock = std::chrono::steady_clock;

JsonValue TransportStats::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("accepted", Accepted);
  V.set("refused_at_cap", RefusedAtCap);
  V.set("active", Active);
  V.set("clean_closed", CleanClosed);
  V.set("idle_closed", IdleClosed);
  V.set("deadline_closed", DeadlineClosed);
  V.set("backpressure_closed", BackpressureClosed);
  V.set("peer_resets", PeerResets);
  V.set("oversized_lines", OversizedLines);
  V.set("lines_dispatched", LinesDispatched);
  V.set("responses_delivered", ResponsesDelivered);
  V.set("in_buf_high_water_bytes", InBufHighWaterBytes);
  return V;
}

/// Sink-visible connection state. Pool threads reach it through
/// shared_ptr captures, so it outlives both the socket and (if
/// responses land after the drain grace) the TcpServer itself.
struct TcpServer::ConnShared {
  explicit ConnShared(size_t WriteCap) : Out(WriteCap) {}

  std::mutex M;
  WriteBuffer Out;
  uint64_t Pending = 0;   ///< Dispatched lines awaiting their response.
  bool Overflowed = false; ///< append() refused: reader has stalled.
  bool Closed = false;     ///< Loop closed the fd; late responses drop.
};

struct TcpServer::Conn {
  int Fd = -1;
  uint64_t Id = 0;
  std::string InBuf;
  bool Discarding = false; ///< Swallowing the tail of an oversized line.
  bool ReadClosed = false;
  bool Doomed = false;
  Clock::time_point LastActivity;
  Clock::time_point LineStart; ///< First byte of the current partial line.
  std::shared_ptr<ConnShared> Shared;
  ResponseSink Sink;
};

TcpServer::TcpServer(Server &S, const TcpServerOptions &Opts,
                     std::ostream &Log)
    : Srv(S), Opts(Opts), Log(Log),
      ResponsesDelivered(std::make_shared<std::atomic<uint64_t>>(0)) {}

TcpServer::~TcpServer() {
  closeQuietly(ListenFd);
#ifdef JSLICE_HAVE_POSIX_PROCESS
  for (auto &C : Conns)
    if (C && C->Fd >= 0) {
      std::lock_guard<std::mutex> L(C->Shared->M);
      C->Shared->Closed = true;
      closeQuietly(C->Fd);
    }
#endif
}

TransportStats TcpServer::stats() const {
  TransportStats S;
  S.Accepted = Accepted.load(std::memory_order_relaxed);
  S.RefusedAtCap = RefusedAtCap.load(std::memory_order_relaxed);
  S.Active = Active.load(std::memory_order_relaxed);
  S.CleanClosed = CleanClosed.load(std::memory_order_relaxed);
  S.IdleClosed = IdleClosed.load(std::memory_order_relaxed);
  S.DeadlineClosed = DeadlineClosed.load(std::memory_order_relaxed);
  S.BackpressureClosed = BackpressureClosed.load(std::memory_order_relaxed);
  S.PeerResets = PeerResets.load(std::memory_order_relaxed);
  S.OversizedLines = OversizedLines.load(std::memory_order_relaxed);
  S.LinesDispatched = LinesDispatched.load(std::memory_order_relaxed);
  S.ResponsesDelivered =
      ResponsesDelivered->load(std::memory_order_relaxed);
  S.InBufHighWaterBytes =
      InBufHighWaterBytes.load(std::memory_order_relaxed);
  return S;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

bool TcpServer::start(std::string &Err) {
  Wake = std::make_shared<Pipe>();
  if (!Wake->make()) {
    Err = "cannot create wake pipe";
    return false;
  }
  setNonBlocking(Wake->ReadFd, true);
  setNonBlocking(Wake->WriteFd, true);
  WakeWriteFd = Wake->WriteFd;

  ListenFd = listenTcp(Opts.Host, Opts.Port, /*Backlog=*/128, Err);
  if (ListenFd < 0)
    return false;

  Srv.setTransportStats([this] { return stats().toJson(); });
  return true;
}

uint16_t TcpServer::port() const {
  return ListenFd >= 0 ? tcpLocalPort(ListenFd) : 0;
}

void TcpServer::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
  if (WakeWriteFd >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(WakeWriteFd, &B, 1);
  }
}

void TcpServer::acceptPending() {
  for (;;) {
    int Fd = acceptTcp(ListenFd);
    if (Fd < 0)
      return;
    if (Conns.size() >= Opts.MaxConnections) {
      // Deterministic refusal beats a silent backlog hang: the client
      // learns immediately that the server is at capacity.
      RefusedAtCap.fetch_add(1, std::memory_order_relaxed);
      static const char Refusal[] =
          "{\"error\":\"connection limit reached\",\"status\":\"shed\"}\n";
      // Send it blocking: the fd was accepted non-blocking, and a
      // one-shot EAGAIN here would turn the refusal into a bare close
      // — indistinguishable from a crash to the client. A fresh
      // connection's send buffer is empty, so one short line cannot
      // stall the accept loop.
      setNonBlocking(Fd, false);
      size_t Off = 0;
      while (Off < sizeof(Refusal) - 1) {
        int64_t W =
            sendSome(Fd, Refusal + Off, sizeof(Refusal) - 1 - Off);
        if (W <= 0)
          break; // Peer already gone; nothing more owed.
        Off += static_cast<size_t>(W);
      }
      ::close(Fd);
      continue;
    }
    setSendBufferBytes(Fd, Opts.SendBufferBytes);

    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    C->Id = NextConnId++;
    C->LastActivity = Clock::now();
    C->Shared = std::make_shared<ConnShared>(
        static_cast<size_t>(Opts.MaxWriteBufferBytes));

    // The response path. Runs on pool threads: bounded append under
    // the connection mutex, then one self-pipe byte so the loop flushes.
    std::shared_ptr<ConnShared> SP = C->Shared;
    std::shared_ptr<Pipe> WK = Wake;
    std::shared_ptr<std::atomic<uint64_t>> Delivered = ResponsesDelivered;
    C->Sink = [SP, WK, Delivered](const std::string &Line) {
      bool NeedWake = false;
      {
        std::lock_guard<std::mutex> L(SP->M);
        if (SP->Pending)
          --SP->Pending;
        if (!SP->Closed) {
          std::string Framed = Line;
          Framed.push_back('\n');
          if (SP->Out.append(Framed))
            Delivered->fetch_add(1, std::memory_order_relaxed);
          else
            SP->Overflowed = true; // Stalled reader; loop disconnects.
          NeedWake = true;
        }
      }
      if (NeedWake && WK->WriteFd >= 0) {
        char B = 1;
        [[maybe_unused]] ssize_t N = ::write(WK->WriteFd, &B, 1);
      }
    };

    Accepted.fetch_add(1, std::memory_order_relaxed);
    Active.fetch_add(1, std::memory_order_relaxed);
    Conns.push_back(std::move(C));
  }
}

void TcpServer::dispatchLine(Conn &C, const std::string &Line) {
  if (Line.empty() || Line.find_first_not_of(" \t\r") == std::string::npos)
    return; // Blank lines produce no response; don't count one pending.
  {
    std::lock_guard<std::mutex> L(C.Shared->M);
    ++C.Shared->Pending;
  }
  LinesDispatched.fetch_add(1, std::memory_order_relaxed);
  // Control lines answer synchronously through the sink; slice lines
  // journal + enqueue and answer later from a pool thread. Either way
  // exactly one response line lands per dispatched line.
  Srv.serveLine(Line, C.Sink);
}

void TcpServer::processInput(Conn &C) {
  size_t Pos;
  while ((Pos = C.InBuf.find('\n')) != std::string::npos) {
    std::string Line = C.InBuf.substr(0, Pos);
    C.InBuf.erase(0, Pos + 1);
    if (C.Discarding) {
      // The newline ends the oversized line we already refused; what
      // follows it starts a fresh line with a fresh deadline clock.
      C.Discarding = false;
      C.LineStart = Clock::now();
      continue;
    }
    dispatchLine(C, Line);
  }
  // No newline left past this point. A connection still mid-discard
  // holds only refused bytes — drop them now rather than letting a
  // newline-free stream grow InBuf at full bandwidth until one shows
  // up (the invariant is that the buffer does not grow while
  // discarding, whatever the peer sends).
  if (C.Discarding)
    C.InBuf.clear();
  uint64_t Cap = Srv.maxLineBytes();
  if (!C.Discarding && Cap && C.InBuf.size() > Cap) {
    // A line longer than the cap and still no newline: refuse it now,
    // deterministically, and swallow the remainder as it streams in —
    // the connection survives, the buffer does not grow.
    OversizedLines.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(C.Shared->M);
      ++C.Shared->Pending;
    }
    Srv.refuseOversizedLine(C.Sink);
    C.InBuf.clear();
    C.Discarding = true;
  }
  if (C.InBuf.empty() && !C.Discarding)
    C.LineStart = Clock::time_point();
}

void TcpServer::handleReadable(Conn &C) {
  char Chunk[65536];
  int64_t N = recvSome(C.Fd, Chunk, sizeof(Chunk));
  if (N == NetWouldBlock)
    return;
  if (N < 0) {
    closeConn(C, "read error", &PeerResets);
    return;
  }
  C.LastActivity = Clock::now();
  if (N == 0) {
    C.ReadClosed = true;
    // EOF terminates a final unterminated line, same as the stdin
    // transport; the response will still be flushed before close.
    if (!C.Discarding && !C.InBuf.empty()) {
      std::string Line;
      Line.swap(C.InBuf);
      dispatchLine(C, Line);
    }
    C.InBuf.clear();
    return;
  }
  if (C.InBuf.empty() && !C.Discarding)
    C.LineStart = C.LastActivity;
  C.InBuf.append(Chunk, static_cast<size_t>(N));
  processInput(C);
  // Retained-bytes high-water mark, measured after trimming: complete
  // lines are dispatched and discarded tails dropped, so this tracks
  // what the transport actually holds onto per connection. Only the
  // loop thread writes it.
  if (C.InBuf.size() >
      InBufHighWaterBytes.load(std::memory_order_relaxed))
    InBufHighWaterBytes.store(C.InBuf.size(), std::memory_order_relaxed);
}

void TcpServer::flushConn(Conn &C) {
  std::lock_guard<std::mutex> L(C.Shared->M);
  if (C.Shared->Out.empty())
    return;
  WriteBuffer::FlushResult R = C.Shared->Out.flush(C.Fd);
  C.LastActivity = Clock::now();
  if (R == WriteBuffer::FlushResult::PeerClosed) {
    C.Doomed = true; // closeConn outside the lock, in the sweep.
  }
}

void TcpServer::closeConn(Conn &C, const char *Why,
                          std::atomic<uint64_t> *Counter) {
  if (C.Fd < 0)
    return;
  {
    std::lock_guard<std::mutex> L(C.Shared->M);
    C.Shared->Closed = true;
  }
  // Account before closing: a peer that observes the close (EOF/RST on
  // loopback is near-instant) must also observe the accounting in a
  // stats probe.
  if (Counter)
    Counter->fetch_add(1, std::memory_order_relaxed);
  Active.fetch_sub(1, std::memory_order_relaxed);
  ::close(C.Fd);
  C.Fd = -1;
  C.Doomed = true;
  Log << "jslice_serve: connection #" << C.Id << " closed (" << Why
      << ")\n";
}

int TcpServer::computePollTimeout(bool Draining,
                                  Clock::time_point DrainBy) {
  // The loop's deadlines (read deadline, idle timeout, drain grace)
  // are coarse; a 200ms tick bounds their latency and doubles as a
  // lost-wakeup backstop. Idle servers pay five wakeups a second.
  int Timeout = 200;
  if (Draining) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        DrainBy - Clock::now());
    Timeout = std::min<int>(
        Timeout, Left.count() <= 0 ? 0 : static_cast<int>(Left.count()));
  }
  return Timeout;
}

void TcpServer::run() {
  if (ListenFd < 0)
    return;

  bool Draining = false;
  Clock::time_point DrainBy;

  for (;;) {
    bool WantStop =
        StopRequested.load(std::memory_order_relaxed) ||
        (Opts.ShutdownFlag &&
         Opts.ShutdownFlag->load(std::memory_order_relaxed));
    if (WantStop && !Draining) {
      Draining = true;
      DrainBy = Clock::now() + std::chrono::milliseconds(Opts.DrainGraceMs);
      closeQuietly(ListenFd); // Stop accepting; drain what is in flight.
      Log << "jslice_serve: listener draining (" << Conns.size()
          << " connection" << (Conns.size() == 1 ? "" : "s")
          << " open)\n";
    }

    if (Draining) {
      // Drain completes when every connection has nothing pending and
      // nothing buffered — or the grace period runs out.
      bool Quiet = true;
      for (auto &C : Conns) {
        std::lock_guard<std::mutex> L(C->Shared->M);
        if (C->Shared->Pending || !C->Shared->Out.empty())
          Quiet = false;
      }
      if (Quiet || Clock::now() >= DrainBy) {
        for (auto &C : Conns)
          closeConn(*C, Quiet ? "drained" : "drain grace expired",
                    nullptr);
        Conns.clear();
        Log << "jslice_serve: TCP drain "
            << (Quiet ? "complete" : "grace expired; forced close")
            << "\n";
        return;
      }
    }

    // Poll set: wake pipe, listener, then one slot per connection (in
    // Conns order — nothing mutates Conns between here and the
    // dispatch below).
    std::vector<struct pollfd> P;
    P.reserve(2 + Conns.size());
    P.push_back({Wake->ReadFd, POLLIN, 0});
    size_t ListenIdx = SIZE_MAX;
    if (!Draining && ListenFd >= 0) {
      ListenIdx = P.size();
      P.push_back({ListenFd, POLLIN, 0});
    }
    size_t ConnBase = P.size();
    for (auto &C : Conns) {
      short Ev = 0;
      if (!Draining && !C->ReadClosed)
        Ev |= POLLIN;
      {
        std::lock_guard<std::mutex> L(C->Shared->M);
        if (!C->Shared->Out.empty())
          Ev |= POLLOUT;
      }
      P.push_back({C->Fd, Ev, 0});
    }

    int N = ::poll(P.data(), P.size(),
                   computePollTimeout(Draining, DrainBy));
    int PollErrno = errno; // Before the stream ops below can clobber it.
    if (N < 0 && PollErrno != EINTR) {
      // poll() itself failing is unrecoverable — but go down the same
      // way drain-grace expiry does: say why, then close and account
      // every connection instead of leaving fds (and half-buffered
      // responses) to the destructor.
      Log << "jslice_serve: poll failed (errno " << PollErrno
          << "); forcing close of " << Conns.size() << " connection"
          << (Conns.size() == 1 ? "" : "s") << "\n";
      for (auto &C : Conns)
        closeConn(*C, "poll failure", nullptr);
      Conns.clear();
      return;
    }

    // Drain the wake pipe (level-triggered; a byte per response is
    // fine, we just swallow whatever accumulated).
    if (P[0].revents) {
      char Buf[256];
      while (::read(Wake->ReadFd, Buf, sizeof(Buf)) > 0) {
      }
    }

    if (ListenIdx != SIZE_MAX && P[ListenIdx].revents)
      acceptPending(); // Appends to Conns; indices above still match.

    Clock::time_point Now = Clock::now();
    size_t Polled = P.size() - ConnBase; // New accepts weren't polled.
    for (size_t I = 0; I != Polled; ++I) {
      Conn &C = *Conns[I];
      short Re = P[ConnBase + I].revents;
      if (C.Doomed || C.Fd < 0)
        continue;
      if (Re & POLLOUT)
        flushConn(C);
      if (!C.Doomed && (Re & (POLLIN | POLLHUP | POLLERR)))
        handleReadable(C);
    }

    // Timers, backpressure verdicts, and retirement — over every
    // connection, polled or not.
    for (auto &C : Conns) {
      if (C->Fd < 0)
        continue;
      // Doomed with the fd still open (flushConn hit PeerClosed): close
      // and account here; skipping it would leak the fd at the sweep.
      if (C->Doomed) {
        closeConn(*C, "peer reset", &PeerResets);
        continue;
      }
      bool Overflowed, Idle;
      {
        std::lock_guard<std::mutex> L(C->Shared->M);
        Overflowed = C->Shared->Overflowed;
        Idle = C->Shared->Pending == 0 && C->Shared->Out.empty();
        // Flush opportunistically: responses may have arrived from
        // pool threads after the poll set was built.
        if (!Idle && !C->Shared->Out.empty())
          if (C->Shared->Out.flush(C->Fd) ==
              WriteBuffer::FlushResult::PeerClosed)
            Overflowed = false, C->Doomed = true;
        Idle = C->Shared->Pending == 0 && C->Shared->Out.empty();
      }
      if (C->Doomed) {
        closeConn(*C, "peer reset", &PeerResets);
        continue;
      }
      if (Overflowed) {
        closeConn(*C, "write buffer overflow: stalled reader",
                  &BackpressureClosed);
        continue;
      }
      if (C->ReadClosed && Idle) {
        closeConn(*C, "peer finished", &CleanClosed);
        continue;
      }
      // Discarding counts as a partial line too: the refused line is
      // still unterminated, and its bytes are dropped on arrival so
      // InBuf stays empty — without this a client could hold the slot
      // forever by streaming newline-free garbage.
      if (Opts.ReadDeadlineMs && (!C->InBuf.empty() || C->Discarding) &&
          C->LineStart != Clock::time_point() &&
          Now - C->LineStart >
              std::chrono::milliseconds(Opts.ReadDeadlineMs)) {
        closeConn(*C, "read deadline: partial line too old",
                  &DeadlineClosed);
        continue;
      }
      if (Opts.IdleTimeoutMs && Idle && C->InBuf.empty() &&
          !C->ReadClosed &&
          Now - C->LastActivity >
              std::chrono::milliseconds(Opts.IdleTimeoutMs)) {
        closeConn(*C, "idle timeout", &IdleClosed);
        continue;
      }
    }

    // Sweep the dead.
    for (size_t I = 0; I != Conns.size();) {
      if (Conns[I]->Doomed || Conns[I]->Fd < 0)
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
      else
        ++I;
    }
  }
}

#else // !JSLICE_HAVE_POSIX_PROCESS

bool TcpServer::start(std::string &Err) {
  Err = "TCP transport unavailable on this platform";
  return false;
}
uint16_t TcpServer::port() const { return 0; }
void TcpServer::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
}
void TcpServer::run() {}

#endif
