//===- net/TcpServer.cpp - Sharded socket transport with containment -------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "net/TcpServer.h"

#include "net/Socket.h"
#include "net/WriteBuffer.h"
#include "support/Pipe.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#include <unistd.h>
#endif

using namespace jslice;

using Clock = std::chrono::steady_clock;

namespace {

/// Steady-clock milliseconds, for the lock-free heartbeat atomics.
uint64_t steadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

} // namespace

JsonValue TransportStats::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("accepted", Accepted);
  V.set("refused_at_cap", RefusedAtCap);
  V.set("active", Active);
  V.set("clean_closed", CleanClosed);
  V.set("idle_closed", IdleClosed);
  V.set("deadline_closed", DeadlineClosed);
  V.set("backpressure_closed", BackpressureClosed);
  V.set("peer_resets", PeerResets);
  V.set("oversized_lines", OversizedLines);
  V.set("lines_dispatched", LinesDispatched);
  V.set("responses_delivered", ResponsesDelivered);
  V.set("in_buf_high_water_bytes", InBufHighWaterBytes);
  V.set("drain_discarded_bytes", DrainDiscardedBytes);
  V.set("heartbeat_age_ms", HeartbeatAgeMs);
  return V;
}

/// Sink-visible connection state. Pool threads reach it through
/// shared_ptr captures, so it outlives both the socket and (if
/// responses land after the drain grace) the TcpServer itself.
struct TcpServer::ConnShared {
  explicit ConnShared(size_t WriteCap) : Out(WriteCap) {}

  std::mutex M;
  WriteBuffer Out;
  uint64_t Pending = 0;    ///< Dispatched lines awaiting their response.
  bool Overflowed = false; ///< append() refused: reader has stalled.
  bool Closed = false;     ///< Owning shard closed the fd; late responses drop.
};

struct TcpServer::Conn {
  int Fd = -1;
  uint64_t Id = 0;
  std::string InBuf;
  bool Discarding = false; ///< Swallowing the tail of an oversized line.
  bool ReadClosed = false;
  bool Doomed = false;
  Clock::time_point LastActivity;
  Clock::time_point LineStart; ///< First byte of the current partial line.
  std::shared_ptr<ConnShared> Shared;
  ResponseSink Sink;
};

/// One reactor thread's world. Everything here — fds, buffers, timers,
/// counters — is touched only by the owning thread, except the inbox
/// (fed by shard 0 under its mutex), the wake pipe (written by anyone),
/// and the counters (atomics so stats() reads race-free).
struct TcpServer::Shard {
  unsigned Index = 0;
  int ListenFd = -1; ///< Own listener (REUSEPORT) or shard 0's (handoff).
  std::shared_ptr<Pipe> Wake;
  std::vector<std::unique_ptr<Conn>> Conns;

  /// Handoff inbox: shard 0 pushes accepted fds here (slot already
  /// acquired), then writes a wake byte; the owner adopts on wakeup.
  std::mutex InboxM;
  std::vector<int> Inbox;
  uint64_t HandoffNext = 0; ///< Round-robin cursor; shard 0 only.

  std::atomic<uint64_t> Accepted{0}, RefusedAtCap{0}, Active{0},
      CleanClosed{0}, IdleClosed{0}, DeadlineClosed{0},
      BackpressureClosed{0}, PeerResets{0}, OversizedLines{0},
      LinesDispatched{0}, InBufHighWaterBytes{0}, DrainDiscardedBytes{0};
  /// Liveness heartbeat: steady ms of the loop's last turn. Stored
  /// every shardLoop iteration (the 200ms poll tick guarantees an idle
  /// shard still beats); 0 until the loop first runs.
  std::atomic<uint64_t> LastBeatMs{0};
  /// Shared with this shard's sinks (which may outlive this object).
  std::shared_ptr<std::atomic<uint64_t>> Delivered =
      std::make_shared<std::atomic<uint64_t>>(0);
};

TcpServer::TcpServer(Server &S, const TcpServerOptions &Opts,
                     std::ostream &Log)
    : Srv(S), Opts(Opts), Log(Log) {}

TcpServer::~TcpServer() {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  for (auto &S : Shards) {
    closeQuietly(S->ListenFd);
    for (int Fd : S->Inbox)
      closeQuietly(Fd);
    for (auto &C : S->Conns)
      if (C && C->Fd >= 0) {
        std::lock_guard<std::mutex> L(C->Shared->M);
        C->Shared->Closed = true;
        closeQuietly(C->Fd);
      }
  }
#endif
}

TransportStats TcpServer::shardStats(unsigned Index) const {
  TransportStats T;
  if (Index >= Shards.size())
    return T;
  const Shard &S = *Shards[Index];
  T.Accepted = S.Accepted.load(std::memory_order_relaxed);
  T.RefusedAtCap = S.RefusedAtCap.load(std::memory_order_relaxed);
  T.Active = S.Active.load(std::memory_order_relaxed);
  T.CleanClosed = S.CleanClosed.load(std::memory_order_relaxed);
  T.IdleClosed = S.IdleClosed.load(std::memory_order_relaxed);
  T.DeadlineClosed = S.DeadlineClosed.load(std::memory_order_relaxed);
  T.BackpressureClosed = S.BackpressureClosed.load(std::memory_order_relaxed);
  T.PeerResets = S.PeerResets.load(std::memory_order_relaxed);
  T.OversizedLines = S.OversizedLines.load(std::memory_order_relaxed);
  T.LinesDispatched = S.LinesDispatched.load(std::memory_order_relaxed);
  T.ResponsesDelivered = S.Delivered->load(std::memory_order_relaxed);
  T.InBufHighWaterBytes =
      S.InBufHighWaterBytes.load(std::memory_order_relaxed);
  T.DrainDiscardedBytes =
      S.DrainDiscardedBytes.load(std::memory_order_relaxed);
  uint64_t Beat = S.LastBeatMs.load(std::memory_order_relaxed);
  if (Beat) {
    uint64_t Now = steadyMs();
    T.HeartbeatAgeMs = Now > Beat ? Now - Beat : 0;
  }
  return T;
}

TransportStats TcpServer::stats() const {
  TransportStats M;
  for (unsigned I = 0; I != Shards.size(); ++I) {
    TransportStats T = shardStats(I);
    M.Accepted += T.Accepted;
    M.RefusedAtCap += T.RefusedAtCap;
    M.Active += T.Active;
    M.CleanClosed += T.CleanClosed;
    M.IdleClosed += T.IdleClosed;
    M.DeadlineClosed += T.DeadlineClosed;
    M.BackpressureClosed += T.BackpressureClosed;
    M.PeerResets += T.PeerResets;
    M.OversizedLines += T.OversizedLines;
    M.LinesDispatched += T.LinesDispatched;
    M.ResponsesDelivered += T.ResponsesDelivered;
    // A watermark, not a flow counter: the merged view is the largest
    // retention any one shard ever saw, not the sum of the maxima.
    M.InBufHighWaterBytes =
        std::max(M.InBufHighWaterBytes, T.InBufHighWaterBytes);
    M.DrainDiscardedBytes += T.DrainDiscardedBytes;
    // Liveness is as stale as the most-stale shard.
    M.HeartbeatAgeMs = std::max(M.HeartbeatAgeMs, T.HeartbeatAgeMs);
  }
  return M;
}

std::vector<uint64_t> TcpServer::shardHeartbeatAgesMs() const {
  std::vector<uint64_t> Ages;
  Ages.reserve(Shards.size());
  for (unsigned I = 0; I != Shards.size(); ++I)
    Ages.push_back(shardStats(I).HeartbeatAgeMs);
  return Ages;
}

bool TcpServer::anyShardWedged() const {
  for (uint64_t Age : shardHeartbeatAgesMs())
    if (Age > Opts.WedgeThresholdMs)
      return true;
  return false;
}

JsonValue TcpServer::healthProbeJson() const {
  JsonValue V = JsonValue::object();
  V.set("shards", static_cast<uint64_t>(Shards.size()));
  JsonValue Ages = JsonValue::array();
  bool Wedged = false;
  for (uint64_t Age : shardHeartbeatAgesMs()) {
    Ages.push(Age);
    if (Age > Opts.WedgeThresholdMs)
      Wedged = true;
  }
  V.set("shard_heartbeat_ages_ms", std::move(Ages));
  if (Wedged)
    V.set("wedged", true);
  return V;
}

int TcpServer::shardZeroListenerFd() const {
  return Shards.empty() ? -1 : Shards[0]->ListenFd;
}

JsonValue TcpServer::transportJson() const {
  JsonValue V = stats().toJson();
  V.set("shards", static_cast<uint64_t>(Shards.size()));
  JsonValue Per = JsonValue::array();
  for (unsigned I = 0; I != Shards.size(); ++I)
    Per.push(shardStats(I).toJson());
  V.set("per_shard", std::move(Per));
  if (anyShardWedged())
    V.set("wedged", true);
  return V;
}

void TcpServer::logLine(const std::string &Line) {
  std::lock_guard<std::mutex> L(LogM);
  Log << Line << "\n";
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

bool TcpServer::start(std::string &Err) {
  unsigned N = Opts.Shards ? Opts.Shards
                           : std::max(1u, std::thread::hardware_concurrency());
  N = std::min(N, 64u);

  ConnSlots.store(static_cast<int64_t>(Opts.MaxConnections),
                  std::memory_order_relaxed);

  for (unsigned I = 0; I != N; ++I) {
    auto S = std::make_unique<Shard>();
    S->Index = I;
    S->Wake = std::make_shared<Pipe>();
    if (!S->Wake->make()) {
      Err = "cannot create wake pipe";
      Shards.clear();
      WakeWriteFds.clear();
      return false;
    }
    setNonBlocking(S->Wake->ReadFd, true);
    setNonBlocking(S->Wake->WriteFd, true);
    WakeWriteFds.push_back(S->Wake->WriteFd);
    Shards.push_back(std::move(S));
  }

  // Listener placement. REUSEPORT: every shard binds the shared port
  // and the kernel spreads accepts. Handoff: shard 0 owns the sole
  // listener and round-robins accepted fds. Auto tries the former and
  // falls back; an explicit ReusePort request fails honestly.
  // ReusePortAlways extends the REUSEPORT path to N == 1 so a successor
  // generation can bind alongside (the kernel only admits a second
  // binder when every socket on the port carries the option).
  UseReusePort = false;
  if (Opts.InheritedListenerFd >= 0) {
    // Adopt a predecessor generation's listener received over
    // SCM_RIGHTS — the fallback when a fresh SO_REUSEPORT bind is
    // unavailable. Shard 0 owns it; with N > 1 accepts degrade to
    // round-robin handoff, which is still a working (if less parallel)
    // accept path.
    setNonBlocking(Opts.InheritedListenerFd, true);
    Shards[0]->ListenFd = Opts.InheritedListenerFd;
  } else {
    if ((N > 1 || Opts.ReusePortAlways) &&
        Opts.AcceptMode != TcpAcceptMode::Handoff) {
      std::string ReuseErr;
      int Fd0 = listenTcp(Opts.Host, Opts.Port, /*Backlog=*/128, ReuseErr,
                          /*ReusePort=*/true);
      if (Fd0 >= 0) {
        Shards[0]->ListenFd = Fd0;
        uint16_t BoundPort = tcpLocalPort(Fd0);
        bool AllBound = true;
        for (unsigned I = 1; I != N && AllBound; ++I) {
          int Fd = listenTcp(Opts.Host, BoundPort, /*Backlog=*/128, ReuseErr,
                             /*ReusePort=*/true);
          if (Fd < 0)
            AllBound = false;
          else
            Shards[I]->ListenFd = Fd;
        }
        if (AllBound)
          UseReusePort = true;
        else
          for (auto &S : Shards) {
            closeQuietly(S->ListenFd);
            S->ListenFd = -1;
          }
      }
      if (!UseReusePort && Opts.AcceptMode == TcpAcceptMode::ReusePort) {
        Err = "SO_REUSEPORT listeners unavailable: " + ReuseErr;
        Shards.clear();
        WakeWriteFds.clear();
        return false;
      }
    }
    if (!UseReusePort) {
      Shards[0]->ListenFd = listenTcp(Opts.Host, Opts.Port, /*Backlog=*/128,
                                      Err);
      if (Shards[0]->ListenFd < 0) {
        Shards.clear();
        WakeWriteFds.clear();
        return false;
      }
    }
  }

  Srv.setTransportStats([this] { return transportJson(); });
  Srv.setHealthProbe([this] { return healthProbeJson(); });
  return true;
}

uint16_t TcpServer::port() const {
  return !Shards.empty() && Shards[0]->ListenFd >= 0
             ? tcpLocalPort(Shards[0]->ListenFd)
             : 0;
}

void TcpServer::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
  // Signal context: only the flag store and one write per shard.
  for (int Fd : WakeWriteFds)
    if (Fd >= 0) {
      char B = 1;
      [[maybe_unused]] ssize_t N = ::write(Fd, &B, 1);
    }
}

bool TcpServer::tryAcquireConnSlot() {
  int64_t Cur = ConnSlots.load(std::memory_order_relaxed);
  while (Cur > 0)
    if (ConnSlots.compare_exchange_weak(Cur, Cur - 1,
                                        std::memory_order_relaxed))
      return true;
  return false;
}

void TcpServer::refuseAtCap(Shard &S, int Fd) {
  // Deterministic refusal beats a silent backlog hang: the client
  // learns immediately that the server is at capacity — and because
  // the cap is one atomic budget across shards, the verdict does not
  // depend on which shard fielded the accept.
  S.RefusedAtCap.fetch_add(1, std::memory_order_relaxed);
  static const char Refusal[] =
      "{\"error\":\"connection limit reached\",\"status\":\"shed\"}\n";
  // Send it blocking: the fd was accepted non-blocking, and a one-shot
  // EAGAIN here would turn the refusal into a bare close —
  // indistinguishable from a crash to the client. A fresh connection's
  // send buffer is empty, so one short line cannot stall the shard.
  setNonBlocking(Fd, false);
  size_t Off = 0;
  while (Off < sizeof(Refusal) - 1) {
    int64_t W = sendSome(Fd, Refusal + Off, sizeof(Refusal) - 1 - Off);
    if (W <= 0)
      break; // Peer already gone; nothing more owed.
    Off += static_cast<size_t>(W);
  }
  ::close(Fd);
}

void TcpServer::adoptConn(Shard &S, int Fd) {
  setSendBufferBytes(Fd, Opts.SendBufferBytes);

  auto C = std::make_unique<Conn>();
  C->Fd = Fd;
  C->Id = NextConnId.fetch_add(1, std::memory_order_relaxed);
  C->LastActivity = Clock::now();
  C->Shared = std::make_shared<ConnShared>(
      static_cast<size_t>(Opts.MaxWriteBufferBytes));

  // The response path. Runs on pool threads: bounded append under the
  // connection mutex, then one byte down the *owning shard's* self-pipe
  // so that shard — and only that shard — wakes to flush.
  std::shared_ptr<ConnShared> SP = C->Shared;
  std::shared_ptr<Pipe> WK = S.Wake;
  std::shared_ptr<std::atomic<uint64_t>> Delivered = S.Delivered;
  C->Sink = [SP, WK, Delivered](const std::string &Line) {
    bool NeedWake = false;
    {
      std::lock_guard<std::mutex> L(SP->M);
      if (SP->Pending)
        --SP->Pending;
      if (!SP->Closed) {
        std::string Framed = Line;
        Framed.push_back('\n');
        if (SP->Out.append(Framed))
          Delivered->fetch_add(1, std::memory_order_relaxed);
        else
          SP->Overflowed = true; // Stalled reader; shard disconnects.
        NeedWake = true;
      }
    }
    if (NeedWake && WK->WriteFd >= 0) {
      char B = 1;
      [[maybe_unused]] ssize_t N = ::write(WK->WriteFd, &B, 1);
    }
  };

  S.Accepted.fetch_add(1, std::memory_order_relaxed);
  S.Active.fetch_add(1, std::memory_order_relaxed);
  S.Conns.push_back(std::move(C));
}

void TcpServer::acceptPending(Shard &S) {
  for (;;) {
    int Fd = acceptTcp(S.ListenFd);
    if (Fd < 0)
      return;
    if (!tryAcquireConnSlot()) {
      refuseAtCap(S, Fd);
      continue;
    }
    if (UseReusePort || Shards.size() == 1) {
      adoptConn(S, Fd);
      continue;
    }
    // Handoff: deterministic round-robin over all shards, self
    // included. The budget slot travels with the fd; the adopting
    // shard does the Accepted/Active accounting.
    unsigned Target =
        static_cast<unsigned>(S.HandoffNext++ % Shards.size());
    if (Target == S.Index) {
      adoptConn(S, Fd);
      continue;
    }
    Shard &T = *Shards[Target];
    {
      std::lock_guard<std::mutex> L(T.InboxM);
      T.Inbox.push_back(Fd);
    }
    if (T.Wake->WriteFd >= 0) {
      char B = 1;
      [[maybe_unused]] ssize_t N = ::write(T.Wake->WriteFd, &B, 1);
    }
  }
}

void TcpServer::adoptHandoffs(Shard &S, bool Draining) {
  std::vector<int> Pending;
  {
    std::lock_guard<std::mutex> L(S.InboxM);
    Pending.swap(S.Inbox);
  }
  for (int Fd : Pending) {
    if (Draining) {
      // Accepted by shard 0 just before the stop request landed here;
      // too late to serve it. Give the slot back and close.
      ConnSlots.fetch_add(1, std::memory_order_relaxed);
      closeQuietly(Fd);
      continue;
    }
    adoptConn(S, Fd);
  }
}

void TcpServer::dispatchLine(Shard &S, Conn &C, const std::string &Line) {
  if (Line.empty() || Line.find_first_not_of(" \t\r") == std::string::npos)
    return; // Blank lines produce no response; don't count one pending.
  {
    std::lock_guard<std::mutex> L(C.Shared->M);
    ++C.Shared->Pending;
  }
  S.LinesDispatched.fetch_add(1, std::memory_order_relaxed);
  // Control lines answer synchronously through the sink; slice lines
  // journal + enqueue and answer later from a pool thread. Either way
  // exactly one response line lands per dispatched line — except the
  // one-way replication ack, which serveLine flags by returning false
  // so the pending slot goes back and a standby's subscriber
  // connection still reads as idle at drain time.
  if (!Srv.serveLine(Line, C.Sink)) {
    std::lock_guard<std::mutex> L(C.Shared->M);
    if (C.Shared->Pending)
      --C.Shared->Pending;
  }
}

void TcpServer::processInput(Shard &S, Conn &C) {
  size_t Pos;
  while ((Pos = C.InBuf.find('\n')) != std::string::npos) {
    std::string Line = C.InBuf.substr(0, Pos);
    C.InBuf.erase(0, Pos + 1);
    if (C.Discarding) {
      // The newline ends the oversized line we already refused; what
      // follows it starts a fresh line with a fresh deadline clock.
      C.Discarding = false;
      C.LineStart = Clock::now();
      continue;
    }
    dispatchLine(S, C, Line);
  }
  // No newline left past this point. A connection still mid-discard
  // holds only refused bytes — drop them now rather than letting a
  // newline-free stream grow InBuf at full bandwidth until one shows
  // up (the invariant is that the buffer does not grow while
  // discarding, whatever the peer sends).
  if (C.Discarding)
    C.InBuf.clear();
  uint64_t Cap = Srv.maxLineBytes();
  if (!C.Discarding && Cap && C.InBuf.size() > Cap) {
    // A line longer than the cap and still no newline: refuse it now,
    // deterministically, and swallow the remainder as it streams in —
    // the connection survives, the buffer does not grow.
    S.OversizedLines.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(C.Shared->M);
      ++C.Shared->Pending;
    }
    Srv.refuseOversizedLine(C.Sink);
    C.InBuf.clear();
    C.Discarding = true;
  }
  if (C.InBuf.empty() && !C.Discarding)
    C.LineStart = Clock::time_point();
}

void TcpServer::handleReadable(Shard &S, Conn &C) {
  char Chunk[65536];
  int64_t N = recvSome(C.Fd, Chunk, sizeof(Chunk));
  if (N == NetWouldBlock)
    return;
  if (N < 0) {
    closeConn(S, C, "read error", &S.PeerResets);
    return;
  }
  C.LastActivity = Clock::now();
  if (N == 0) {
    C.ReadClosed = true;
    // EOF terminates a final unterminated line, same as the stdin
    // transport; the response will still be flushed before close.
    if (!C.Discarding && !C.InBuf.empty()) {
      std::string Line;
      Line.swap(C.InBuf);
      dispatchLine(S, C, Line);
    }
    C.InBuf.clear();
    return;
  }
  if (C.InBuf.empty() && !C.Discarding)
    C.LineStart = C.LastActivity;
  C.InBuf.append(Chunk, static_cast<size_t>(N));
  processInput(S, C);
  // Retained-bytes high-water mark, measured after trimming: complete
  // lines are dispatched and discarded tails dropped, so this tracks
  // what the transport actually holds onto per connection. Raised with
  // a CAS loop: the mark is per shard but stats() merges across
  // shards, and a load-then-store max would lose races.
  storeMaxRelaxed(S.InBufHighWaterBytes, C.InBuf.size());
}

void TcpServer::drainReadable(Shard &S, Conn &C) {
  // Draining: the listener is closed and nothing new may be
  // dispatched — POLLIN/POLLHUP/POLLERR are serviced only to tell
  // "peer finished" from "peer reset". Whatever bytes still arrive
  // (a request racing the shutdown, the tail of a half-closed
  // stream) are counted and dropped, never parsed. Dispatching here
  // would inflate Pending with work the server is trying to retire
  // and stall the drain until grace expiry.
  char Chunk[65536];
  int64_t N = recvSome(C.Fd, Chunk, sizeof(Chunk));
  if (N == NetWouldBlock)
    return;
  if (N < 0) {
    closeConn(S, C, "peer reset during drain", &S.PeerResets);
    return;
  }
  C.LastActivity = Clock::now();
  if (N == 0) {
    C.ReadClosed = true;
    C.InBuf.clear();
    return;
  }
  S.DrainDiscardedBytes.fetch_add(static_cast<uint64_t>(N),
                                  std::memory_order_relaxed);
}

void TcpServer::flushConn(Conn &C) {
  std::lock_guard<std::mutex> L(C.Shared->M);
  if (C.Shared->Out.empty())
    return;
  WriteBuffer::FlushResult R = C.Shared->Out.flush(C.Fd);
  C.LastActivity = Clock::now();
  if (R == WriteBuffer::FlushResult::PeerClosed) {
    C.Doomed = true; // closeConn outside the lock, in the sweep.
  }
}

void TcpServer::closeConn(Shard &S, Conn &C, const char *Why,
                          std::atomic<uint64_t> *Counter) {
  if (C.Fd < 0)
    return;
  {
    std::lock_guard<std::mutex> L(C.Shared->M);
    C.Shared->Closed = true;
  }
  // Account before closing: a peer that observes the close (EOF/RST on
  // loopback is near-instant) must also observe the accounting in a
  // stats probe.
  if (Counter)
    Counter->fetch_add(1, std::memory_order_relaxed);
  S.Active.fetch_sub(1, std::memory_order_relaxed);
  ConnSlots.fetch_add(1, std::memory_order_relaxed);
  ::close(C.Fd);
  C.Fd = -1;
  C.Doomed = true;
  std::ostringstream OS;
  OS << "jslice_serve: connection #" << C.Id << " closed (" << Why << ")";
  logLine(OS.str());
}

int TcpServer::computePollTimeout(bool Draining, Clock::time_point DrainBy) {
  // The shard's deadlines (read deadline, idle timeout, drain grace)
  // are coarse; a 200ms tick bounds their latency and doubles as a
  // lost-wakeup backstop. An idle shard pays five wakeups a second.
  int Timeout = 200;
  if (Draining) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        DrainBy - Clock::now());
    Timeout = std::min<int>(
        Timeout, Left.count() <= 0 ? 0 : static_cast<int>(Left.count()));
  }
  return Timeout;
}

void TcpServer::run() {
  if (Shards.empty())
    return;

  // Shards 1..N-1 on their own threads, shard 0 inline; run() returns
  // only after every shard has drained and joined, so the caller's
  // clean-shutdown journal record covers the whole transport.
  std::vector<std::thread> Threads;
  std::vector<char> Quiet(Shards.size(), 1);
  for (size_t I = 1; I != Shards.size(); ++I)
    Threads.emplace_back(
        [this, I, &Quiet] { Quiet[I] = shardLoop(*Shards[I]) ? 1 : 0; });
  Quiet[0] = shardLoop(*Shards[0]) ? 1 : 0;
  for (auto &T : Threads)
    T.join();

  size_t Forced = static_cast<size_t>(
      std::count(Quiet.begin(), Quiet.end(), static_cast<char>(0)));
  std::ostringstream OS;
  if (Forced == 0)
    OS << "jslice_serve: TCP drain complete across " << Shards.size()
       << " shard" << (Shards.size() == 1 ? "" : "s");
  else
    OS << "jslice_serve: TCP drain grace expired on " << Forced << " of "
       << Shards.size() << " shard" << (Shards.size() == 1 ? "" : "s")
       << "; forced close";
  logLine(OS.str());
}

bool TcpServer::shardLoop(Shard &S) {
  bool Draining = false;
  bool QuietDrain = true;
  Clock::time_point DrainBy;

  for (;;) {
    // Liveness heartbeat: the 200ms poll tick guarantees an idle shard
    // still reaches this store, so a stale beat means a wedged loop,
    // not a quiet one.
    S.LastBeatMs.store(steadyMs(), std::memory_order_relaxed);

    bool WantStop =
        StopRequested.load(std::memory_order_relaxed) ||
        (Opts.ShutdownFlag &&
         Opts.ShutdownFlag->load(std::memory_order_relaxed));
    if (WantStop && !Draining) {
      Draining = true;
      DrainBy = Clock::now() + std::chrono::milliseconds(Opts.DrainGraceMs);
      closeQuietly(S.ListenFd); // Stop accepting; drain what is in flight.
      S.ListenFd = -1;
      std::ostringstream OS;
      OS << "jslice_serve: shard " << S.Index << " draining ("
         << S.Conns.size() << " connection"
         << (S.Conns.size() == 1 ? "" : "s") << " open)";
      logLine(OS.str());
    }

    if (Draining) {
      // This shard's drain completes when every one of its connections
      // has nothing pending and nothing buffered — or the grace period
      // runs out.
      bool ShardQuiet = true;
      for (auto &C : S.Conns) {
        std::lock_guard<std::mutex> L(C->Shared->M);
        if (C->Shared->Pending || !C->Shared->Out.empty())
          ShardQuiet = false;
      }
      if (ShardQuiet || Clock::now() >= DrainBy) {
        for (auto &C : S.Conns)
          closeConn(S, *C, ShardQuiet ? "drained" : "drain grace expired",
                    nullptr);
        S.Conns.clear();
        adoptHandoffs(S, /*Draining=*/true); // Late handoffs: close them.
        return QuietDrain && ShardQuiet;
      }
    }

    // Poll set: wake pipe, listener, then one slot per connection (in
    // Conns order — nothing mutates Conns between here and the
    // dispatch below).
    std::vector<struct pollfd> P;
    P.reserve(2 + S.Conns.size());
    P.push_back({S.Wake->ReadFd, POLLIN, 0});
    size_t ListenIdx = SIZE_MAX;
    if (!Draining && S.ListenFd >= 0) {
      ListenIdx = P.size();
      P.push_back({S.ListenFd, POLLIN, 0});
    }
    size_t ConnBase = P.size();
    for (auto &C : S.Conns) {
      short Ev = 0;
      // POLLIN stays armed during drain: drainReadable() wants to see
      // EOF/reset promptly — it just never dispatches what it reads.
      if (!C->ReadClosed)
        Ev |= POLLIN;
      {
        std::lock_guard<std::mutex> L(C->Shared->M);
        if (!C->Shared->Out.empty())
          Ev |= POLLOUT;
      }
      P.push_back({C->Fd, Ev, 0});
    }

    int N = ::poll(P.data(), P.size(),
                   computePollTimeout(Draining, DrainBy));
    int PollErrno = errno; // Before the stream ops below can clobber it.
    if (N < 0 && PollErrno != EINTR) {
      // poll() itself failing is unrecoverable for this shard — go
      // down the way drain-grace expiry does: say why, close and
      // account every connection, and ask the *other* shards to drain
      // so run() still returns.
      std::ostringstream OS;
      OS << "jslice_serve: shard " << S.Index << " poll failed (errno "
         << PollErrno << "); forcing close of " << S.Conns.size()
         << " connection" << (S.Conns.size() == 1 ? "" : "s");
      logLine(OS.str());
      for (auto &C : S.Conns)
        closeConn(S, *C, "poll failure", nullptr);
      S.Conns.clear();
      closeQuietly(S.ListenFd);
      S.ListenFd = -1;
      requestStop();
      return false;
    }

    // Drain the wake pipe (level-triggered; a byte per response is
    // fine, we just swallow whatever accumulated).
    if (P[0].revents) {
      char Buf[256];
      while (::read(S.Wake->ReadFd, Buf, sizeof(Buf)) > 0) {
      }
    }

    // Adopt handed-off fds before reading the listener so inbox order
    // roughly tracks accept order.
    if (!UseReusePort && Shards.size() > 1)
      adoptHandoffs(S, Draining);

    if (ListenIdx != SIZE_MAX && P[ListenIdx].revents)
      acceptPending(S); // Appends to S.Conns; indices above still match.

    Clock::time_point Now = Clock::now();
    size_t Polled = P.size() - ConnBase; // New adoptions weren't polled.
    for (size_t I = 0; I != Polled; ++I) {
      Conn &C = *S.Conns[I];
      short Re = P[ConnBase + I].revents;
      if (C.Doomed || C.Fd < 0)
        continue;
      if (Re & POLLOUT)
        flushConn(C);
      if (!C.Doomed && (Re & (POLLIN | POLLHUP | POLLERR))) {
        if (Draining)
          drainReadable(S, C);
        else
          handleReadable(S, C);
      }
    }

    // Timers, backpressure verdicts, and retirement — over every
    // connection, polled or not.
    for (auto &C : S.Conns) {
      if (C->Fd < 0)
        continue;
      // Doomed with the fd still open (flushConn hit PeerClosed): close
      // and account here; skipping it would leak the fd at the sweep.
      if (C->Doomed) {
        closeConn(S, *C, "peer reset", &S.PeerResets);
        continue;
      }
      bool Overflowed, Idle;
      {
        std::lock_guard<std::mutex> L(C->Shared->M);
        Overflowed = C->Shared->Overflowed;
        Idle = C->Shared->Pending == 0 && C->Shared->Out.empty();
        // Flush opportunistically: responses may have arrived from
        // pool threads after the poll set was built.
        if (!Idle && !C->Shared->Out.empty())
          if (C->Shared->Out.flush(C->Fd) ==
              WriteBuffer::FlushResult::PeerClosed)
            Overflowed = false, C->Doomed = true;
        Idle = C->Shared->Pending == 0 && C->Shared->Out.empty();
      }
      if (C->Doomed) {
        closeConn(S, *C, "peer reset", &S.PeerResets);
        continue;
      }
      if (Overflowed) {
        closeConn(S, *C, "write buffer overflow: stalled reader",
                  &S.BackpressureClosed);
        continue;
      }
      if (C->ReadClosed && Idle) {
        closeConn(S, *C, "peer finished", &S.CleanClosed);
        continue;
      }
      // Discarding counts as a partial line too: the refused line is
      // still unterminated, and its bytes are dropped on arrival so
      // InBuf stays empty — without this a client could hold the slot
      // forever by streaming newline-free garbage.
      if (Opts.ReadDeadlineMs && (!C->InBuf.empty() || C->Discarding) &&
          C->LineStart != Clock::time_point() &&
          Now - C->LineStart >
              std::chrono::milliseconds(Opts.ReadDeadlineMs)) {
        closeConn(S, *C, "read deadline: partial line too old",
                  &S.DeadlineClosed);
        continue;
      }
      if (Opts.IdleTimeoutMs && Idle && C->InBuf.empty() &&
          !C->ReadClosed &&
          Now - C->LastActivity >
              std::chrono::milliseconds(Opts.IdleTimeoutMs)) {
        closeConn(S, *C, "idle timeout", &S.IdleClosed);
        continue;
      }
    }

    // Sweep the dead.
    for (size_t I = 0; I != S.Conns.size();) {
      if (S.Conns[I]->Doomed || S.Conns[I]->Fd < 0)
        S.Conns.erase(S.Conns.begin() + static_cast<ptrdiff_t>(I));
      else
        ++I;
    }
  }
}

#else // !JSLICE_HAVE_POSIX_PROCESS

bool TcpServer::start(std::string &Err) {
  Err = "TCP transport unavailable on this platform";
  return false;
}
uint16_t TcpServer::port() const { return 0; }
void TcpServer::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
}
void TcpServer::run() {}
bool TcpServer::shardLoop(Shard &) { return true; }

#endif
