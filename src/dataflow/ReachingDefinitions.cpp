//===- dataflow/ReachingDefinitions.cpp - Classic RD dataflow ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "dataflow/ReachingDefinitions.h"

using namespace jslice;

ReachingDefinitions ReachingDefinitions::compute(const Cfg &C,
                                                 const DefUse &DU,
                                                 ResourceGuard *Guard) {
  ReachingDefinitions Result;
  unsigned N = C.numNodes();

  // Enumerate definition sites; a node may host several (a read defines
  // its target and the $input pseudo-variable).
  std::vector<std::vector<unsigned>> DefIdsOf(N);
  for (unsigned Node = 0; Node != N; ++Node) {
    for (unsigned Var : DU.defsOf(Node)) {
      DefIdsOf[Node].push_back(static_cast<unsigned>(Result.DefNode.size()));
      Result.DefNode.push_back(Node);
      Result.DefVar.push_back(Var);
    }
  }
  unsigned D = Result.numDefSites();

  // Per-variable kill masks.
  std::vector<BitVector> VarDefs(DU.numVars(), BitVector(D));
  for (unsigned DefId = 0; DefId != D; ++DefId)
    VarDefs[Result.DefVar[DefId]].set(DefId);

  std::vector<BitVector> In(N, BitVector(D));
  std::vector<BitVector> Out(N, BitVector(D));

  std::vector<unsigned> RPO = reversePostorder(C.graph(), C.entry());
  bool Changed = true;
  BitVector Tmp(D);
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Guard && !Guard->checkpoint("reachingdefs.transfer")) {
        // Budget exhausted: abandon the fixpoint. The caller observes
        // the tripped guard and discards the unconverged facts.
        Result.In = std::move(In);
        return Result;
      }
      Tmp.clear();
      for (unsigned Pred : C.graph().preds(Node))
        Tmp |= Out[Pred];
      In[Node] = Tmp;

      // Transfer: Out = Gen ∪ (In − Kill).
      for (unsigned Var : DU.defsOf(Node))
        Tmp.resetOf(VarDefs[Var]);
      for (unsigned DefId : DefIdsOf[Node])
        Tmp.set(DefId);
      if (Tmp != Out[Node]) {
        Out[Node] = Tmp;
        Changed = true;
      }
    }
  }

  Result.In = std::move(In);
  return Result;
}

std::vector<unsigned>
ReachingDefinitions::reachingDefNodes(unsigned Node, unsigned Var) const {
  std::vector<unsigned> Out;
  In[Node].forEachSetBit([&](size_t DefId) {
    if (DefVar[DefId] == Var)
      Out.push_back(DefNode[DefId]);
  });
  return Out;
}

Digraph jslice::buildDataDependence(const Cfg &C, const DefUse &DU,
                                    const ReachingDefinitions &RD) {
  Digraph DD(C.numNodes());
  for (unsigned Node = 0, N = C.numNodes(); Node != N; ++Node)
    for (unsigned Var : DU.usesOf(Node))
      for (unsigned DefNode : RD.reachingDefNodes(Node, Var))
        DD.addEdge(DefNode, Node);
  return DD;
}
