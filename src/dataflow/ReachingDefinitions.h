//===- dataflow/ReachingDefinitions.h - Classic RD dataflow -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward may-analysis of reaching definitions over the CFG, solved
/// with bit vectors in reverse postorder. Data dependence (the paper's
/// data dependence graph, e.g. Figure 2-b) is derived from it: node U is
/// data dependent on node D when D defines a variable U uses and that
/// definition reaches U.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_DATAFLOW_REACHINGDEFINITIONS_H
#define JSLICE_DATAFLOW_REACHINGDEFINITIONS_H

#include "cfg/Cfg.h"
#include "dataflow/DefUse.h"
#include "support/BitVector.h"

#include <vector>

namespace jslice {

/// Solved reaching-definitions facts. Definition *sites* are the CFG
/// nodes with non-empty defsOf; the bit index of a site is its dense def id.
class ReachingDefinitions {
public:
  /// With a \p Guard, the fixpoint polls one checkpoint per node
  /// transfer; on exhaustion the (possibly unconverged) facts are
  /// returned — callers must treat a tripped guard as failure.
  static ReachingDefinitions compute(const Cfg &C, const DefUse &DU,
                                     ResourceGuard *Guard = nullptr);

  unsigned numDefSites() const {
    return static_cast<unsigned>(DefNode.size());
  }
  unsigned defSiteNode(unsigned DefId) const { return DefNode[DefId]; }
  unsigned defSiteVar(unsigned DefId) const { return DefVar[DefId]; }

  /// Definitions reaching the *entry* of \p Node.
  const BitVector &in(unsigned Node) const { return In[Node]; }

  /// CFG nodes whose definition of \p Var reaches the entry of \p Node —
  /// the data-dependence predecessors for a use of Var at Node, and the
  /// seeds of a (Var, loc) slicing criterion.
  std::vector<unsigned> reachingDefNodes(unsigned Node, unsigned Var) const;

private:
  std::vector<unsigned> DefNode;
  std::vector<unsigned> DefVar;
  std::vector<BitVector> In;
};

/// Builds the data dependence graph: an edge D -> U for every definition
/// D reaching a use at U. Slicing walks these edges backwards (preds).
Digraph buildDataDependence(const Cfg &C, const DefUse &DU,
                            const ReachingDefinitions &RD);

} // namespace jslice

#endif // JSLICE_DATAFLOW_REACHINGDEFINITIONS_H
