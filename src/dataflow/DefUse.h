//===- dataflow/DefUse.h - Per-node definitions and uses --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts, for every CFG node, the variables it defines and the
/// variables its own expressions use. Variable names are interned to
/// dense ids so the reaching-definitions solver can use bit vectors.
///
/// The input stream is modelled as the pseudo-variable `$input`
/// (InputVarName): every `read` defines it and uses it (reads are
/// position-dependent, so they chain), and `eof()` uses it. Without
/// this, slicing away a read would silently shift what later reads and
/// eof() observe — unsound slices.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_DATAFLOW_DEFUSE_H
#define JSLICE_DATAFLOW_DEFUSE_H

#include "cfg/Cfg.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace jslice {

/// Interned variable table plus per-node def/use sets.
class DefUse {
public:
  /// Name of the pseudo-variable modelling the input stream position.
  /// '$' cannot appear in Mini-C identifiers, so it never collides.
  static constexpr const char *InputVarName = "$input";

  static DefUse build(const Cfg &C);

  unsigned numVars() const { return static_cast<unsigned>(Names.size()); }
  const std::string &varName(unsigned VarId) const { return Names[VarId]; }

  /// Dense id of \p Name, or -1 when the program never mentions it.
  int varId(const std::string &Name) const {
    auto It = Ids.find(Name);
    return It == Ids.end() ? -1 : static_cast<int>(It->second);
  }

  /// Variables defined by \p Node (empty for most; a read defines its
  /// target and $input). Jump nodes never define anything — the root
  /// cause of the paper's problem.
  const std::vector<unsigned> &defsOf(unsigned Node) const {
    return Defs[Node];
  }

  /// Variables used by the node's own expressions, sorted.
  const std::vector<unsigned> &usesOf(unsigned Node) const {
    return Uses[Node];
  }

private:
  unsigned intern(const std::string &Name);

  std::vector<std::string> Names;
  std::unordered_map<std::string, unsigned> Ids;
  std::vector<std::vector<unsigned>> Defs;
  std::vector<std::vector<unsigned>> Uses;
};

} // namespace jslice

#endif // JSLICE_DATAFLOW_DEFUSE_H
