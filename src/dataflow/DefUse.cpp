//===- dataflow/DefUse.cpp - Per-node definitions and uses ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "dataflow/DefUse.h"

#include "lang/AstWalk.h"

#include <algorithm>

using namespace jslice;

unsigned DefUse::intern(const std::string &Name) {
  auto [It, Inserted] = Ids.emplace(Name, numVars());
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}

DefUse DefUse::build(const Cfg &C) {
  DefUse Result;
  unsigned N = C.numNodes();
  Result.Defs.resize(N);
  Result.Uses.resize(N);

  for (unsigned Node = 0; Node != N; ++Node) {
    const CfgNode &Info = C.node(Node);
    if (!Info.S && !Info.Cond)
      continue; // Entry/Exit.

    std::set<std::string> Used;
    bool UsesInput = false;

    auto ScanExpr = [&](const Expr *Root) {
      walkExprTree(Root, [&](const Expr *E) {
        if (const auto *Var = dyn_cast<VarRefExpr>(E))
          Used.insert(Var->getName());
        else if (const auto *Call = dyn_cast<CallExpr>(E))
          if (Call->getCallee() == "eof" && Call->getArgs().empty())
            UsesInput = true;
      });
    };

    // Definitions.
    if (Info.Kind == CfgNodeKind::Statement) {
      if (const auto *Assign = dyn_cast<AssignStmt>(Info.S)) {
        Result.Defs[Node].push_back(Result.intern(Assign->getTarget()));
      } else if (const auto *Read = dyn_cast<ReadStmt>(Info.S)) {
        // A read defines its target from the stream, advances the
        // stream, and depends on the stream position set by prior reads.
        Result.Defs[Node].push_back(Result.intern(Read->getTarget()));
        Result.Defs[Node].push_back(Result.intern(InputVarName));
        UsesInput = true;
      }
    }

    // Uses: the node's own expression(s). Predicate nodes own the
    // compound's condition; statement nodes own the statement's
    // expressions.
    if (Info.Kind == CfgNodeKind::Predicate) {
      if (Info.Cond)
        ScanExpr(Info.Cond);
    } else {
      forEachStmtExpr(Info.S, ScanExpr);
    }

    for (const std::string &Name : Used)
      Result.Uses[Node].push_back(Result.intern(Name));
    if (UsesInput)
      Result.Uses[Node].push_back(Result.intern(InputVarName));
    std::sort(Result.Uses[Node].begin(), Result.Uses[Node].end());
    std::sort(Result.Defs[Node].begin(), Result.Defs[Node].end());
  }
  return Result;
}
