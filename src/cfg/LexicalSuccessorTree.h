//===- cfg/LexicalSuccessorTree.h - The paper's LST -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lexical successor tree (Section 3 of the paper). The *immediate
/// lexical successor* of a statement S is the statement control would
/// pass to, when reaching S's location, if S (together with its body)
/// were deleted from the program. Representing each statement by its CFG
/// node, the parent pointers form a tree rooted at Exit. Construction is
/// purely syntax-directed.
///
/// For programs without jump statements the LST coincides with the
/// postdominator tree (the paper proves this is why conventional slicing
/// works there); a property test asserts that equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_CFG_LEXICALSUCCESSORTREE_H
#define JSLICE_CFG_LEXICALSUCCESSORTREE_H

#include "cfg/Cfg.h"

#include <vector>

namespace jslice {

/// The lexical successor tree over CFG node ids, rooted at Exit. The
/// virtual Entry node is not part of the tree.
class LexicalSuccessorTree {
public:
  /// \p Parent[n] is the immediate-lexical-successor node of n, -1 for
  /// the root (Exit) and for Entry.
  LexicalSuccessorTree(unsigned Root, std::vector<int> Parent);

  unsigned root() const { return Root; }

  /// Immediate lexical successor; -1 for Exit and Entry.
  int parent(unsigned Node) const { return ParentOf[Node]; }

  bool inTree(unsigned Node) const {
    return Node == Root || ParentOf[Node] >= 0;
  }

  const std::vector<unsigned> &children(unsigned Node) const {
    return Children[Node];
  }

  /// True when \p A is a lexical successor of \p B, i.e. an ancestor of
  /// \p B in this tree (reflexive).
  bool isLexicalSuccessorOf(unsigned A, unsigned B) const {
    if (!inTree(A) || !inTree(B))
      return false;
    return TreeIn[A] <= TreeIn[B] && TreeOut[B] <= TreeOut[A];
  }

  /// Tree preorder (children in ascending node order) — the alternative
  /// traversal order the paper permits for the Figure 7 algorithm.
  const std::vector<unsigned> &preorder() const { return Preorder; }

  unsigned numNodes() const {
    return static_cast<unsigned>(ParentOf.size());
  }

  /// The raw parent vector (what Cfg::buildAugmentedGraph consumes).
  const std::vector<int> &parents() const { return ParentOf; }

private:
  unsigned Root;
  std::vector<int> ParentOf;
  std::vector<std::vector<unsigned>> Children;
  std::vector<unsigned> Preorder;
  std::vector<unsigned> TreeIn;
  std::vector<unsigned> TreeOut;
};

/// Builds the LST of \p C syntax-directedly.
LexicalSuccessorTree buildLexicalSuccessorTree(const Cfg &C);

/// True when jump node \p JumpNode is a *structured jump* (Section 4):
/// its target statement is also its lexical successor. break, continue,
/// and return always are; a goto is iff it jumps forward to an enclosing
/// continuation.
bool isStructuredJump(const Cfg &C, const LexicalSuccessorTree &Lst,
                      unsigned JumpNode);

/// True when every jump in the program is structured (the precondition
/// of the Figure 12 and Figure 13 algorithms).
bool isStructuredProgram(const Cfg &C, const LexicalSuccessorTree &Lst);

} // namespace jslice

#endif // JSLICE_CFG_LEXICALSUCCESSORTREE_H
