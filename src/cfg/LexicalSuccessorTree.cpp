//===- cfg/LexicalSuccessorTree.cpp - The paper's LST -----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/LexicalSuccessorTree.h"

#include <algorithm>

using namespace jslice;

LexicalSuccessorTree::LexicalSuccessorTree(unsigned Root,
                                           std::vector<int> Parent)
    : Root(Root), ParentOf(std::move(Parent)) {
  unsigned N = static_cast<unsigned>(ParentOf.size());
  Children.resize(N);
  for (unsigned Node = 0; Node != N; ++Node)
    if (ParentOf[Node] >= 0)
      Children[static_cast<unsigned>(ParentOf[Node])].push_back(Node);
  for (auto &Kids : Children)
    std::sort(Kids.begin(), Kids.end());

  TreeIn.assign(N, 0);
  TreeOut.assign(N, 0);
  unsigned Clock = 0;
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  TreeIn[Root] = ++Clock;
  Preorder.push_back(Root);
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    if (NextIdx < Children[Node].size()) {
      unsigned Child = Children[Node][NextIdx++];
      TreeIn[Child] = ++Clock;
      Preorder.push_back(Child);
      Stack.emplace_back(Child, 0);
      continue;
    }
    TreeOut[Node] = ++Clock;
    Stack.pop_back();
  }
}

namespace {

/// Syntax-directed parent assignment. `LexNext` is the node control
/// falls to, at the statement's location, once the statement is deleted.
class LstBuilder {
public:
  LstBuilder(const Cfg &C, std::vector<int> &Parent)
      : C(C), Parent(Parent) {}

  void visitList(const std::vector<const Stmt *> &List, unsigned LexNext) {
    for (size_t I = 0, E = List.size(); I != E; ++I) {
      unsigned Next =
          I + 1 < E ? C.entryOf(List[I + 1]) : LexNext;
      visit(List[I], Next);
    }
  }

  void visit(const Stmt *S, unsigned LexNext) {
    switch (S->getKind()) {
    case StmtKind::Assign:
    case StmtKind::Read:
    case StmtKind::Write:
    case StmtKind::Goto:
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Return:
    case StmtKind::Empty:
      setParent(C.nodeOf(S), LexNext);
      return;

    case StmtKind::Block:
      visitList(cast<BlockStmt>(S)->getBody(), LexNext);
      return;

    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      setParent(C.nodeOf(S), LexNext);
      visit(If->getThen(), LexNext);
      if (If->hasElse())
        visit(If->getElse(), LexNext);
      return;
    }

    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      unsigned Cond = C.nodeOf(S);
      setParent(Cond, LexNext);
      visit(While->getBody(), Cond);
      return;
    }

    case StmtKind::DoWhile: {
      const auto *Do = cast<DoWhileStmt>(S);
      unsigned Cond = C.nodeOf(S);
      setParent(Cond, LexNext);
      visit(Do->getBody(), Cond);
      return;
    }

    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      unsigned Cond = C.nodeOf(S);
      setParent(Cond, LexNext);
      if (For->getInit())
        setParent(C.nodeOf(For->getInit()), Cond);
      unsigned BodyNext = Cond;
      if (For->getStep()) {
        unsigned Step = C.nodeOf(For->getStep());
        setParent(Step, Cond);
        BodyNext = Step;
      }
      visit(For->getBody(), BodyNext);
      return;
    }

    case StmtKind::Switch: {
      const auto *Switch = cast<SwitchStmt>(S);
      setParent(C.nodeOf(S), LexNext);
      // Each clause's statements fall lexically into the next clause
      // (C fall-through); the last clause falls past the switch.
      const auto &Clauses = Switch->getClauses();
      unsigned Following = LexNext;
      for (size_t I = Clauses.size(); I-- > 0;) {
        visitList(Clauses[I].Body, Following);
        if (!Clauses[I].Body.empty())
          Following = C.entryOf(Clauses[I].Body.front());
      }
      return;
    }
    }
  }

private:
  void setParent(unsigned Node, unsigned ParentNode) {
    assert(Parent[Node] == -1 && "node assigned two lexical successors");
    Parent[Node] = static_cast<int>(ParentNode);
  }

  const Cfg &C;
  std::vector<int> &Parent;
};

} // namespace

LexicalSuccessorTree jslice::buildLexicalSuccessorTree(const Cfg &C) {
  std::vector<int> Parent(C.numNodes(), -1);
  LstBuilder Builder(C, Parent);
  Builder.visitList(C.program().topLevel(), C.exit());
  return LexicalSuccessorTree(C.exit(), std::move(Parent));
}

bool jslice::isStructuredJump(const Cfg &C, const LexicalSuccessorTree &Lst,
                              unsigned JumpNode) {
  assert(C.node(JumpNode).isJump() && "not a jump node");
  std::optional<unsigned> Target = C.jumpTarget(JumpNode);
  assert(Target && "jump without a resolved target");
  return Lst.isLexicalSuccessorOf(*Target, JumpNode);
}

bool jslice::isStructuredProgram(const Cfg &C,
                                 const LexicalSuccessorTree &Lst) {
  for (unsigned Node = 0, E = C.numNodes(); Node != E; ++Node)
    if (C.node(Node).isJump() && !isStructuredJump(C, Lst, Node))
      return false;
  return true;
}
