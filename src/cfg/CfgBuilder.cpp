//===- cfg/CfgBuilder.cpp - Statement-level CFG construction ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Construction walks each statement list in reverse so that the entry
/// node of the lexical successor is already known ("continuation"
/// wiring). Goto edges are resolved in a fixup pass once every labeled
/// statement has a recorded entry node.
///
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "lang/AstWalk.h"

using namespace jslice;

namespace jslice {

/// Stateful helper that wires one Program into one Cfg.
class CfgBuilder {
public:
  CfgBuilder(const Program &Prog, Cfg &Result, ResourceGuard *Guard)
      : Prog(Prog), Result(Result), Guard(Guard) {}

  bool run(DiagList &Diags);

private:
  unsigned makeNode(CfgNodeKind Kind, const Stmt *S, const Expr *Cond) {
    if (Guard && !Guard->countNode("cfg.node"))
      GuardTripped = true;
    unsigned Id = Result.G.addNode();
    CfgNode Node;
    Node.Id = Id;
    Node.Kind = Kind;
    Node.S = S;
    Node.Cond = Cond;
    Result.Nodes.push_back(Node);
    return Id;
  }

  /// Wires \p S with fall-through continuation \p Next; returns the
  /// entry node (== Next when S contributes no nodes) and records it.
  unsigned wire(const Stmt *S, unsigned Next);
  unsigned wireList(const std::vector<const Stmt *> &List, unsigned Next);

  const Program &Prog;
  Cfg &Result;
  ResourceGuard *Guard;
  bool GuardTripped = false;

  struct LoopContext {
    unsigned BreakTarget;
    unsigned ContinueTarget;
    bool AcceptsContinue;
  };
  std::vector<LoopContext> Loops;

  std::vector<std::pair<unsigned, const Stmt *>> PendingGotos;
};

} // namespace jslice

unsigned CfgBuilder::wireList(const std::vector<const Stmt *> &List,
                              unsigned Next) {
  unsigned Entry = Next;
  for (auto It = List.rbegin(), E = List.rend(); It != E && !GuardTripped;
       ++It)
    Entry = wire(*It, Entry);
  return Entry;
}

unsigned CfgBuilder::wire(const Stmt *S, unsigned Next) {
  unsigned Entry = Next;

  // Budget exhausted: stop growing the graph. run() turns the tripped
  // guard into a diagnostic, so the half-wired Cfg never escapes.
  if (GuardTripped) {
    Result.StmtEntry[S] = Entry;
    return Entry;
  }

  switch (S->getKind()) {
  case StmtKind::Assign:
  case StmtKind::Read:
  case StmtKind::Write:
  case StmtKind::Empty: {
    unsigned Node = makeNode(CfgNodeKind::Statement, S, nullptr);
    Result.G.addEdge(Node, Next);
    Result.StmtNode[S] = Node;
    Entry = Node;
    break;
  }

  case StmtKind::Goto: {
    unsigned Node = makeNode(CfgNodeKind::Statement, S, nullptr);
    Result.StmtNode[S] = Node;
    PendingGotos.emplace_back(Node, cast<GotoStmt>(S)->getTarget());
    Entry = Node;
    break;
  }

  case StmtKind::Break: {
    assert(!Loops.empty() && "sema guarantees an enclosing breakable");
    unsigned Node = makeNode(CfgNodeKind::Statement, S, nullptr);
    unsigned Target = Loops.back().BreakTarget;
    Result.G.addEdge(Node, Target);
    Result.JumpTargets[Node] = Target;
    Result.StmtNode[S] = Node;
    Entry = Node;
    break;
  }

  case StmtKind::Continue: {
    unsigned Target = 0;
    bool Found = false;
    for (auto It = Loops.rbegin(), E = Loops.rend(); It != E; ++It) {
      if (It->AcceptsContinue) {
        Target = It->ContinueTarget;
        Found = true;
        break;
      }
    }
    assert(Found && "sema guarantees an enclosing loop");
    (void)Found;
    unsigned Node = makeNode(CfgNodeKind::Statement, S, nullptr);
    Result.G.addEdge(Node, Target);
    Result.JumpTargets[Node] = Target;
    Result.StmtNode[S] = Node;
    Entry = Node;
    break;
  }

  case StmtKind::Return: {
    unsigned Node = makeNode(CfgNodeKind::Statement, S, nullptr);
    Result.G.addEdge(Node, Result.Exit);
    Result.JumpTargets[Node] = Result.Exit;
    Result.StmtNode[S] = Node;
    Entry = Node;
    break;
  }

  case StmtKind::Block:
    Entry = wireList(cast<BlockStmt>(S)->getBody(), Next);
    break;

  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    unsigned Cond = makeNode(CfgNodeKind::Predicate, S, If->getCond());
    unsigned ThenEntry = wire(If->getThen(), Next);
    unsigned ElseEntry = If->hasElse() ? wire(If->getElse(), Next) : Next;
    Result.G.addEdge(Cond, ThenEntry);
    Result.G.addEdge(Cond, ElseEntry);
    Result.Branches[Cond] = {ThenEntry, ElseEntry};
    Result.StmtNode[S] = Cond;
    Entry = Cond;
    break;
  }

  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    unsigned Cond = makeNode(CfgNodeKind::Predicate, S, While->getCond());
    Loops.push_back({Next, Cond, /*AcceptsContinue=*/true});
    unsigned BodyEntry = wire(While->getBody(), Cond);
    Loops.pop_back();
    Result.G.addEdge(Cond, BodyEntry);
    Result.G.addEdge(Cond, Next);
    Result.Branches[Cond] = {BodyEntry, Next};
    Result.StmtNode[S] = Cond;
    Entry = Cond;
    break;
  }

  case StmtKind::DoWhile: {
    const auto *Do = cast<DoWhileStmt>(S);
    unsigned Cond = makeNode(CfgNodeKind::Predicate, S, Do->getCond());
    Loops.push_back({Next, Cond, /*AcceptsContinue=*/true});
    unsigned BodyEntry = wire(Do->getBody(), Cond);
    Loops.pop_back();
    Result.G.addEdge(Cond, BodyEntry);
    Result.G.addEdge(Cond, Next);
    Result.Branches[Cond] = {BodyEntry, Next};
    Result.StmtNode[S] = Cond;
    Entry = BodyEntry;
    break;
  }

  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    // A null Cond on the predicate node means constant-true (`for(;;)`);
    // no false edge is emitted for it.
    unsigned Cond = makeNode(CfgNodeKind::Predicate, S, For->getCond());
    unsigned StepEntry = For->getStep() ? wire(For->getStep(), Cond) : Cond;
    Loops.push_back({Next, StepEntry, /*AcceptsContinue=*/true});
    unsigned BodyEntry = wire(For->getBody(), StepEntry);
    Loops.pop_back();
    Result.G.addEdge(Cond, BodyEntry);
    if (For->getCond()) {
      Result.G.addEdge(Cond, Next);
      Result.Branches[Cond] = {BodyEntry, Next};
    } else {
      Result.Branches[Cond] = {BodyEntry, BodyEntry};
    }
    Result.StmtNode[S] = Cond;
    Entry = For->getInit() ? wire(For->getInit(), Cond) : Cond;
    break;
  }

  case StmtKind::Switch: {
    const auto *Switch = cast<SwitchStmt>(S);
    unsigned Cond = makeNode(CfgNodeKind::Predicate, S, Switch->getCond());
    Loops.push_back({Next, 0, /*AcceptsContinue=*/false});

    // Wire clauses in reverse so each knows its fall-through successor.
    const auto &Clauses = Switch->getClauses();
    std::vector<unsigned> ClauseEntry(Clauses.size());
    unsigned Following = Next;
    for (size_t I = Clauses.size(); I-- > 0;) {
      ClauseEntry[I] = wireList(Clauses[I].Body, Following);
      Following = ClauseEntry[I];
    }
    Loops.pop_back();

    SwitchTargets Targets;
    Targets.DefaultTarget = Next;
    for (size_t I = 0, E = Clauses.size(); I != E; ++I) {
      if (Clauses[I].IsDefault)
        Targets.DefaultTarget = ClauseEntry[I];
      else
        Targets.Cases.emplace_back(Clauses[I].Value, ClauseEntry[I]);
      Result.G.addEdge(Cond, ClauseEntry[I]);
    }
    Result.G.addEdge(Cond, Targets.DefaultTarget);
    Result.Switches[Cond] = std::move(Targets);
    Result.StmtNode[S] = Cond;
    Entry = Cond;
    break;
  }
  }

  Result.StmtEntry[S] = Entry;
  return Entry;
}

bool CfgBuilder::run(DiagList &Diags) {
  Result.Prog = &Prog;
  Result.Entry = makeNode(CfgNodeKind::Entry, nullptr, nullptr);
  Result.Exit = makeNode(CfgNodeKind::Exit, nullptr, nullptr);

  unsigned First = wireList(Prog.topLevel(), Result.Exit);
  Result.G.addEdge(Result.Entry, First);
  // The standard control-dependence augmentation: Entry -> Exit makes
  // every always-executed statement control dependent on Entry (the
  // paper's dummy predicate node 0).
  Result.G.addEdge(Result.Entry, Result.Exit);

  if (GuardTripped) {
    Diags.report(SourceLoc(), Guard->reason(), DiagKind::ResourceExhausted);
    return false;
  }

  // Resolve gotos now that every labeled statement has an entry node.
  for (auto [GotoNode, TargetStmt] : PendingGotos) {
    assert(TargetStmt && "sema guarantees goto resolution");
    auto It = Result.StmtEntry.find(TargetStmt);
    assert(It != Result.StmtEntry.end() && "target statement was not wired");
    Result.G.addEdge(GotoNode, It->second);
    Result.JumpTargets[GotoNode] = It->second;
  }

  // Every node must reach Exit or the postdominator machinery the
  // algorithms depend on is undefined (DESIGN.md).
  std::vector<bool> ReachesExit =
      reachableFrom(Result.G.reversed(), Result.Exit);
  for (unsigned Node = 0, E = Result.numNodes(); Node != E; ++Node) {
    if (ReachesExit[Node])
      continue;
    SourceLoc Loc =
        Result.Nodes[Node].S ? Result.Nodes[Node].S->getLoc() : SourceLoc();
    Diags.report(Loc, "statement cannot reach program exit; the paper's "
                      "postdominator-based algorithms require "
                      "exit-reachability");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Cfg member functions
//===----------------------------------------------------------------------===//

ErrorOr<Cfg> Cfg::build(const Program &Prog, ResourceGuard *Guard) {
  Cfg Result;
  DiagList Diags;
  CfgBuilder Builder(Prog, Result, Guard);
  if (!Builder.run(Diags))
    return Diags;
  return Result;
}

unsigned Cfg::nodeOf(const Stmt *S) const {
  auto It = StmtNode.find(S);
  assert(It != StmtNode.end() && "statement has no representative node");
  return It->second;
}

unsigned Cfg::entryOf(const Stmt *S) const {
  auto It = StmtEntry.find(S);
  assert(It != StmtEntry.end() && "statement was never wired");
  return It->second;
}

std::optional<unsigned> Cfg::jumpTarget(unsigned NodeId) const {
  auto It = JumpTargets.find(NodeId);
  if (It == JumpTargets.end())
    return std::nullopt;
  return It->second;
}

const BranchTargets *Cfg::branchTargets(unsigned NodeId) const {
  auto It = Branches.find(NodeId);
  return It == Branches.end() ? nullptr : &It->second;
}

const SwitchTargets *Cfg::switchTargets(unsigned NodeId) const {
  auto It = Switches.find(NodeId);
  return It == Switches.end() ? nullptr : &It->second;
}

std::string Cfg::labelOf(unsigned NodeId) const {
  const CfgNode &Node = Nodes[NodeId];
  switch (Node.Kind) {
  case CfgNodeKind::Entry:
    return "entry";
  case CfgNodeKind::Exit:
    return "exit";
  case CfgNodeKind::Statement:
  case CfgNodeKind::Predicate:
    break;
  }
  assert(Node.S && "statement node without statement");
  if (!Node.S->getLoc().isValid())
    return "n" + std::to_string(NodeId);
  return std::to_string(Node.S->getLoc().Line);
}

std::vector<unsigned> Cfg::unreachableNodes() const {
  std::vector<bool> Reachable = reachableFrom(G, Entry);
  std::vector<unsigned> Out;
  for (const CfgNode &Node : Nodes)
    if (Node.S && !Reachable[Node.Id])
      Out.push_back(Node.Id);
  return Out;
}

std::vector<unsigned> Cfg::nodesOnLine(unsigned Line) const {
  std::vector<unsigned> Out;
  for (const CfgNode &Node : Nodes)
    if (Node.S && Node.S->getLoc().Line == Line)
      Out.push_back(Node.Id);
  return Out;
}

Digraph Cfg::buildAugmentedGraph(const std::vector<int> &IlsParent) const {
  Digraph Augmented = G;
  for (const CfgNode &Node : Nodes) {
    if (!Node.isJump())
      continue;
    assert(Node.Id < IlsParent.size() && IlsParent[Node.Id] >= 0 &&
           "jump node missing from the lexical successor tree");
    Augmented.addEdge(Node.Id, static_cast<unsigned>(IlsParent[Node.Id]));
  }
  return Augmented;
}
