//===- cfg/Cfg.h - Statement-level control flowgraph ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement-level control flowgraph the paper's algorithms operate
/// on: one node per simple statement or predicate, plus virtual Entry and
/// Exit nodes. Entry has edges to the first statement and to Exit (the
/// paper's "dummy predicate node 0", which makes top-level statements
/// control dependent on Entry).
///
/// Side tables keep everything the later phases need:
///  * Stmt -> representative node (the predicate node for compounds);
///  * Stmt -> entry node (first node executed when control reaches it);
///  * per-predicate branch targets and per-switch case targets (the
///    interpreter dispatches on these, and the DOT exporter labels edges
///    from them);
///  * jump node -> target node (where the goto/break/continue/return
///    transfers to), used by the slicers and the projection interpreter.
///
/// `buildAugmentedGraph` adds the Ball–Horwitz / Choi–Ferrante edges
/// from every jump node to its immediate lexical successor; the baseline
/// slicer computes control dependence from that graph.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_CFG_CFG_H
#define JSLICE_CFG_CFG_H

#include "graph/Digraph.h"
#include "lang/Ast.h"
#include "support/Error.h"
#include "support/ResourceGuard.h"

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jslice {

/// Classifies CFG nodes.
enum class CfgNodeKind {
  Entry,     ///< Virtual start node.
  Exit,      ///< Virtual end node; jump "targets" of return statements.
  Statement, ///< Simple statement (assign/read/write/jump/empty).
  Predicate, ///< Condition of if/while/do-while/for/switch.
};

/// One flowgraph node. `S` is null for Entry/Exit. For a Predicate node,
/// `S` is the owning compound statement and `Cond` its decision
/// expression (synthesized constant-true for a `for (;;)`).
struct CfgNode {
  unsigned Id = 0;
  CfgNodeKind Kind = CfgNodeKind::Statement;
  const Stmt *S = nullptr;
  const Expr *Cond = nullptr;

  bool isJump() const { return S && S->isJump(); }
};

/// Two-way branch targets of an if/while/do-while/for predicate node.
struct BranchTargets {
  unsigned TrueTarget = 0;
  unsigned FalseTarget = 0;
};

/// Dispatch targets of a switch predicate node.
struct SwitchTargets {
  std::vector<std::pair<int64_t, unsigned>> Cases;
  unsigned DefaultTarget = 0; ///< Falls past the switch when no default.
};

/// The flowgraph plus its statement maps. Build with Cfg::build.
class Cfg {
public:
  /// Builds the flowgraph of \p Prog. Fails (with diagnostics) when some
  /// reachable statement cannot reach Exit — the paper's postdominator
  /// machinery requires exit-reachability (see DESIGN.md). With a
  /// \p Guard, every node built is charged against the budget's node
  /// dimension and exhaustion fails the build with a
  /// DiagKind::ResourceExhausted diagnostic.
  static ErrorOr<Cfg> build(const Program &Prog,
                            ResourceGuard *Guard = nullptr);

  const Program &program() const { return *Prog; }
  const Digraph &graph() const { return G; }
  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const CfgNode &node(unsigned Id) const { return Nodes[Id]; }

  /// The representative node of \p S: its own node for simple
  /// statements, the predicate node for compounds. Asserts for blocks
  /// (they have no node).
  unsigned nodeOf(const Stmt *S) const;
  bool hasNodeFor(const Stmt *S) const { return StmtNode.count(S) != 0; }

  /// The first node executed when control reaches \p S. Differs from
  /// nodeOf for do-while (body first) and for for-loops with an init
  /// clause.
  unsigned entryOf(const Stmt *S) const;

  /// For a jump node, the node its transfer lands on (Exit for return).
  std::optional<unsigned> jumpTarget(unsigned NodeId) const;

  /// Branch targets for two-way predicate nodes; null otherwise.
  const BranchTargets *branchTargets(unsigned NodeId) const;

  /// Case targets for switch predicate nodes; null otherwise.
  const SwitchTargets *switchTargets(unsigned NodeId) const;

  /// Display label: "entry", "exit", or the statement's line number.
  std::string labelOf(unsigned NodeId) const;

  /// All statement/predicate nodes whose statement starts on \p Line.
  std::vector<unsigned> nodesOnLine(unsigned Line) const;

  /// Statement/predicate nodes not reachable from Entry (dead code).
  /// The paper's model implicitly assumes there are none: an
  /// unreachable jump statement voids both the Figure 12 == Figure 7
  /// equivalence and the deletion-semantics reasoning (deleting the
  /// jump that guards a dead region resurrects the region). Analyses
  /// still run on such programs, but the property-level guarantees only
  /// hold when this list is empty (see DESIGN.md).
  std::vector<unsigned> unreachableNodes() const;

  /// The flowgraph augmented with an edge from every jump node to its
  /// immediate lexical successor \p IlsParent (node -> LST parent, as
  /// produced by buildLexicalSuccessorTree). This is the Ball–Horwitz /
  /// Choi–Ferrante construction; data dependence must still be computed
  /// from the unaugmented graph.
  Digraph buildAugmentedGraph(const std::vector<int> &IlsParent) const;

private:
  friend class CfgBuilder;

  Cfg() = default;

  const Program *Prog = nullptr;
  Digraph G;
  unsigned Entry = 0;
  unsigned Exit = 0;
  std::vector<CfgNode> Nodes;
  std::unordered_map<const Stmt *, unsigned> StmtNode;
  std::unordered_map<const Stmt *, unsigned> StmtEntry;
  std::unordered_map<unsigned, unsigned> JumpTargets;
  std::unordered_map<unsigned, BranchTargets> Branches;
  std::unordered_map<unsigned, SwitchTargets> Switches;
};

} // namespace jslice

#endif // JSLICE_CFG_CFG_H
