//===- interp/Interpreter.cpp - Projection-semantics interpreter -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

using namespace jslice;

namespace {

/// Arithmetic helpers on the two's-complement domain (wraparound is the
/// defined Mini-C semantics; signed overflow UB is avoided by computing
/// in uint64_t).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// One execution of one projection.
class Machine {
public:
  Machine(const Analysis &A, const std::set<unsigned> &Kept,
          unsigned CriterionNode, const std::vector<unsigned> &CriterionVars,
          const ExecOptions &Opts, bool TransferMode = false)
      : A(A), Kept(Kept), CriterionNode(CriterionNode),
        CriterionVars(CriterionVars), Opts(Opts), TransferMode(TransferMode),
        Values(A.defUse().numVars(), 0) {}

  ExecResult run();

private:
  int64_t eval(const Expr *E);
  int64_t callIntrinsic(const CallExpr *Call);
  void executeStatement(const Stmt *S);
  unsigned fallthroughOf(unsigned Node) const;
  unsigned nearestKeptPostdom(unsigned Node) const;
  unsigned hop(unsigned RawTarget) const;

  const Analysis &A;
  const std::set<unsigned> &Kept;
  unsigned CriterionNode;
  const std::vector<unsigned> &CriterionVars;
  const ExecOptions &Opts;
  bool TransferMode;

  std::vector<int64_t> Values;
  size_t InputPos = 0;
  ExecResult Result;
};

int64_t Machine::callIntrinsic(const CallExpr *Call) {
  if (Call->getCallee() == "eof" && Call->getArgs().empty())
    return InputPos >= Opts.Input.size() ? 1 : 0;

  // Deterministic pure function: FNV-1a over name and argument values,
  // folded into [-100, 100].
  uint64_t Hash = 1469598103934665603ull;
  auto Mix = [&Hash](uint64_t Datum) {
    Hash = (Hash ^ Datum) * 1099511628211ull;
  };
  for (char C : Call->getCallee())
    Mix(static_cast<unsigned char>(C));
  for (const Expr *Arg : Call->getArgs())
    Mix(static_cast<uint64_t>(eval(Arg)));
  return static_cast<int64_t>(Hash % 201) - 100;
}

int64_t Machine::eval(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::IntLit:
    return cast<IntLitExpr>(E)->getValue();
  case ExprKind::VarRef: {
    int Var = A.defUse().varId(cast<VarRefExpr>(E)->getName());
    assert(Var >= 0 && "variable not interned");
    return Values[static_cast<unsigned>(Var)];
  }
  case ExprKind::Unary: {
    const auto *Un = cast<UnaryExpr>(E);
    int64_t V = eval(Un->getOperand());
    return Un->getOp() == UnaryOp::Neg ? wrapSub(0, V) : (V == 0 ? 1 : 0);
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    int64_t L = eval(Bin->getLHS());
    int64_t R = eval(Bin->getRHS());
    switch (Bin->getOp()) {
    case BinaryOp::Add:
      return wrapAdd(L, R);
    case BinaryOp::Sub:
      return wrapSub(L, R);
    case BinaryOp::Mul:
      return wrapMul(L, R);
    case BinaryOp::Div:
      return R == 0 ? 0 : L / R;
    case BinaryOp::Rem:
      return R == 0 ? 0 : L % R;
    case BinaryOp::Lt:
      return L < R;
    case BinaryOp::Le:
      return L <= R;
    case BinaryOp::Gt:
      return L > R;
    case BinaryOp::Ge:
      return L >= R;
    case BinaryOp::Eq:
      return L == R;
    case BinaryOp::Ne:
      return L != R;
    case BinaryOp::And:
      return L != 0 && R != 0;
    case BinaryOp::Or:
      return L != 0 || R != 0;
    }
    return 0;
  }
  case ExprKind::Call:
    return callIntrinsic(cast<CallExpr>(E));
  }
  return 0;
}

void Machine::executeStatement(const Stmt *S) {
  switch (S->getKind()) {
  case StmtKind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    int Var = A.defUse().varId(Assign->getTarget());
    assert(Var >= 0 && "assignment target not interned");
    Values[static_cast<unsigned>(Var)] = eval(Assign->getValue());
    return;
  }
  case StmtKind::Read: {
    const auto *Read = cast<ReadStmt>(S);
    int Var = A.defUse().varId(Read->getTarget());
    assert(Var >= 0 && "read target not interned");
    int64_t V = InputPos < Opts.Input.size() ? Opts.Input[InputPos] : 0;
    ++InputPos;
    Values[static_cast<unsigned>(Var)] = V;
    return;
  }
  case StmtKind::Write:
    Result.Output.push_back(eval(cast<WriteStmt>(S)->getValue()));
    return;
  case StmtKind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->hasValue())
      Result.Output.push_back(eval(Ret->getValue()));
    return;
  }
  default:
    return; // Empty statements and jumps have no data effect.
  }
}

unsigned Machine::fallthroughOf(unsigned Node) const {
  const auto &Succs = A.cfg().graph().succs(Node);
  assert(Succs.size() == 1 && "fall-through of a branching node");
  return Succs.front();
}

unsigned Machine::nearestKeptPostdom(unsigned Node) const {
  unsigned Cur = Node;
  while (Cur != A.cfg().exit() && !Kept.count(Cur)) {
    int Up = A.pdt().idom(Cur);
    assert(Up >= 0 && "PDT walk escaped the tree");
    Cur = static_cast<unsigned>(Up);
  }
  return Cur;
}

unsigned Machine::hop(unsigned RawTarget) const {
  // Transfer mode implements the synthesized jumps: land directly on
  // the raw target's nearest kept postdominator.
  return TransferMode ? nearestKeptPostdom(RawTarget) : RawTarget;
}

ExecResult Machine::run() {
  const Cfg &C = A.cfg();
  unsigned Cur = C.entry();

  while (Cur != C.exit()) {
    if (Result.Steps >= Opts.MaxSteps)
      return Result; // Completed stays false.
    if (Opts.Guard && !Opts.Guard->checkpoint("interp.step")) {
      Result.ResourceExhausted = true;
      return Result; // Completed stays false.
    }
    ++Result.Steps;

    // Deletion semantics: control reaching a deleted node slides to its
    // immediate lexical successor. (Transfer mode never lands on a
    // deleted node: hop() routes around them.)
    if (!TransferMode && Cur != C.entry() && !Kept.count(Cur)) {
      int Parent = A.lst().parent(Cur);
      assert(Parent >= 0 && "deleted node without a lexical successor");
      Cur = static_cast<unsigned>(Parent);
      continue;
    }

    const CfgNode &Node = C.node(Cur);

    if (Cur == CriterionNode)
      for (unsigned Var : CriterionVars)
        Result.CriterionValues.push_back(Values[Var]);

    switch (Node.Kind) {
    case CfgNodeKind::Entry: {
      // Entry's successors are the first statement and Exit; take the
      // program body (or Exit for an empty program).
      unsigned Next = C.exit();
      for (unsigned Succ : C.graph().succs(Cur))
        if (Succ != C.exit())
          Next = Succ;
      Cur = hop(Next);
      break;
    }
    case CfgNodeKind::Exit:
      assert(false && "exit handled by the loop condition");
      return Result;

    case CfgNodeKind::Statement: {
      if (Node.isJump()) {
        assert(!TransferMode && "synthesized slices keep no jump nodes");
        // A value-returning return emits its value before transferring.
        executeStatement(Node.S);
        std::optional<unsigned> Target = C.jumpTarget(Cur);
        assert(Target && "executing an unresolved jump");
        if (isa<GotoStmt>(Node.S) && !Kept.count(*Target) &&
            *Target != C.exit()) {
          // The goto's label was re-associated with the target's
          // nearest kept postdominator.
          Cur = nearestKeptPostdom(*Target);
        } else {
          Cur = *Target;
        }
        break;
      }
      executeStatement(Node.S);
      Cur = hop(fallthroughOf(Cur));
      break;
    }

    case CfgNodeKind::Predicate: {
      if (const SwitchTargets *Switch = C.switchTargets(Cur)) {
        int64_t V = eval(Node.Cond);
        unsigned Next = Switch->DefaultTarget;
        for (auto [Value, Target] : Switch->Cases) {
          if (Value == V) {
            Next = Target;
            break;
          }
        }
        Cur = hop(Next);
        break;
      }
      const BranchTargets *Branch = C.branchTargets(Cur);
      assert(Branch && "predicate without branch targets");
      int64_t V = Node.Cond ? eval(Node.Cond) : 1;
      Cur = hop(V != 0 ? Branch->TrueTarget : Branch->FalseTarget);
      break;
    }
    }
  }

  Result.Completed = true;
  return Result;
}

} // namespace

ExecResult jslice::runProjection(const Analysis &A,
                                 const std::set<unsigned> &Kept,
                                 unsigned CriterionNode,
                                 const std::vector<unsigned> &CriterionVars,
                                 const ExecOptions &Opts) {
  Machine M(A, Kept, CriterionNode, CriterionVars, Opts);
  return M.run();
}

ExecResult jslice::runTransferProjection(
    const Analysis &A, const std::set<unsigned> &Kept, unsigned CriterionNode,
    const std::vector<unsigned> &CriterionVars, const ExecOptions &Opts) {
  Machine M(A, Kept, CriterionNode, CriterionVars, Opts,
            /*TransferMode=*/true);
  return M.run();
}

ExecResult jslice::runOriginal(const Analysis &A, unsigned CriterionNode,
                               const std::vector<unsigned> &CriterionVars,
                               const ExecOptions &Opts) {
  std::set<unsigned> All;
  for (unsigned Node = 0, E = A.cfg().numNodes(); Node != E; ++Node)
    All.insert(Node);
  return runProjection(A, All, CriterionNode, CriterionVars, Opts);
}
