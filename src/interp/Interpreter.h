//===- interp/Interpreter.h - Projection-semantics interpreter ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Mini-C program — or any *projection* of it onto a CFG node
/// subset — with the paper's deletion semantics:
///
///  * control reaching a deleted node falls to the node's immediate
///    lexical successor (that is precisely what deleting the statement
///    from the text does);
///  * an executed goto whose target was deleted lands on the target's
///    nearest postdominator in the kept set (the paper's label
///    re-association rule, Figure 7's final step);
///  * a break/continue to a deleted target lands on the target and
///    falls lexically from there (what executing the printed slice
///    does).
///
/// Running the full node set is ordinary execution. Property tests use
/// this to check Weiser's criterion behaviourally: the sequence of
/// criterion-variable values observed at the criterion line must be
/// identical for the original program and for a correct slice.
///
/// Determinism: variables start at 0; `read` past the end of input
/// yields 0; `eof()` reports input exhaustion; division/remainder by
/// zero yield 0; every other intrinsic call is a deterministic hash of
/// its name and argument values, reduced to [-100, 100].
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_INTERP_INTERPRETER_H
#define JSLICE_INTERP_INTERPRETER_H

#include "slicer/Analysis.h"

#include <cstdint>
#include <set>
#include <vector>

namespace jslice {

/// Inputs and resource limits for one execution.
struct ExecOptions {
  std::vector<int64_t> Input;
  uint64_t MaxSteps = 200000;

  /// Optional pipeline guard (usually Analysis::guard()): each machine
  /// step polls one checkpoint, so executions share the analysis budget
  /// and honour its deadline.
  ResourceGuard *Guard = nullptr;
};

/// Observations from one execution.
struct ExecResult {
  /// False when the step limit was hit (potential non-termination).
  bool Completed = false;

  /// True when the run stopped because ExecOptions::Guard tripped
  /// (Completed stays false then).
  bool ResourceExhausted = false;
  uint64_t Steps = 0;

  /// Values written (by write and value-returning return), in order.
  std::vector<int64_t> Output;

  /// For each visit of the criterion node, the values of the criterion
  /// variables sampled just before the node executes (flattened,
  /// VarIds.size() entries per visit).
  std::vector<int64_t> CriterionValues;
};

/// Executes the projection of \p A's program onto \p Kept.
/// \p CriterionNode / \p CriterionVars select what CriterionValues
/// samples (pass the resolved criterion; CriterionNode must be in
/// \p Kept or sampling never triggers).
ExecResult runProjection(const Analysis &A, const std::set<unsigned> &Kept,
                         unsigned CriterionNode,
                         const std::vector<unsigned> &CriterionVars,
                         const ExecOptions &Opts);

/// Executes the original program (every node kept).
ExecResult runOriginal(const Analysis &A, unsigned CriterionNode,
                       const std::vector<unsigned> &CriterionVars,
                       const ExecOptions &Opts);

/// Executes a *synthesized* slice (slicer/ChoiFerranteSynthesis.h):
/// control never visits a deleted node — every raw transfer is
/// redirected to the target's nearest kept postdominator, the semantics
/// of the synthesized jumps. \p Kept must not contain jump nodes.
ExecResult runTransferProjection(const Analysis &A,
                                 const std::set<unsigned> &Kept,
                                 unsigned CriterionNode,
                                 const std::vector<unsigned> &CriterionVars,
                                 const ExecOptions &Opts);

} // namespace jslice

#endif // JSLICE_INTERP_INTERPRETER_H
