//===- service/AnalysisCache.cpp - Cross-request analysis cache ------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisCache.h"

#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"

#include <cstdio>

using namespace jslice;

//===----------------------------------------------------------------------===//
// Keys and costs
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a, 64-bit: deterministic across processes and builds (the
/// journal and quarantine records outlive one server), unlike
/// std::hash.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hashKey(const std::string &Material) {
  char Buf[16 + 1 + 20 + 1];
  std::snprintf(Buf, sizeof(Buf), "%016llx-%llu",
                static_cast<unsigned long long>(fnv1a(Material)),
                static_cast<unsigned long long>(Material.size()));
  return Buf;
}

} // namespace

std::string jslice::rawProgramKey(const std::string &Source) {
  return hashKey(Source);
}

std::optional<std::string>
jslice::canonicalProgramKey(const std::string &Source, ResourceGuard &G) {
  if (!G.checkpoint("cache.key"))
    return std::nullopt;
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source, G);
  if (!Prog || G.exhausted())
    return std::nullopt;
  PrintOptions P;
  // Line numbers are part of the identity: criteria are (line, vars)
  // and responses are line sets, so sources whose statements sit on
  // different lines must never share an artifact.
  P.ShowLineNumbers = true;
  return hashKey(printProgram(**Prog, P));
}

uint64_t jslice::estimateArtifactCost(const AnalysisArtifact &Art,
                                      const std::string &Source) {
  uint64_t Nodes = Art.A.cfg().numNodes();
  uint64_t Cost = Source.size();
  // AST + CFG + trees + def/use + PDG adjacency, per node (measured
  // order of magnitude on generator output; precision matters less
  // than monotonicity here).
  Cost += Nodes * 256;
  // The closure bitsets dominate for dependence-dense programs:
  // numSccs bitsets of numNodes bits each.
  const DependenceClosure &C = Art.BS.closures();
  Cost += static_cast<uint64_t>(C.numSccs()) * ((Nodes + 7) / 8);
  return Cost;
}

//===----------------------------------------------------------------------===//
// CacheStats
//===----------------------------------------------------------------------===//

JsonValue CacheStats::toJson() const {
  JsonValue Out = JsonValue::object();
  Out.set("hits", Hits);
  Out.set("misses", Misses);
  Out.set("coalesced", Coalesced);
  Out.set("coalesce_timeouts", CoalesceTimeouts);
  Out.set("promotions", Promotions);
  Out.set("inserts", Inserts);
  Out.set("evictions", Evictions);
  Out.set("watermark_evictions", WatermarkEvictions);
  Out.set("build_failures", BuildFailures);
  Out.set("poisoned", Poisoned);
  Out.set("audits", Audits);
  Out.set("audit_mismatches", AuditMismatches);
  Out.set("entries", Entries);
  Out.set("bytes", Bytes);
  return Out;
}

void CacheStats::add(const CacheStats &O) {
  Hits += O.Hits;
  Misses += O.Misses;
  Coalesced += O.Coalesced;
  CoalesceTimeouts += O.CoalesceTimeouts;
  Promotions += O.Promotions;
  Inserts += O.Inserts;
  Evictions += O.Evictions;
  WatermarkEvictions += O.WatermarkEvictions;
  BuildFailures += O.BuildFailures;
  Poisoned += O.Poisoned;
  Audits += O.Audits;
  AuditMismatches += O.AuditMismatches;
  Entries += O.Entries;
  Bytes += O.Bytes;
}

std::optional<CacheStats> CacheStats::fromJson(const JsonValue &V) {
  if (!V.isObject())
    return std::nullopt;
  CacheStats S;
  auto Read = [&](const char *Key, uint64_t &Out) {
    if (const JsonValue *F = V.find(Key))
      if (F->isNumber() && F->asInt() >= 0)
        Out = static_cast<uint64_t>(F->asInt());
  };
  Read("hits", S.Hits);
  Read("misses", S.Misses);
  Read("coalesced", S.Coalesced);
  Read("coalesce_timeouts", S.CoalesceTimeouts);
  Read("promotions", S.Promotions);
  Read("inserts", S.Inserts);
  Read("evictions", S.Evictions);
  Read("watermark_evictions", S.WatermarkEvictions);
  Read("build_failures", S.BuildFailures);
  Read("poisoned", S.Poisoned);
  Read("audits", S.Audits);
  Read("audit_mismatches", S.AuditMismatches);
  Read("entries", S.Entries);
  Read("bytes", S.Bytes);
  return S;
}

//===----------------------------------------------------------------------===//
// AnalysisCache
//===----------------------------------------------------------------------===//

AnalysisCache::AnalysisCache(const CacheOptions &Opts)
    : Opts(Opts), AuditRng(Opts.AuditSeed ? Opts.AuditSeed : 1) {
  if (this->Opts.MaxEntries == 0)
    this->Opts.MaxEntries = 1;
  if (this->Opts.MaxBuildFailures == 0)
    this->Opts.MaxBuildFailures = 1;
}

AnalysisCache::LookupResult
AnalysisCache::lookup(const std::string &Key,
                      std::chrono::steady_clock::time_point Deadline) {
  std::unique_lock<std::mutex> Lock(M);
  ++LookupSeq;
  sweepStaleFailuresLocked();

  bool CountedWait = false;
  for (;;) {
    auto It = Slots.find(Key);
    if (It == Slots.end()) {
      Slots[Key].St = State::Building;
      ++Counters.Misses;
      return {Outcome::MustBuild, nullptr, false};
    }
    Slot &S = It->second;
    switch (S.St) {
    case State::Quarantined:
      ++Counters.Poisoned;
      return {Outcome::Quarantined, nullptr, false};
    case State::Ready: {
      Lru.splice(Lru.begin(), Lru, S.LruIt);
      ++Counters.Hits;
      bool Audit = false;
      if (Opts.AuditEvery) {
        // xorshift64: cheap, seeded, deterministic per construction.
        AuditRng ^= AuditRng << 13;
        AuditRng ^= AuditRng >> 7;
        AuditRng ^= AuditRng << 17;
        Audit = (AuditRng % Opts.AuditEvery) == 0;
        if (Audit)
          ++Counters.Audits;
      }
      return {Outcome::Hit, S.Art, Audit};
    }
    case State::Failed:
      if (LookupSeq >= S.RetryAtLookup) {
        S.St = State::Building;
        ++Counters.Misses;
        return {Outcome::MustBuild, nullptr, false};
      }
      ++Counters.Misses;
      return {Outcome::Bypass, nullptr, false};
    case State::Building: {
      if (S.NeedLeader) {
        // The previous leader failed; this caller rebuilds.
        S.NeedLeader = false;
        ++Counters.Promotions;
        return {Outcome::MustBuild, nullptr, false};
      }
      if (!CountedWait) {
        CountedWait = true;
        ++Counters.Coalesced;
      }
      ++S.Waiters;
      std::cv_status W = CV.wait_until(Lock, Deadline);
      // The slot may have been erased or replaced while we slept;
      // re-resolve by key before touching it.
      auto It2 = Slots.find(Key);
      if (It2 != Slots.end()) {
        Slot &S2 = It2->second;
        if (S2.Waiters)
          --S2.Waiters;
        if (W == std::cv_status::timeout) {
          // Leaving a leaderless slot with no other waiters would
          // wedge the key: convert it to an immediately-retryable
          // failure for the next lookup.
          if (S2.St == State::Building && S2.NeedLeader &&
              S2.Waiters == 0) {
            S2.NeedLeader = false;
            S2.St = State::Failed;
            S2.RetryAtLookup = LookupSeq;
          }
          ++Counters.CoalesceTimeouts;
          ++Counters.Misses;
          return {Outcome::Bypass, nullptr, false};
        }
      } else if (W == std::cv_status::timeout) {
        ++Counters.CoalesceTimeouts;
        ++Counters.Misses;
        return {Outcome::Bypass, nullptr, false};
      }
      continue; // Re-examine the (re-found) slot.
    }
    }
  }
}

void AnalysisCache::publish(const std::string &Key,
                            std::shared_ptr<const AnalysisArtifact> Art) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Slots.find(Key);
  if (It == Slots.end())
    It = Slots.emplace(Key, Slot()).first;
  Slot &S = It->second;
  if (S.St == State::Quarantined)
    return; // Quarantine outranks a late publish.
  if (S.St == State::Ready)
    evictSlotLocked(It, /*Watermark=*/false); // Replace (re-find below).
  It = Slots.find(Key);
  if (It == Slots.end())
    It = Slots.emplace(Key, Slot()).first;
  Slot &S2 = It->second;
  S2.St = State::Ready;
  S2.Art = std::move(Art);
  S2.Failures = 0;
  S2.NeedLeader = false;
  Lru.push_front(Key);
  S2.LruIt = Lru.begin();
  Bytes_ += S2.Art->CostBytes;
  ++Counters.Inserts;

  // Capacity eviction: never the entry just published (a single
  // oversized artifact stays until the next publish displaces it).
  while ((Bytes_ > Opts.MaxBytes ||
          Lru.size() > Opts.MaxEntries) &&
         Lru.size() > 1)
    evictSlotLocked(Slots.find(Lru.back()), /*Watermark=*/false);
  CV.notify_all();
}

void AnalysisCache::buildFailed(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Slots.find(Key);
  if (It == Slots.end() || It->second.St != State::Building)
    return;
  Slot &S = It->second;
  ++Counters.BuildFailures;
  ++S.Failures;
  if (S.Failures >= Opts.MaxBuildFailures) {
    // Repeated failures: back the key off so a hot program with a
    // starved budget degrades to cache-less serves, not a build loop.
    S.St = State::Failed;
    S.NeedLeader = false;
    S.RetryAtLookup = LookupSeq + Opts.FailureBackoffLookups;
  } else if (S.Waiters > 0) {
    S.NeedLeader = true; // Exactly one waiter claims this.
  } else {
    S.St = State::Failed;
    S.RetryAtLookup = LookupSeq; // Retry allowed immediately.
  }
  CV.notify_all();
}

void AnalysisCache::quarantine(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Slots.find(Key);
  if (It == Slots.end())
    It = Slots.emplace(Key, Slot()).first;
  Slot &S = It->second;
  if (S.St == State::Ready) {
    Bytes_ -= S.Art->CostBytes;
    Lru.erase(S.LruIt);
    S.Art.reset();
  }
  S.St = State::Quarantined;
  S.NeedLeader = false;
  CV.notify_all();
}

void AnalysisCache::invalidate(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Slots.find(Key);
  if (It != Slots.end() && It->second.St == State::Ready)
    evictSlotLocked(It, /*Watermark=*/false);
}

void AnalysisCache::auditMismatch(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  ++Counters.AuditMismatches;
  auto It = Slots.find(Key);
  if (It != Slots.end() && It->second.St == State::Ready)
    evictSlotLocked(It, /*Watermark=*/false);
}

uint64_t AnalysisCache::evictToward(uint64_t TargetBytes) {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Evicted = 0;
  while (Bytes_ > TargetBytes && !Lru.empty()) {
    evictSlotLocked(Slots.find(Lru.back()), /*Watermark=*/true);
    ++Evicted;
  }
  return Evicted;
}

uint64_t AnalysisCache::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes_;
}

std::optional<std::string>
AnalysisCache::canonicalKeyFor(const std::string &RawKey) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = KeyMemo.find(RawKey);
  if (It == KeyMemo.end())
    return std::nullopt;
  return It->second;
}

void AnalysisCache::rememberCanonicalKey(const std::string &RawKey,
                                         const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  // A full reset is fine here: the memo is a latency optimization, and
  // re-canonicalizing one request per distinct program after a clear
  // is exactly the miss cost the cache already charges.
  if (KeyMemo.size() >= 4 * static_cast<size_t>(Opts.MaxEntries) + 64)
    KeyMemo.clear();
  KeyMemo.emplace(RawKey, Key);
}

CacheStats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  CacheStats S = Counters;
  S.Entries = Lru.size();
  S.Bytes = Bytes_;
  return S;
}

void AnalysisCache::evictSlotLocked(std::map<std::string, Slot>::iterator It,
                                    bool Watermark) {
  if (It == Slots.end() || It->second.St != State::Ready)
    return;
  Bytes_ -= It->second.Art->CostBytes;
  Lru.erase(It->second.LruIt);
  Slots.erase(It);
  ++Counters.Evictions;
  if (Watermark)
    ++Counters.WatermarkEvictions;
}

/// Failed slots are bookkeeping, not artifacts, but an adversary
/// cycling unique unparseable-budget programs could still grow the map
/// without bound; drop retryable ones once the map outgrows the LRU by
/// a comfortable margin. Quarantined slots are permanent by contract.
void AnalysisCache::sweepStaleFailuresLocked() {
  if (Slots.size() <= 2 * static_cast<size_t>(Opts.MaxEntries) + 16)
    return;
  for (auto It = Slots.begin(); It != Slots.end();) {
    if (It->second.St == State::Failed && LookupSeq >= It->second.RetryAtLookup)
      It = Slots.erase(It);
    else
      ++It;
  }
}
