//===- service/SandboxWorker.h - Sandbox worker request loop ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What one sandbox worker does, and the one function both isolation
/// modes share. executeSliceRequest() is the full per-request slicing
/// path — budget assembly, the precision-degradation ladder, the
/// attempts report — exactly as the threaded server has always run it;
/// Server calls it in-process in thread mode, and sandboxWorkerMain()
/// calls it inside a forked child in process mode, so the two modes
/// cannot drift apart: a request is served bit-identically either way,
/// the only difference being which process the pointer-chasing happens
/// in.
///
/// The worker loop itself is deliberately dumb: read one framed
/// request (service/Ipc.h), execute, write one framed response, loop
/// until EOF. No state survives a request, so a worker that crashes
/// can be replaced by a fresh fork with nothing to reconstruct — the
/// supervisor's whole recovery story is "respawn and move on".
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_SANDBOXWORKER_H
#define JSLICE_SERVICE_SANDBOXWORKER_H

#include "service/AnalysisCache.h"
#include "service/Ladder.h"
#include "service/Request.h"

#include <atomic>

namespace jslice {

/// The per-request execution configuration both isolation modes share.
struct ExecConfig {
  /// Defaults; a request's budget_ms / max_steps override dimensions.
  Budget DefaultBudget;

  /// Ladder behaviour (rung-1 budget inside is rebuilt per request).
  LadderOptions Ladder;

  /// Analysis-cache knobs. Thread mode shares one instance across the
  /// pool (Server owns it); process mode builds one per worker from
  /// this config inside sandboxWorkerMain.
  CacheOptions Cache;
};

/// Runs one slice request through the degradation ladder and renders
/// the response (status, served tier, lines, attempts; LatencyMs is
/// left for the caller, who owns the clock that matters to it).
/// \p Cancel, when non-null, is polled by the guard; \p RungTrips,
/// when non-null, receives how many ladder rungs tripped a budget.
///
/// \p Cache, when non-null and enabled, short-circuits the pipeline:
/// the canonical program key is resolved, a ready artifact serves the
/// slice under the request's own budget (FromCache, optionally
/// Audited), a quarantined key is refused as Poisoned, and a miss
/// makes this request the single-flight build leader — it runs the
/// ladder as usual and publishes the serving rung's analysis (or
/// reports buildFailed, promoting one waiting follower). Every cache
/// deviation — unparseable program, tripped guard, invalid closure,
/// coalesce timeout — falls back to the plain ladder, so responses
/// differ from the cache-less path only by the `cached`/`audited`
/// markers, never by content.
ServiceResponse executeSliceRequest(const ServiceRequest &R,
                                    const ExecConfig &Cfg,
                                    const std::atomic<bool> *Cancel,
                                    uint64_t *RungTrips,
                                    AnalysisCache *Cache = nullptr);

/// The sandbox child's main loop: framed requests in on \p InFd,
/// framed responses out on \p OutFd, until EOF on \p InFd. Returns the
/// child's exit code (0 on clean EOF shutdown). The caller must leave
/// the process via _exit() — the child shares the parent's stdio
/// buffers and must not flush them on the way out.
int sandboxWorkerMain(int InFd, int OutFd, const ExecConfig &Cfg);

} // namespace jslice

#endif // JSLICE_SERVICE_SANDBOXWORKER_H
