//===- service/JournalIo.cpp - Injectable journal I/O seam -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/JournalIo.h"

#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define JSLICE_HAVE_FSYNC 1
#endif

using namespace jslice;

std::FILE *JournalIo::open(const std::string &Path, const char *Mode) {
  return std::fopen(Path.c_str(), Mode);
}

size_t JournalIo::write(std::FILE *F, const char *Data, size_t N) {
  return std::fwrite(Data, 1, N, F);
}

bool JournalIo::flush(std::FILE *F) { return std::fflush(F) == 0; }

bool JournalIo::sync(std::FILE *F) {
#ifdef JSLICE_HAVE_FSYNC
  return ::fsync(fileno(F)) == 0;
#else
  (void)F;
  return true;
#endif
}

void JournalIo::close(std::FILE *F) {
  if (F)
    std::fclose(F);
}

bool JournalIo::rename(const std::string &From, const std::string &To) {
  std::error_code Ec;
  std::filesystem::rename(From, To, Ec);
  return !Ec;
}

bool JournalIo::syncDir(const std::string &Path) {
#ifdef JSLICE_HAVE_FSYNC
  std::filesystem::path Dir = std::filesystem::path(Path).parent_path();
  if (Dir.empty())
    Dir = ".";
  int Fd = ::open(Dir.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
#else
  (void)Path;
  return true;
#endif
}

bool JournalIo::remove(const std::string &Path) {
  std::error_code Ec;
  std::filesystem::remove(Path, Ec);
  return !Ec;
}

bool JournalIo::truncate(const std::string &Path, uint64_t Size) {
  std::error_code Ec;
  std::filesystem::resize_file(Path, Size, Ec);
  return !Ec;
}

JournalIo &JournalIo::system() {
  static JournalIo Io;
  return Io;
}

const char *jslice::journalFaultName(JournalFault F) {
  switch (F) {
  case JournalFault::None:
    return "none";
  case JournalFault::ShortWrite:
    return "short-write";
  case JournalFault::WriteEio:
    return "write-eio";
  case JournalFault::WriteEnospc:
    return "write-enospc";
  case JournalFault::FlushFail:
    return "flush-fail";
  case JournalFault::FsyncFail:
    return "fsync-fail";
  case JournalFault::CrashBeforeRename:
    return "crash-before-rename";
  case JournalFault::CrashAfterRename:
    return "crash-after-rename";
  }
  return "none";
}

void FaultyJournalIo::arm(JournalFault F, uint64_t Ordinal) {
  resetCounts();
  Every.store(false);
  FailAt.store(Ordinal);
  Armed.store(static_cast<int>(F));
}

void FaultyJournalIo::armEvery(JournalFault F, uint64_t N) {
  resetCounts();
  Every.store(true);
  FailAt.store(N ? N : 1);
  Armed.store(static_cast<int>(F));
}

void FaultyJournalIo::disarm() {
  Armed.store(static_cast<int>(JournalFault::None));
  Crashed.store(false);
}

void FaultyJournalIo::resetCounts() {
  Injected.store(0);
  Writes.store(0);
  Flushes.store(0);
  Syncs.store(0);
  Renames.store(0);
}

namespace {

/// Which observation counter an operation of kind \p F charges.
std::atomic<uint64_t> *counterFor(JournalFault F,
                                  std::atomic<uint64_t> &Writes,
                                  std::atomic<uint64_t> &Flushes,
                                  std::atomic<uint64_t> &Syncs,
                                  std::atomic<uint64_t> &Renames) {
  switch (F) {
  case JournalFault::ShortWrite:
  case JournalFault::WriteEio:
  case JournalFault::WriteEnospc:
    return &Writes;
  case JournalFault::FlushFail:
    return &Flushes;
  case JournalFault::FsyncFail:
    return &Syncs;
  case JournalFault::CrashBeforeRename:
  case JournalFault::CrashAfterRename:
    return &Renames;
  case JournalFault::None:
    break;
  }
  return nullptr;
}

} // namespace

uint64_t FaultyJournalIo::observed(JournalFault F) const {
  auto *C = counterFor(F, const_cast<std::atomic<uint64_t> &>(Writes),
                       const_cast<std::atomic<uint64_t> &>(Flushes),
                       const_cast<std::atomic<uint64_t> &>(Syncs),
                       const_cast<std::atomic<uint64_t> &>(Renames));
  return C ? C->load() : 0;
}

bool FaultyJournalIo::due(JournalFault F) {
  auto *C = counterFor(F, Writes, Flushes, Syncs, Renames);
  if (!C)
    return false;
  uint64_t N = C->fetch_add(1) + 1;
  if (Armed.load() != static_cast<int>(F))
    return false;
  uint64_t At = FailAt.load();
  if (!At)
    return false;
  bool Hit = Every.load() ? (N % At == 0) : (N == At);
  if (Hit)
    Injected.fetch_add(1);
  return Hit;
}

std::FILE *FaultyJournalIo::open(const std::string &Path, const char *Mode) {
  if (Crashed.load())
    return nullptr;
  return JournalIo::open(Path, Mode);
}

size_t FaultyJournalIo::write(std::FILE *F, const char *Data, size_t N) {
  if (Crashed.load())
    return 0;
  JournalFault Kind = static_cast<JournalFault>(Armed.load());
  bool IsWriteFault = Kind == JournalFault::ShortWrite ||
                      Kind == JournalFault::WriteEio ||
                      Kind == JournalFault::WriteEnospc;
  // Charge the write-ops counter exactly once whichever write fault
  // (if any) is armed; the three kinds share one ordinal space.
  if (due(IsWriteFault ? Kind : JournalFault::WriteEio)) {
    if (Kind == JournalFault::ShortWrite && N > 1) {
      // A torn write: a prefix reaches the file (and, via the caller's
      // flush, possibly the disk) but the record is short.
      size_t Partial = N / 2;
      JournalIo::write(F, Data, Partial);
      return Partial;
    }
    return 0; // EIO / ENOSPC: nothing accepted.
  }
  return JournalIo::write(F, Data, N);
}

bool FaultyJournalIo::flush(std::FILE *F) {
  if (Crashed.load())
    return false;
  if (due(JournalFault::FlushFail))
    return false;
  return JournalIo::flush(F);
}

bool FaultyJournalIo::sync(std::FILE *F) {
  if (Crashed.load())
    return false;
  if (due(JournalFault::FsyncFail))
    return false;
  return JournalIo::sync(F);
}

bool FaultyJournalIo::rename(const std::string &From, const std::string &To) {
  if (Crashed.load())
    return false;
  JournalFault Kind = static_cast<JournalFault>(Armed.load());
  bool Before = Kind == JournalFault::CrashBeforeRename;
  if (due(Before ? Kind : JournalFault::CrashAfterRename)) {
    if (Before) {
      Crashed.store(true); // Temp written, rename never happened.
      return false;
    }
    JournalIo::rename(From, To); // The rename lands on disk...
    Crashed.store(true);         // ...then the process dies.
    return false;
  }
  return JournalIo::rename(From, To);
}

bool FaultyJournalIo::syncDir(const std::string &Path) {
  if (Crashed.load())
    return false;
  return JournalIo::syncDir(Path);
}

bool FaultyJournalIo::remove(const std::string &Path) {
  if (Crashed.load())
    return false;
  return JournalIo::remove(Path);
}

bool FaultyJournalIo::truncate(const std::string &Path, uint64_t Size) {
  if (Crashed.load())
    return false;
  return JournalIo::truncate(Path, Size);
}
