//===- service/Ipc.cpp - Length-prefixed pipe framing ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Ipc.h"

#include "support/Pipe.h"

#include <chrono>
#include <cstring>

using namespace jslice;

bool jslice::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFramePayload)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {
      static_cast<unsigned char>(Len & 0xFF),
      static_cast<unsigned char>((Len >> 8) & 0xFF),
      static_cast<unsigned char>((Len >> 16) & 0xFF),
      static_cast<unsigned char>((Len >> 24) & 0xFF),
  };
  // One buffer, one write: a frame must never be torn by a concurrent
  // writer on the same fd (the supervisor serializes per worker, but
  // cheap insurance beats a protocol deadlock).
  std::string Buf;
  Buf.reserve(4 + Payload.size());
  Buf.append(reinterpret_cast<const char *>(Header), 4);
  Buf.append(Payload);
  return writeFull(Fd, Buf.data(), Buf.size());
}

namespace {

/// Milliseconds left before \p Deadline, clamped at 0; -1 when the
/// caller asked to block forever.
int remainingMs(bool Bounded,
                std::chrono::steady_clock::time_point Deadline) {
  if (!Bounded)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - std::chrono::steady_clock::now());
  return Left.count() <= 0 ? 0 : static_cast<int>(Left.count());
}

/// Reads exactly \p N bytes before the deadline. Returns Ok, Eof (only
/// when \p EofLegal and no byte arrived), Timeout, or Error.
FrameReadStatus readExact(int Fd, void *Buf, size_t N, bool Bounded,
                          std::chrono::steady_clock::time_point Deadline,
                          bool EofLegal) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < N) {
    int Ready = pollReadable(Fd, remainingMs(Bounded, Deadline));
    if (Ready < 0)
      return FrameReadStatus::Error;
    if (Ready == 0)
      return FrameReadStatus::Timeout;
    int64_t R = readSome(Fd, P + Got, N - Got);
    if (R < 0)
      return FrameReadStatus::Error;
    if (R == 0)
      return (Got == 0 && EofLegal) ? FrameReadStatus::Eof
                                    : FrameReadStatus::Error;
    Got += static_cast<size_t>(R);
  }
  return FrameReadStatus::Ok;
}

} // namespace

FrameReadStatus jslice::readFrame(int Fd, std::string &Payload,
                                  int TimeoutMs) {
  bool Bounded = TimeoutMs >= 0;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Bounded ? TimeoutMs : 0);

  unsigned char Header[4];
  FrameReadStatus S =
      readExact(Fd, Header, 4, Bounded, Deadline, /*EofLegal=*/true);
  if (S != FrameReadStatus::Ok)
    return S;

  uint32_t Len = static_cast<uint32_t>(Header[0]) |
                 (static_cast<uint32_t>(Header[1]) << 8) |
                 (static_cast<uint32_t>(Header[2]) << 16) |
                 (static_cast<uint32_t>(Header[3]) << 24);
  if (Len > MaxFramePayload)
    return FrameReadStatus::Error;

  Payload.assign(Len, '\0');
  if (Len == 0)
    return FrameReadStatus::Ok;
  return readExact(Fd, Payload.data(), Len, Bounded, Deadline,
                   /*EofLegal=*/false);
}
