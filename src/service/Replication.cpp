//===- service/Replication.cpp - Journal shipping to warm standbys --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Replication.h"

#include <algorithm>
#include <chrono>

using namespace jslice;

const char *jslice::replAckPolicyName(ReplAckPolicy P) {
  switch (P) {
  case ReplAckPolicy::Async:
    return "async";
  case ReplAckPolicy::Flush:
    return "flush";
  case ReplAckPolicy::Sync:
    return "sync";
  }
  return "async";
}

bool jslice::parseReplAckPolicyName(const std::string &Name,
                                    ReplAckPolicy &Out) {
  if (Name == "async")
    Out = ReplAckPolicy::Async;
  else if (Name == "flush")
    Out = ReplAckPolicy::Flush;
  else if (Name == "sync")
    Out = ReplAckPolicy::Sync;
  else
    return false;
  return true;
}

ReplicationHub::ReplicationHub(Journal &J, ReplAckPolicy P)
    : Wal(J), Policy(P) {
  if (Policy == ReplAckPolicy::Async) {
    Shipper = std::thread([this] { shipperMain(); });
  }
  Wal.setTap([this](const std::string &Line, uint64_t Seq) {
    onRecord(Line, Seq);
  });
}

ReplicationHub::~ReplicationHub() {
  // Detach from the journal first: after this no tap can be in flight
  // (setTap serializes on the journal mutex the tap runs under).
  Wal.setTap(nullptr);
  {
    std::lock_guard<std::mutex> Lock(M);
    ShipperStop = true;
  }
  ShipCv.notify_all();
  AckCv.notify_all();
  if (Shipper.joinable())
    Shipper.join();
}

std::string ReplicationHub::recordFrame(const std::string &Line) {
  // The record ships as the exact journaled bytes (JSON-escaped in
  // transit): the standby verifies the same CRC32 the primary wrote.
  JsonValue F = JsonValue::object();
  F.set("repl", "rec");
  F.set("line", Line);
  return F.str();
}

/// Journal tap: runs under the journal mutex (strict seq order), so it
/// must not call back into the journal.
void ReplicationHub::onRecord(const std::string &Line, uint64_t Seq) {
  std::lock_guard<std::mutex> Lock(M);
  Tail.emplace_back(Seq, Line);
  while (Tail.size() > TailCap)
    Tail.pop_front();
  if (Policy == ReplAckPolicy::Async) {
    if (!Subscribers.empty()) {
      Pending.emplace_back(Seq, Line);
      ShipCv.notify_one();
    }
    return;
  }
  // Flush/sync: the record reaches every subscriber's transport buffer
  // before the journal append (and so the admission of the request)
  // returns.
  if (Subscribers.empty())
    return;
  std::string Frame = recordFrame(Line);
  for (Subscriber &S : Subscribers)
    S.Out(Frame);
  Stats.Shipped += Subscribers.size();
  LastShipped = std::max(LastShipped, Seq);
}

void ReplicationHub::shipperMain() {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    ShipCv.wait(Lock, [this] { return ShipperStop || !Pending.empty(); });
    if (ShipperStop)
      return;
    auto [Seq, Line] = std::move(Pending.front());
    Pending.pop_front();
    std::string Frame = recordFrame(Line);
    // Ship without the lock: a sink may block on a slow transport
    // buffer, and acks/subscribes must not queue behind it.
    std::vector<Sink> Outs;
    Outs.reserve(Subscribers.size());
    for (Subscriber &S : Subscribers)
      Outs.push_back(S.Out);
    Lock.unlock();
    for (Sink &Out : Outs)
      Out(Frame);
    Lock.lock();
    Stats.Shipped += Outs.size();
    LastShipped = std::max(LastShipped, Seq);
  }
}

uint64_t ReplicationHub::subscribe(uint64_t FromSeq, Sink Out) {
  // Gather the journal state *before* taking the hub lock (the tap
  // holds journal-then-hub; taking hub-then-journal here would
  // deadlock). Records appended between this snapshot and the
  // registration below are replayed from the hub's tail buffer.
  uint64_t CompactSeq = Wal.lastCompactSeq();
  uint64_t Epoch = Wal.epoch();
  bool Snapshot = FromSeq < CompactSeq;
  uint64_t Through = 0;
  std::vector<std::string> Backlog = Wal.snapshotRecords(Through);

  std::lock_guard<std::mutex> Lock(M);
  uint64_t Id = NextSubscriberId++;
  if (Subscribers.size() >= MaxSubscribers)
    Subscribers.erase(Subscribers.begin());
  ++Stats.Subscribes;
  if (Snapshot)
    ++Stats.Snapshots;
  else
    ++Stats.Resumes;

  JsonValue Hello = JsonValue::object();
  Hello.set("repl", "hello");
  Hello.set("epoch", Epoch);
  Hello.set("last_seq", Through);
  Hello.set("snapshot", Snapshot);
  Out(Hello.str());

  // Catch-up: the file backlog (all of it after a compaction gap,
  // else only records past the subscriber's resume point)...
  for (const std::string &Line : Backlog) {
    uint64_t Seq = 0;
    verifyJournalLine(Line, &Seq);
    if (!Snapshot && Seq <= FromSeq)
      continue;
    Out(recordFrame(Line));
    ++Stats.Shipped;
  }
  // ...then anything the tap saw while the snapshot was being read.
  // The standby dedups by sequence, so an overlap with the backlog is
  // harmless; taps are seq-ordered, so a high-water mark suffices.
  for (const auto &[Seq, Line] : Tail) {
    if (Seq <= Through || (!Snapshot && Seq <= FromSeq))
      continue;
    Out(recordFrame(Line));
    ++Stats.Shipped;
    LastShipped = std::max(LastShipped, Seq);
  }
  Subscribers.push_back(Subscriber{Id, std::move(Out)});
  return Id;
}

void ReplicationHub::ack(uint64_t Seq) {
  {
    std::lock_guard<std::mutex> Lock(M);
    AckedSeq = std::max(AckedSeq, Seq);
  }
  AckCv.notify_all();
}

uint64_t ReplicationHub::ackedSeq() const {
  std::lock_guard<std::mutex> Lock(M);
  return AckedSeq;
}

uint64_t ReplicationHub::lastShippedSeq() const {
  std::lock_guard<std::mutex> Lock(M);
  return LastShipped;
}

bool ReplicationHub::waitAcked(uint64_t Seq, uint64_t TimeoutMs) {
  std::unique_lock<std::mutex> Lock(M);
  if (Subscribers.empty())
    return false; // No standby: the loss window is open, not hidden.
  ++Stats.SyncWaits;
  bool Acked = AckCv.wait_for(
      Lock, std::chrono::milliseconds(TimeoutMs),
      [this, Seq] { return ShipperStop || AckedSeq >= Seq; });
  if (!Acked || AckedSeq < Seq) {
    ++Stats.SyncTimeouts;
    return false;
  }
  return true;
}

size_t ReplicationHub::subscriberCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Subscribers.size();
}

ReplicationCounters ReplicationHub::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}
