//===- service/Request.h - Slicing-service wire protocol -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON-Lines protocol jslice_serve speaks (DESIGN.md, "Serving
/// slices"). One request per line:
///
///   {"id": "r1", "program": "read(c);\nwrite(c);\n", "line": 2,
///    "vars": ["c"], "algorithm": "agrawal-fig7",
///    "budget_ms": 200, "max_steps": 500000}
///   {"cancel": "r1"}
///   {"stats": true}
///   {"health": true}
///   {"upgrade": true}
///   {"promote": true}
///   {"repl_subscribe": 0}
///   {"repl_ack": 42}
///
/// The last three belong to the replication/failover protocol
/// (DESIGN.md, "Replication & failover"): `promote` turns a warm
/// standby into the primary under a fresh fencing epoch;
/// `repl_subscribe` turns the connection into a journal-record stream
/// resuming past the given sequence; `repl_ack` reports the standby's
/// durable high-water mark. Slice requests may carry `"min_epoch"`: a
/// server whose epoch is lower sheds the request ("fenced").
///
/// and one JSON response line per request. Response `status` mirrors
/// the library's DiagKind taxonomy plus the service-level outcomes:
///
///   ok                 served (served_tier == requested, or a degraded
///                      tier — `degraded` and `attempts` tell which)
///   resource-exhausted DiagKind::ResourceExhausted on every rung of
///                      the degradation ladder — a deterministic
///                      refusal, with each rung's trip site recorded
///   error              DiagKind::Error — malformed program or a
///                      criterion that resolves to nothing; retrying is
///                      pointless
///   bad-request        the request line itself is not valid protocol
///   cancelled          a {"cancel": id} stopped it (queued or mid-run)
///   poisoned           matched a quarantined request from a previous
///                      crashed run (see Journal.h); `repro` names the
///                      dumped reproducer
///   crashed            process isolation only: the sandbox worker
///                      running this request died (`error` quotes the
///                      wait status) or hung past its deadline; the
///                      request is quarantined and `repro` names the
///                      reproducer
///   shed               overload control refused it without running:
///                      the admission queue was full, the queue
///                      deadline passed before a worker was free, the
///                      memory watermark tripped, the restart-storm
///                      circuit breaker was open, the server was
///                      draining for shutdown, or the write-ahead
///                      journal failed persistently under
///                      --journal-failure=shed|abort ("journal-failed"
///                      in the shed_by_cause stats breakdown), the
///                      server is an unpromoted standby ("standby"),
///                      or the request's min_epoch outranks the
///                      server's epoch ("fenced")
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_REQUEST_H
#define JSLICE_SERVICE_REQUEST_H

#include "service/Json.h"
#include "slicer/Slicers.h"

#include <set>
#include <string>
#include <vector>

namespace jslice {

/// What one parsed request line asks for.
enum class RequestKind {
  Slice,         ///< Analyze + slice one (program, criterion).
  Cancel,        ///< Cancel an earlier slice request by id.
  Stats,         ///< Full snapshot: counters, tier histogram, latencies.
  Health,        ///< Lock-free liveness/readiness probe (LB-friendly).
  Upgrade,       ///< Request a zero-downtime generation handoff.
  Promote,       ///< Promote a warm standby to primary (fenced by epoch).
  ReplSubscribe, ///< Standby: stream journal records from a sequence.
  ReplAck,       ///< Standby: records durable through this sequence.
};

/// One parsed request.
struct ServiceRequest {
  RequestKind Kind = RequestKind::Slice;

  std::string Id;      ///< Slice: caller's correlation id (required).
  std::string Program; ///< Slice: Mini-C source text.
  unsigned Line = 0;   ///< Slice: criterion line (required).
  std::vector<std::string> Vars; ///< Slice: empty = vars used at line.
  SliceAlgorithm Algorithm = SliceAlgorithm::Agrawal;
  uint64_t BudgetMs = 0; ///< 0 = server default deadline.
  uint64_t MaxSteps = 0; ///< 0 = server default step budget.

  /// Slice: fencing token. A server whose replication epoch is below
  /// this sheds the request ("fenced") — how a client that has seen a
  /// promotion keeps a resurrected ex-primary from double-serving.
  uint64_t MinEpoch = 0;

  std::string CancelTarget; ///< Cancel: the id to stop.

  uint64_t ReplFromSeq = 0; ///< ReplSubscribe: resume past this seq.
  uint64_t AckSeq = 0;      ///< ReplAck: durable through this seq.

  /// Content key for poison matching: identical program + criterion +
  /// algorithm hash to the same key regardless of id, so a crashing
  /// request stays quarantined when resubmitted under a fresh id.
  std::string contentKey() const;

  /// The request as a protocol JSON object (journal entries round-trip
  /// through this).
  JsonValue toJson() const;
};

/// Parses one request line. On failure the string is a human-readable
/// reason (the server wraps it in a bad-request response).
struct ParsedRequest {
  bool Ok = false;
  ServiceRequest Request;
  std::string Error;
  std::string Id; ///< Best-effort id even when !Ok, for the response.
};
ParsedRequest parseRequestLine(const std::string &Line);

/// Reconstructs a slice request from a journal "request" object.
/// Returns false when required fields are missing.
bool requestFromJson(const JsonValue &V, ServiceRequest &Out);

/// Response statuses, as wire strings.
enum class ResponseStatus {
  Ok,
  ResourceExhausted,
  Error,
  BadRequest,
  Cancelled,
  Poisoned,
  Crashed,
  Shed,
};
const char *responseStatusName(ResponseStatus S);

/// Inverse of responseStatusName (the supervisor passes worker
/// responses through as text; the server still needs the enum for its
/// counters). Nullopt on an unknown string.
std::optional<ResponseStatus> responseStatusByName(const std::string &Name);

/// One rung of the degradation ladder as reported to the caller.
struct TierReport {
  std::string Tier;
  std::string Outcome; ///< "served" | "resource-exhausted" | "skipped"
  std::string Detail;  ///< Trip site or skip reason.
};

/// One response line.
struct ServiceResponse {
  std::string Id;
  ResponseStatus Status = ResponseStatus::Ok;
  std::string Requested;  ///< Requested algorithm name (slices only).
  std::string ServedTier; ///< Algorithm actually served (when Ok).
  bool Degraded = false;
  bool FromCache = false; ///< Served from the analysis cache.
  bool Audited = false;   ///< Cache hit re-verified against a fresh run.
  std::set<unsigned> Lines; ///< The slice, as source lines (when Ok).
  std::vector<TierReport> Attempts;
  std::string Error;     ///< Diagnostics (error / refusal statuses).
  std::string ReproPath; ///< Poisoned: where the reproducer lives.
  double LatencyMs = -1; ///< < 0 = omitted.

  /// Serializes as one JSON line (no trailing newline).
  std::string str() const;
};

} // namespace jslice

#endif // JSLICE_SERVICE_REQUEST_H
