//===- service/Replication.h - Journal shipping to warm standbys ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primary-side journal shipping (DESIGN.md, "Replication & failover").
/// The journal is already a checksummed, sequence-numbered, exactly-
/// once-auditable log of server intent; replication ships it live so a
/// warm standby can take over mid-crash with the same quarantine-
/// exactly-the-casualties guarantee a restart has.
///
/// The channel rides the ordinary request transport: a standby
/// connects like any client and sends `{"repl_subscribe": <from_seq>}`;
/// from then on that connection is a one-way record stream. The hub
/// holds the connection's response sink and writes frames:
///
///   {"repl":"hello","epoch":E,"last_seq":N,"snapshot":true|false}
///   {"repl":"rec","line":"<raw journal record line>"}
///
/// The record line is shipped as the *exact bytes* the primary
/// journaled, so the standby verifies the same CRC32 end-to-end —
/// a bit flipped anywhere between the primary's buffer and the
/// standby's disk is caught by the record checksum, not trusted to
/// TCP's weaker one. The standby acks with `{"repl_ack": <seq>}` on
/// the same connection once records are durable in its replica
/// journal.
///
/// Catch-up: a subscriber resuming from `from_seq` gets the tail of
/// the current journal file when nothing below `from_seq` has been
/// compacted away ("snapshot":false — the torn-stream resume path);
/// otherwise the compaction dropped `end` records the standby never
/// saw, so the hub sends the whole compacted file and stamps the hello
/// "snapshot":true — the standby truncates its replica first (applying
/// a compacted file over stale begins would resurrect matched pairs as
/// in-flight).
///
/// The ack policy prices durability against latency exactly like
/// --journal-sync does for the local disk (the bench's `replication`
/// section quantifies it):
///
///   async  appends return immediately; a shipper thread drains the
///          stream. Loss window on primary death: everything after the
///          standby's last received record.
///   flush  the record is handed to the subscriber's transport buffer
///          before the append returns. Loss window: records buffered
///          but not yet on the standby's disk.
///   sync   the append additionally waits (bounded) for the standby's
///          durable ack. Loss window: zero acknowledged records — the
///          failover matrix asserts it.
///
/// Fencing: every journal record is stamped with the writer's `epoch`
/// (Journal::setEpoch). Promotion bumps the epoch past everything the
/// replica ever saw; a resurrected ex-primary keeps stamping its stale
/// epoch and sheds any request carrying a higher `min_epoch` — split
/// brain cannot double-serve a fenced client, and a post-mortem scan
/// convicts unfenced writes by their stamps.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_REPLICATION_H
#define JSLICE_SERVICE_REPLICATION_H

#include "service/Journal.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jslice {

/// How hard an append pushes toward the standby before returning —
/// the --repl-ack policy.
enum class ReplAckPolicy {
  Async, ///< Ship from a background thread; appends never wait.
  Flush, ///< Hand the record to the subscriber transport first.
  Sync,  ///< Wait (bounded) for the standby's durable ack.
};

/// "async" / "flush" / "sync" for flags and logs.
const char *replAckPolicyName(ReplAckPolicy P);
/// Parses a --repl-ack value; false on anything unrecognized.
bool parseReplAckPolicyName(const std::string &Name, ReplAckPolicy &Out);

/// Counters for {"stats"} and the failover matrix's assertions.
struct ReplicationCounters {
  uint64_t Shipped = 0;      ///< Record frames handed to subscribers.
  uint64_t Subscribes = 0;   ///< repl_subscribe requests served.
  uint64_t Snapshots = 0;    ///< Catch-ups that resent the whole file.
  uint64_t Resumes = 0;      ///< Incremental catch-ups from from_seq.
  uint64_t SyncWaits = 0;    ///< Appends that waited for an ack.
  uint64_t SyncTimeouts = 0; ///< ...and timed out (loss window open).
};

/// Primary-side fan-out: taps the journal and streams every appended
/// record to subscribed standbys. Thread-safe. The tap runs under the
/// journal mutex, so hub internals never call back into the journal
/// from the record path; subscribe() gathers its journal snapshot
/// before taking the hub lock (lock order: journal, then hub).
class ReplicationHub {
public:
  using Sink = std::function<void(const std::string &)>;

  /// Attaches to \p J's append tap. \p Policy selects the shipping
  /// policy; Async starts the shipper thread. \p J must outlive the
  /// hub.
  ReplicationHub(Journal &J, ReplAckPolicy Policy);
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub &) = delete;
  ReplicationHub &operator=(const ReplicationHub &) = delete;

  /// Registers \p Out as a record stream resuming past \p FromSeq and
  /// performs catch-up synchronously (hello frame + backlog records).
  /// Returns the subscriber id. At most MaxSubscribers are kept; the
  /// oldest is evicted (its connection is presumed dead — writes to a
  /// closed connection's sink are swallowed by the transport).
  uint64_t subscribe(uint64_t FromSeq, Sink Out);

  /// Records the standby's durable high-water mark (repl_ack) and
  /// wakes sync-policy waiters.
  void ack(uint64_t Seq);

  /// Highest acked sequence (0 before the first ack).
  uint64_t ackedSeq() const;

  /// Sequence of the last record shipped to any subscriber.
  uint64_t lastShippedSeq() const;

  /// Sync policy: blocks until ackedSeq() >= \p Seq or \p TimeoutMs
  /// elapses. Returns false on timeout *or* when no subscriber is
  /// connected (a primary without a standby must not hang — the loss
  /// window is open and counted, not hidden).
  bool waitAcked(uint64_t Seq, uint64_t TimeoutMs);

  size_t subscriberCount() const;
  ReplAckPolicy policy() const { return Policy; }
  ReplicationCounters counters() const;

private:
  void onRecord(const std::string &Line, uint64_t Seq);
  void shipperMain();
  static std::string recordFrame(const std::string &Line);

  Journal &Wal;
  const ReplAckPolicy Policy;

  mutable std::mutex M;
  std::condition_variable AckCv;
  std::condition_variable ShipCv;
  struct Subscriber {
    uint64_t Id = 0;
    Sink Out;
  };
  std::vector<Subscriber> Subscribers;
  uint64_t NextSubscriberId = 1;
  static constexpr size_t MaxSubscribers = 4;

  /// Bounded tail of recent records: closes the race between a
  /// subscriber's file snapshot and the live tap (records appended
  /// while the snapshot was being read are replayed from here).
  std::deque<std::pair<uint64_t, std::string>> Tail;
  static constexpr size_t TailCap = 8192;

  /// Async policy: records pending shipment by the shipper thread.
  std::deque<std::pair<uint64_t, std::string>> Pending;
  bool ShipperStop = false;
  std::thread Shipper;

  uint64_t AckedSeq = 0;
  uint64_t LastShipped = 0;
  ReplicationCounters Stats;
};

} // namespace jslice

#endif // JSLICE_SERVICE_REPLICATION_H
