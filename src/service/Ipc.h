//===- service/Ipc.h - Length-prefixed pipe framing ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format between the supervisor and its sandbox workers
/// (service/Supervisor.h): one frame per message, a 4-byte
/// little-endian length followed by that many payload bytes. Payloads
/// are the service's own JSON lines — a request object on the way
/// down, a response object on the way up — so the framing carries no
/// schema of its own and a crashed worker can never leave the channel
/// half-parsed: the next read either times out, sees EOF, or sees a
/// complete frame.
///
/// Reads are deadline-driven (poll + full read) because the read side
/// is the supervisor's heartbeat: a worker that neither answers nor
/// dies within the deadline is hung and gets killed. A length above
/// MaxFramePayload fails the read immediately — a corrupted or
/// adversarial length must not make the supervisor allocate gigabytes.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_IPC_H
#define JSLICE_SERVICE_IPC_H

#include <cstdint>
#include <string>

namespace jslice {

/// Upper bound on one frame's payload (64 MiB — a request carries a
/// whole program text, but nothing this service speaks approaches
/// this).
constexpr uint32_t MaxFramePayload = 64u << 20;

/// Outcome of one framed read.
enum class FrameReadStatus {
  Ok,      ///< A complete frame landed in the output buffer.
  Eof,     ///< Clean EOF before any byte (peer closed / died idle).
  Timeout, ///< Deadline passed with no complete frame.
  Error,   ///< Short read mid-frame, oversized length, or I/O error.
};

/// Writes one frame. False on any error (EPIPE when the peer is dead;
/// the caller must have SIGPIPE ignored).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame within \p TimeoutMs milliseconds (< 0 blocks
/// indefinitely). The deadline covers the whole frame, not just the
/// first byte: a peer that trickles a torn frame still times out.
FrameReadStatus readFrame(int Fd, std::string &Payload, int TimeoutMs);

} // namespace jslice

#endif // JSLICE_SERVICE_IPC_H
