//===- service/Ladder.cpp - Precision-degradation ladder -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Ladder.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace jslice;

namespace {

/// Cost rank of a tier on the ladder: 0 = precise (or otherwise not a
/// fallback), 1 = Figure 13, 2 = Lyle. Fallbacks only ever walk to a
/// strictly higher rank.
unsigned tierRank(SliceAlgorithm A) {
  switch (A) {
  case SliceAlgorithm::Conservative:
    return 1;
  case SliceAlgorithm::Lyle:
    return 2;
  default:
    return 0;
  }
}

/// Budget for rung \p Rung (0-based): a fresh full step budget, but a
/// deadline scaled by ScalePercent^Rung (see LadderOptions for why the
/// dimensions differ), floored at 1 so "scaled" never turns into the
/// budget code's 0 == unlimited.
Budget rungBudget(const LadderOptions &Opts, unsigned Rung) {
  Budget B = Opts.B;
  unsigned Scale = std::clamp(Opts.ScalePercent, 1u, 100u);
  for (unsigned I = 0; I != Rung; ++I)
    if (B.DeadlineMs)
      B.DeadlineMs = std::max<uint64_t>(1, B.DeadlineMs * Scale / 100);
  return B;
}

void backoff(const LadderOptions &Opts, unsigned Rung) {
  if (!Opts.BackoffMs || Rung == 0)
    return;
  uint64_t Ms = static_cast<uint64_t>(Opts.BackoffMs) << (Rung - 1);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::min<uint64_t>(Ms, 100)));
}

} // namespace

std::vector<SliceAlgorithm> jslice::ladderTiers(SliceAlgorithm Requested) {
  std::vector<SliceAlgorithm> Tiers{Requested};
  if (tierRank(Requested) < tierRank(SliceAlgorithm::Conservative))
    Tiers.push_back(SliceAlgorithm::Conservative);
  if (tierRank(Requested) < tierRank(SliceAlgorithm::Lyle))
    Tiers.push_back(SliceAlgorithm::Lyle);
  return Tiers;
}

bool jslice::conservativeTierEligible(const Analysis &A) {
  if (!isStructuredProgram(A.cfg(), A.lst()))
    return false;
  if (!A.cfg().unreachableNodes().empty())
    return false;
  for (unsigned Node = 0, E = A.cfg().numNodes(); Node != E; ++Node) {
    const Stmt *S = A.cfg().node(Node).S;
    if (S && S->getKind() == StmtKind::Return)
      return false;
  }
  return true;
}

LadderResult jslice::runLadder(const std::string &Source,
                               const Criterion &Crit,
                               SliceAlgorithm Requested,
                               const LadderOptions &Opts) {
  LadderResult Out;
  Out.Requested = Requested;

  std::vector<SliceAlgorithm> Tiers =
      Opts.Degrade ? ladderTiers(Requested)
                   : std::vector<SliceAlgorithm>{Requested};

  DiagList LastExhaustion;
  for (unsigned Rung = 0; Rung != Tiers.size(); ++Rung) {
    SliceAlgorithm Tier = Tiers[Rung];
    LadderAttempt Attempt;
    Attempt.Tier = Tier;

    // A cancellation is a caller's decision, not resource pressure —
    // walking to a cheaper rung would serve a slice nobody wants.
    if (Opts.B.Cancel && Opts.B.Cancel->load(std::memory_order_relaxed)) {
      Out.Diags = LastExhaustion;
      if (Out.Diags.empty())
        Out.Diags.report(SourceLoc(), "cancelled",
                         DiagKind::ResourceExhausted);
      return Out;
    }

    backoff(Opts, Rung);
    ErrorOr<Analysis> A = Analysis::fromSource(Source, rungBudget(Opts, Rung));
    if (!A) {
      if (!A.diags().hasKind(DiagKind::ResourceExhausted)) {
        // Malformed input fails the same way on every rung; refuse now.
        Out.Diags = A.diags();
        Out.Attempts.push_back(std::move(Attempt));
        return Out;
      }
      Attempt.Trip = A.diags().str();
      LastExhaustion = A.diags();
      Out.Attempts.push_back(std::move(Attempt));
      continue;
    }

    // The cheap rungs only serve where they are sound (header comment);
    // a *requested* unsound tier is the caller's own choice and runs.
    if (Rung > 0 && Tier == SliceAlgorithm::Conservative &&
        !conservativeTierEligible(*A)) {
      Attempt.Skipped = true;
      Attempt.SkipReason = "figure-13 rung unsound here (unstructured "
                           "jumps, returns, or dead code)";
      Out.Attempts.push_back(std::move(Attempt));
      continue;
    }

    ErrorOr<SliceResult> R = computeSlice(*A, Crit, Tier);
    if (!R) {
      if (!R.diags().hasKind(DiagKind::ResourceExhausted)) {
        Out.Diags = R.diags();
        Out.Attempts.push_back(std::move(Attempt));
        return Out;
      }
      Attempt.Trip = R.diags().str();
      LastExhaustion = R.diags();
      Out.Attempts.push_back(std::move(Attempt));
      continue;
    }

    Attempt.Served = true;
    Out.Attempts.push_back(std::move(Attempt));
    Out.Ok = true;
    Out.Degraded = Rung > 0;
    Out.Served = Tier;
    Out.Result = std::move(*R);
    Out.Lines = Out.Result.lineSet(A->cfg());
    Out.A.emplace(std::move(*A));
    return Out;
  }

  // Every rung tripped (or was skipped): a deterministic refusal
  // carrying the last trip, classified ResourceExhausted.
  if (LastExhaustion.empty())
    LastExhaustion.report(SourceLoc(), "no eligible ladder tier",
                          DiagKind::ResourceExhausted);
  Out.Diags = LastExhaustion;
  return Out;
}
