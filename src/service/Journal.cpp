//===- service/Journal.cpp - Write-ahead request journal -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jslice;

const char *jslice::journalSyncName(JournalSync S) {
  switch (S) {
  case JournalSync::Full:
    return "full";
  case JournalSync::Batch:
    return "batch";
  case JournalSync::Off:
    return "off";
  }
  return "full";
}

bool jslice::parseJournalSyncName(const std::string &Name, JournalSync &Out) {
  if (Name == "full")
    Out = JournalSync::Full;
  else if (Name == "batch")
    Out = JournalSync::Batch;
  else if (Name == "off")
    Out = JournalSync::Off;
  else
    return false;
  return true;
}

const char *jslice::journalFailureName(JournalFailure F) {
  switch (F) {
  case JournalFailure::Shed:
    return "shed";
  case JournalFailure::Degrade:
    return "degrade";
  case JournalFailure::Abort:
    return "abort";
  }
  return "shed";
}

bool jslice::parseJournalFailureName(const std::string &Name,
                                     JournalFailure &Out) {
  if (Name == "shed")
    Out = JournalFailure::Shed;
  else if (Name == "degrade")
    Out = JournalFailure::Degrade;
  else if (Name == "abort")
    Out = JournalFailure::Abort;
  else
    return false;
  return true;
}

uint32_t jslice::journalCrc32(const std::string &Data) {
  // The zlib/IEEE CRC32, table-driven; built once, thread-safe since
  // C++11 static initialization.
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xffffffffu;
  for (unsigned char B : Data)
    C = Table[(C ^ B) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

namespace {

std::string crcHex(uint32_t C) {
  char Buf[9];
  std::snprintf(Buf, sizeof(Buf), "%08x", C);
  return Buf;
}

/// Minimal record probe: event + id (+ epoch stamp when asked), without
/// materializing requests.
bool probeRecord(const std::string &Line, std::string &Event,
                 std::string &Id, uint64_t *EpochOut = nullptr) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *E = V->find("event");
  if (!E || !E->isString())
    return false;
  Event = E->asString();
  const JsonValue *I = V->find("id");
  Id = (I && I->isString()) ? I->asString() : "";
  if (EpochOut) {
    *EpochOut = 0;
    const JsonValue *Ep = V->find("epoch");
    if (Ep && Ep->isNumber() && Ep->asInt() > 0)
      *EpochOut = static_cast<uint64_t>(Ep->asInt());
  }
  return true;
}

bool isBlank(const std::string &Line) {
  return Line.find_first_not_of(" \t\r") == std::string::npos;
}

} // namespace

JournalLineCheck jslice::verifyJournalLine(const std::string &Line,
                                           uint64_t *SeqOut) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return JournalLineCheck::Corrupt;
  const JsonValue *E = V->find("event");
  if (!E || !E->isString())
    return JournalLineCheck::Corrupt;
  const JsonValue *Crc = V->find("crc");
  if (!Crc) {
    // Pre-checksum record: nothing to verify against, accepted for
    // upgrade compatibility.
    return JournalLineCheck::Legacy;
  }
  if (!Crc->isString() || Crc->asString().size() != 8)
    return JournalLineCheck::Corrupt;
  const JsonValue *Seq = V->find("seq");
  if (!Seq || !Seq->isNumber() || Seq->asInt() <= 0)
    return JournalLineCheck::Corrupt;
  // Serialization is deterministic (sorted keys, no whitespace), so
  // the payload the writer checksummed is exactly this record minus
  // its crc member, re-serialized.
  JsonValue Stripped = *V;
  Stripped.remove("crc");
  if (Crc->asString() != crcHex(journalCrc32(Stripped.str())))
    return JournalLineCheck::Corrupt;
  if (SeqOut)
    *SeqOut = static_cast<uint64_t>(Seq->asInt());
  return JournalLineCheck::Valid;
}

Journal::~Journal() {
  std::unique_lock<std::mutex> Lock(M);
  stopFlusherLocked(Lock);
  if (File) {
    Io->flush(File);
    if (Sync != JournalSync::Off)
      Io->sync(File);
    Io->close(File);
    File = nullptr;
  }
}

void Journal::setIo(JournalIo *IoSeam) {
  std::lock_guard<std::mutex> Lock(M);
  Io = IoSeam ? IoSeam : &JournalIo::system();
}

bool Journal::open(const std::string &P, uint64_t Rotate, JournalSync S,
                   uint64_t FlushMs, bool Repair) {
  std::unique_lock<std::mutex> Lock(M);
  stopFlusherLocked(Lock);
  if (File) {
    Io->close(File);
    File = nullptr;
  }
  OpenBegins.clear();
  Bytes = 0;
  NextSeq = 1;
  LastCompactSeq = 0;
  Dirty = false;
  Failed = false;
  SyncBroken = false;
  Stats = JournalCounters();

  // A crash between writing the rotation temp and renaming it leaves
  // the temp behind; the journal itself is intact, so the temp is
  // stale by definition. (Skipped in no-repair mode: a predecessor
  // generation may still be alive and rotating.)
  if (Repair)
    Io->remove(P + ".rotate");

  JournalScan Scan =
      Repair ? scanJournalDetailed(P) : JournalScan();
  if (Scan.Exists && Scan.CorruptRecords) {
    // Mid-file corruption: something rewrote history. Quarantine the
    // damaged file aside for forensics and salvage every record that
    // still verifies into a fresh journal.
    Stats.CorruptRecords = Scan.CorruptRecords;
    std::string Damaged = P + ".corrupt";
    if (Io->rename(P, Damaged)) {
      std::FILE *Fresh = Io->open(P, "wb");
      if (!Fresh) {
        // Cannot build the salvage file; put the damaged one back so
        // nothing is lost, and let recovery read around the damage.
        Io->rename(Damaged, P);
      } else {
        std::ifstream In(Damaged, std::ios::binary);
        std::string Line;
        bool Ok = true;
        while (In && std::getline(In, Line)) {
          if (isBlank(Line) ||
              verifyJournalLine(Line) == JournalLineCheck::Corrupt)
            continue;
          std::string Buf = Line + "\n";
          Ok = Io->write(Fresh, Buf.data(), Buf.size()) == Buf.size() && Ok;
          ++Stats.SalvagedRecords;
        }
        Ok = Io->flush(Fresh) && Ok;
        Ok = Io->sync(Fresh) && Ok;
        Io->close(Fresh);
        Io->syncDir(P);
        if (!Ok) {
          // The salvage copy is suspect; fall back to the original.
          Io->remove(P);
          Io->rename(Damaged, P);
        }
      }
    }
  } else if (Scan.Exists && Scan.TornTail) {
    // The expected kill -9 / power-loss signature: the final record is
    // partial. Truncate to the last verified record and proceed.
    Stats.TornTails = 1;
    Io->truncate(P, Scan.GoodBytes);
  }

  // A crash can also cut the final append at exactly its last content
  // byte: the record verifies (all its bytes made it) but its newline
  // did not. Complete the framing, or the next append would splice
  // onto the same line and corrupt a record that survived the crash.
  if (Repair) {
    std::ifstream Tail(P, std::ios::binary | std::ios::ate);
    if (Tail && Tail.tellg() > 0) {
      Tail.seekg(-1, std::ios::end);
      char Last = '\n';
      if (Tail.get(Last) && Last != '\n') {
        std::FILE *F = Io->open(P, "ab");
        if (F) {
          Io->write(F, "\n", 1);
          Io->flush(F);
          Io->sync(F);
          Io->close(F);
        }
      }
    }
  }

  // Seed the in-flight index from the (now repaired) file: rotation
  // must preserve a predecessor's unmatched begins until recover()
  // closes them, even if the first rotation fires before that. Also
  // resume the sequence counter past everything on disk.
  {
    std::ifstream In(P, std::ios::binary);
    std::string Line;
    while (In && std::getline(In, Line)) {
      Bytes += Line.size() + 1;
      if (isBlank(Line))
        continue;
      uint64_t Seq = 0;
      if (verifyJournalLine(Line, &Seq) == JournalLineCheck::Corrupt)
        continue; // Unrepaired damage (see above); never fabricate.
      if (Seq >= NextSeq)
        NextSeq = Seq + 1;
      std::string Event, Id;
      uint64_t RecEpoch = 0;
      if (!probeRecord(Line, Event, Id, &RecEpoch))
        continue;
      MaxEpoch = std::max(MaxEpoch, RecEpoch);
      if (Event == "begin" && !Id.empty())
        OpenBegins[Id] = OpenBegin{Seq, Line};
      else if (Event == "end")
        OpenBegins.erase(Id);
    }
  }

  File = Io->open(P, "ab");
  if (!File)
    return false;
  Path = P;
  RotateBytes = Rotate;
  Sync = S;
  FlushIntervalMs = FlushMs ? FlushMs : 25;
  if (Sync == JournalSync::Batch) {
    FlusherStop = false;
    Flusher = std::thread([this] { flusherMain(); });
  }
  return true;
}

bool Journal::failed() const {
  std::lock_guard<std::mutex> Lock(M);
  return Failed;
}

JournalCounters Journal::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  JournalCounters C = Stats;
  C.Failed = Failed;
  return C;
}

void Journal::setGeneration(uint64_t G) {
  std::lock_guard<std::mutex> Lock(M);
  Gen = G;
}

uint64_t Journal::generation() const {
  std::lock_guard<std::mutex> Lock(M);
  return Gen;
}

void Journal::setEpoch(uint64_t E) {
  std::lock_guard<std::mutex> Lock(M);
  Epoch = E;
  MaxEpoch = std::max(MaxEpoch, E);
}

uint64_t Journal::epoch() const {
  std::lock_guard<std::mutex> Lock(M);
  return Epoch;
}

uint64_t Journal::maxEpochSeen() const {
  std::lock_guard<std::mutex> Lock(M);
  return MaxEpoch;
}

uint64_t Journal::lastSeq() const {
  std::lock_guard<std::mutex> Lock(M);
  return NextSeq - 1;
}

uint64_t Journal::lastCompactSeq() const {
  std::lock_guard<std::mutex> Lock(M);
  return LastCompactSeq;
}

void Journal::setTap(Tap T) {
  std::lock_guard<std::mutex> Lock(M);
  ShipTap = std::move(T);
}

void Journal::holdRotation(bool Hold) {
  std::lock_guard<std::mutex> Lock(M);
  RotationHeld = Hold;
}

void Journal::stopFlusherLocked(std::unique_lock<std::mutex> &Lock) {
  if (!Flusher.joinable())
    return;
  FlusherStop = true;
  FlushCv.notify_all();
  Lock.unlock();
  Flusher.join();
  Lock.lock();
  FlusherStop = false;
}

/// Batch-mode group commit: sleep until records accumulate (or at most
/// one interval), then pay one fsync for all of them. The fsync runs
/// under the journal mutex — that *is* the commit point; appenders
/// queue behind it exactly as they would behind their own fsync, but
/// N records share one disk round-trip instead of paying N.
void Journal::flusherMain() {
  std::unique_lock<std::mutex> Lock(M);
  while (!FlusherStop) {
    FlushCv.wait_for(Lock, std::chrono::milliseconds(FlushIntervalMs),
                     [this] { return FlusherStop || Dirty; });
    if (Dirty && File) {
      if (!Io->sync(File)) {
        // fsyncgate: after a failed fsync this fd's dirty pages may
        // already be dropped; re-fsyncing it would "succeed" without
        // writing them. Route the next append through a fresh handle.
        ++Stats.AppendFailures;
        SyncBroken = true;
      }
      Dirty = false;
      if (FlusherStop)
        break;
      // Bound the commit cadence: wake again one interval from now
      // rather than fsyncing per record under load.
      Lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(FlushIntervalMs));
      Lock.lock();
    }
  }
  // Final commit so close loses nothing that reached the FILE.
  if (Dirty && File) {
    if (!Io->sync(File))
      SyncBroken = true;
    Dirty = false;
  }
}

/// One line into the file and out to the OS. Bytes is only advanced on
/// full success, so it always names the boundary of the last good
/// record — exactly where reopenLocked() truncates torn bytes away.
bool Journal::writeLineLocked(const std::string &Line) {
  std::string Buf = Line;
  Buf += '\n';
  if (Io->write(File, Buf.data(), Buf.size()) != Buf.size())
    return false;
  if (!Io->flush(File))
    return false;
  Bytes += Buf.size();
  return true;
}

/// The post-write durability step for the active sync policy.
bool Journal::commitLocked() {
  switch (Sync) {
  case JournalSync::Full:
    // fflush reached the OS; fsync reaches the disk. A kill -9 only
    // needs the former, a power cut the latter — take both.
    return Io->sync(File);
  case JournalSync::Batch:
    Dirty = true;
    FlushCv.notify_one();
    return true;
  case JournalSync::Off:
    return true;
  }
  return true;
}

/// Replaces the file handle after any I/O failure. Never re-flushes
/// the old fd (fsyncgate); closes it, shaves any torn bytes the failed
/// write left past the last good record, and opens fresh.
bool Journal::reopenLocked() {
  if (File) {
    Io->close(File);
    File = nullptr;
  }
  Io->truncate(Path, Bytes);
  File = Io->open(Path, "ab");
  return File != nullptr;
}

bool Journal::appendLocked(const std::string &Line) {
  if (!File || Failed)
    return false;
  if (SyncBroken) {
    // The batch flusher hit a failed fsync; this fd cannot be trusted
    // to hold what it buffered. Reopen before appending anything else.
    if (!reopenLocked()) {
      Failed = true;
      return false;
    }
    ++Stats.Reopens;
    SyncBroken = false;
  }
  if (RotateBytes && !RotationHeld && Bytes + Line.size() + 1 > RotateBytes &&
      Bytes > OpenBegins.size() * 64) // Don't thrash a tiny threshold.
    rewriteLocked();
  if (File && writeLineLocked(Line) && commitLocked()) {
    ++Stats.Appends;
    return true;
  }
  ++Stats.AppendFailures;
  // Retry exactly once through a fresh handle — a failed write or
  // fsync may have left a torn record and/or dropped pages; the same
  // fd can report success for data it already lost.
  if (reopenLocked() && writeLineLocked(Line) && commitLocked()) {
    ++Stats.Reopens;
    ++Stats.Appends;
    return true;
  }
  // Persistent failure: latch. The server's --journal-failure policy
  // turns this into shed / degrade / abort — never silence.
  Failed = true;
  return false;
}

/// Stamps gen + epoch + seq + crc onto \p Rec and appends it. The
/// caller passes the record without those fields; serialization order
/// is deterministic, so the crc is computed over the record minus the
/// crc member itself. The ship tap fires outside the mutex.
bool Journal::appendRecord(JsonValue Rec) {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return false;
  if (Gen)
    Rec.set("gen", Gen);
  if (Epoch)
    Rec.set("epoch", Epoch);
  uint64_t Seq = NextSeq++;
  Rec.set("seq", Seq);
  Rec.set("crc", crcHex(journalCrc32(Rec.str())));
  std::string Line = Rec.str();
  if (!appendLocked(Line))
    return false;
  if (ShipTap)
    ShipTap(Line, Seq); // Under the mutex: taps stay in seq order.
  return true;
}

bool Journal::begin(const ServiceRequest &R, uint64_t *SeqOut) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "begin");
  Rec.set("id", R.Id);
  Rec.set("request", R.toJson());
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return false;
  if (Gen)
    Rec.set("gen", Gen);
  if (Epoch)
    Rec.set("epoch", Epoch);
  uint64_t Seq = NextSeq++;
  Rec.set("seq", Seq);
  Rec.set("crc", crcHex(journalCrc32(Rec.str())));
  std::string Line = Rec.str();
  OpenBegins[R.Id] = OpenBegin{Seq, Line};
  if (!appendLocked(Line))
    return false;
  if (SeqOut)
    *SeqOut = Seq;
  if (ShipTap)
    ShipTap(Line, Seq); // Under the mutex: taps stay in seq order.
  return true;
}

bool Journal::end(const std::string &Id, const std::string &Status) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "end");
  Rec.set("id", Id);
  Rec.set("status", Status);
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return false;
  OpenBegins.erase(Id);
  if (Gen)
    Rec.set("gen", Gen);
  if (Epoch)
    Rec.set("epoch", Epoch);
  uint64_t Seq = NextSeq++;
  Rec.set("seq", Seq);
  Rec.set("crc", crcHex(journalCrc32(Rec.str())));
  std::string Line = Rec.str();
  if (!appendLocked(Line))
    return false;
  if (ShipTap)
    ShipTap(Line, Seq); // Under the mutex: taps stay in seq order.
  return true;
}

bool Journal::appendReplica(const std::string &Line) {
  uint64_t Seq = 0;
  JournalLineCheck C = verifyJournalLine(Line, &Seq);
  if (C == JournalLineCheck::Corrupt)
    return false;
  std::string Event, Id;
  uint64_t RecEpoch = 0;
  if (!probeRecord(Line, Event, Id, &RecEpoch))
    return false;
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return false;
  MaxEpoch = std::max(MaxEpoch, RecEpoch);
  if (Seq >= NextSeq)
    NextSeq = Seq + 1;
  if (Event == "begin" && !Id.empty())
    OpenBegins[Id] = OpenBegin{Seq, Line};
  else if (Event == "end")
    OpenBegins.erase(Id);
  return appendLocked(Line);
}

std::vector<std::string>
Journal::snapshotRecords(uint64_t &ThroughSeq) const {
  std::lock_guard<std::mutex> Lock(M);
  ThroughSeq = NextSeq - 1;
  std::vector<std::string> Records;
  // Every append fflushes before returning, so a plain read of the
  // path sees everything appended so far; holding the mutex keeps the
  // file from rotating or growing underneath the read.
  std::ifstream In(Path, std::ios::binary);
  std::string Line;
  while (In && std::getline(In, Line)) {
    if (isBlank(Line) ||
        verifyJournalLine(Line) == JournalLineCheck::Corrupt)
      continue;
    Records.push_back(Line);
  }
  return Records;
}

bool Journal::resetForSnapshot() {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return false;
  Io->close(File);
  File = nullptr;
  Io->remove(Path);
  File = Io->open(Path, "ab");
  if (!File) {
    Failed = true;
    return false;
  }
  OpenBegins.clear();
  Bytes = 0;
  NextSeq = 1;
  Dirty = false;
  return true;
}

bool Journal::tryReattach() {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "reattach");
  std::lock_guard<std::mutex> Lock(M);
  if (!Failed)
    return File != nullptr;
  // The latch exists because the last fresh-handle retry failed too;
  // probe with a real durable append, not just an open() — a disk that
  // mounts read-only opens fine and still cannot journal.
  Failed = false;
  if (!reopenLocked()) {
    Failed = true;
    return false;
  }
  ++Stats.Reopens;
  SyncBroken = false;
  if (Gen)
    Rec.set("gen", Gen);
  if (Epoch)
    Rec.set("epoch", Epoch);
  Rec.set("seq", NextSeq);
  ++NextSeq;
  Rec.set("crc", crcHex(journalCrc32(Rec.str())));
  return appendLocked(Rec.str()); // Re-latches Failed on failure.
}

bool Journal::shutdownRecord() {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "shutdown");
  Rec.set("status", "clean");
  return appendRecord(std::move(Rec));
}

/// Rewrites the file to exactly the unmatched begins. Called with the
/// mutex held. Write-temp / fsync-temp / rename / fsync-dir, so a
/// crash at any point leaves either the old file or the complete new
/// one, never a torn hybrid — and the completed rename survives power
/// loss.
bool Journal::rewriteLocked() {
  std::string Tmp = Path + ".rotate";
  std::FILE *TmpF = Io->open(Tmp, "wb");
  if (!TmpF) {
    ++Stats.RotationFailures;
    return false;
  }
  // Emit in append (sequence) order, not id order, so the rewritten
  // file still reads as one monotonic sequence per writer.
  std::vector<const OpenBegin *> Ordered;
  Ordered.reserve(OpenBegins.size());
  for (const auto &[Id, B] : OpenBegins)
    Ordered.push_back(&B);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const OpenBegin *A, const OpenBegin *B) {
              return A->Seq < B->Seq;
            });
  bool Ok = true;
  uint64_t NewBytes = 0;
  for (const OpenBegin *B : Ordered) {
    std::string Buf = B->Line;
    Buf += '\n';
    Ok = Io->write(TmpF, Buf.data(), Buf.size()) == Buf.size() && Ok;
    NewBytes += Buf.size();
  }
  Ok = Io->flush(TmpF) && Ok;
  Ok = Io->sync(TmpF) && Ok; // The temp must be durable before the
                             // rename can make it the journal.
  Io->close(TmpF);
  if (!Ok) {
    Io->remove(Tmp);
    ++Stats.RotationFailures;
    return false;
  }
  if (!Io->rename(Tmp, Path)) {
    Io->remove(Tmp);
    ++Stats.RotationFailures;
    return false;
  }
  Io->syncDir(Path); // And the rename itself must survive power loss.
  // Records below this sequence may now be gone from the file; a
  // replication subscriber resuming from an older ack needs a fresh
  // snapshot, not an incremental tail.
  LastCompactSeq = NextSeq;
  // The old handle now points at an unlinked inode; reopen the new
  // file. A failed reopen latches the failure rather than silently
  // appending into the void.
  Io->close(File);
  File = Io->open(Path, "ab");
  Bytes = NewBytes;
  if (!File) {
    // Leave the latch to the append path: its fresh-handle retry may
    // still recover the handle this reopen could not get.
    ++Stats.RotationFailures;
    return false;
  }
  return true;
}

size_t Journal::compact() {
  std::lock_guard<std::mutex> Lock(M);
  if (!File || RotationHeld)
    return 0;
  rewriteLocked();
  return OpenBegins.size();
}

uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

JournalScan jslice::scanJournalDetailed(const std::string &Path) {
  JournalScan S;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return S;
  S.Exists = true;
  std::string All((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());

  // Id -> last unmatched begin. Ids may legitimately recur across
  // completed begin/end pairs; only a begin still open at EOF counts.
  std::map<std::string, PoisonedRequest> Open;
  // Per-generation sequence high-water marks: the upgrade overlap
  // interleaves two writers, each monotonic within its own stamp.
  std::map<uint64_t, uint64_t> SeqHigh;
  std::string LastEvent;
  uint64_t TrailingCorrupt = 0; // Damaged lines after the last good one.

  size_t Pos = 0;
  while (Pos < All.size()) {
    size_t Nl = All.find('\n', Pos);
    size_t End = Nl == std::string::npos ? All.size() : Nl;
    std::string Line = All.substr(Pos, End - Pos);
    size_t LineEnd = Nl == std::string::npos ? All.size() : Nl + 1;
    Pos = LineEnd;
    if (isBlank(Line)) {
      if (!TrailingCorrupt)
        S.GoodBytes = LineEnd; // Blank lines are framing, not damage.
      continue;
    }

    uint64_t Seq = 0;
    JournalLineCheck C = verifyJournalLine(Line, &Seq);
    if (C == JournalLineCheck::Corrupt) {
      ++TrailingCorrupt;
      continue;
    }
    // A good line after damage proves the damage was mid-file, not a
    // torn tail.
    S.CorruptRecords += TrailingCorrupt;
    TrailingCorrupt = 0;
    S.GoodBytes = LineEnd;
    if (C == JournalLineCheck::Valid)
      ++S.Records;
    else
      ++S.LegacyRecords;

    std::optional<JsonValue> V = JsonValue::parse(Line);
    const JsonValue *Event = V->find("event");
    LastEvent = Event->asString();
    uint64_t Gen = 0;
    const JsonValue *G = V->find("gen");
    if (G && G->isNumber() && G->asInt() > 0)
      Gen = static_cast<uint64_t>(G->asInt());
    uint64_t Epoch = 0;
    const JsonValue *Ep = V->find("epoch");
    if (Ep && Ep->isNumber() && Ep->asInt() > 0)
      Epoch = static_cast<uint64_t>(Ep->asInt());
    S.MaxEpoch = std::max(S.MaxEpoch, Epoch);
    if (C == JournalLineCheck::Valid)
      S.MaxSeq = std::max(S.MaxSeq, Seq);
    if (C == JournalLineCheck::Valid) {
      // Strict regressions only: a rotation rewrite can legally emit a
      // begin the appender then re-appends, duplicating one sequence
      // number without reordering anything.
      uint64_t &High = SeqHigh[Gen];
      if (Seq < High)
        ++S.SeqRegressions;
      High = std::max(High, Seq);
    }

    const JsonValue *Id = V->find("id");
    if (!Id || !Id->isString())
      continue; // Id-less records (the shutdown marker) carry no
                // in-flight state.
    if (LastEvent == "begin") {
      const JsonValue *Req = V->find("request");
      ServiceRequest R;
      if (Req && requestFromJson(*Req, R)) {
        PoisonedRequest P;
        P.Id = Id->asString();
        P.Request = std::move(R);
        P.Gen = Gen;
        P.Epoch = Epoch;
        Open[P.Id] = std::move(P);
      }
    } else if (LastEvent == "end") {
      Open.erase(Id->asString());
    }
  }

  S.TornTail = TrailingCorrupt > 0;
  S.CleanShutdown = LastEvent == "shutdown";
  for (auto &[Id, P] : Open)
    S.InFlight.push_back(std::move(P));
  return S;
}

std::vector<PoisonedRequest> jslice::scanJournal(const std::string &Path) {
  return scanJournalDetailed(Path).InFlight;
}

bool jslice::journalEndsWithCleanShutdown(const std::string &Path) {
  JournalScan S = scanJournalDetailed(Path);
  return S.Exists && S.CleanShutdown;
}

std::string jslice::quarantinePoisoned(const std::string &Dir,
                                       const PoisonedRequest &P) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Base = Dir + "/poison_" + P.Id;
  {
    std::ofstream Out(Base + ".mc");
    if (!Out)
      return "";
    Out << P.Request.Program;
    Out.flush();
    if (!Out)
      return ""; // A half-written reproducer is no reproducer: the
                 // caller must keep the journal begin unmatched.
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "poisoned request (in flight when a previous server died)\n"
        << "id: " << P.Id << "\n"
        << "algorithm: " << algorithmName(P.Request.Algorithm) << "\n"
        << "criterion: line " << P.Request.Line << " vars "
        << join(P.Request.Vars, ",") << "\n"
        << "replay: jslice_stress --replay-journal <journal>, or slice "
        << "the .mc directly\n";
  }
  return Base + ".mc";
}
