//===- service/Journal.cpp - Write-ahead request journal -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"

#include "support/StringUtils.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define JSLICE_HAVE_FSYNC 1
#endif

using namespace jslice;

const char *jslice::journalSyncName(JournalSync S) {
  switch (S) {
  case JournalSync::Full:
    return "full";
  case JournalSync::Batch:
    return "batch";
  case JournalSync::Off:
    return "off";
  }
  return "full";
}

bool jslice::parseJournalSyncName(const std::string &Name, JournalSync &Out) {
  if (Name == "full")
    Out = JournalSync::Full;
  else if (Name == "batch")
    Out = JournalSync::Batch;
  else if (Name == "off")
    Out = JournalSync::Off;
  else
    return false;
  return true;
}

namespace {

/// Minimal record probe: event + id, without materializing requests.
bool probeRecord(const std::string &Line, std::string &Event,
                 std::string &Id) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *E = V->find("event");
  if (!E || !E->isString())
    return false;
  Event = E->asString();
  const JsonValue *I = V->find("id");
  Id = (I && I->isString()) ? I->asString() : "";
  return true;
}

} // namespace

Journal::~Journal() {
  std::unique_lock<std::mutex> Lock(M);
  stopFlusherLocked(Lock);
  if (File) {
    std::fflush(File);
#ifdef JSLICE_HAVE_FSYNC
    if (Sync != JournalSync::Off)
      fsync(fileno(File));
#endif
    std::fclose(File);
    File = nullptr;
  }
}

bool Journal::open(const std::string &P, uint64_t Rotate, JournalSync S,
                   uint64_t FlushMs) {
  std::unique_lock<std::mutex> Lock(M);
  stopFlusherLocked(Lock);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  OpenBegins.clear();
  Bytes = 0;
  Dirty = false;

  // Seed the in-flight index from the existing file: rotation must
  // preserve a predecessor's unmatched begins until recover() closes
  // them, even if the first rotation fires before that.
  {
    std::ifstream In(P);
    std::string Line;
    while (In && std::getline(In, Line)) {
      Bytes += Line.size() + 1;
      std::string Event, Id;
      if (!probeRecord(Line, Event, Id))
        continue; // Torn tail record; it will be dropped on rotation.
      if (Event == "begin" && !Id.empty())
        OpenBegins[Id] = Line;
      else if (Event == "end")
        OpenBegins.erase(Id);
    }
  }

  File = std::fopen(P.c_str(), "ab");
  if (!File)
    return false;
  Path = P;
  RotateBytes = Rotate;
  Sync = S;
  FlushIntervalMs = FlushMs ? FlushMs : 25;
  if (Sync == JournalSync::Batch) {
    FlusherStop = false;
    Flusher = std::thread([this] { flusherMain(); });
  }
  return true;
}

void Journal::setGeneration(uint64_t G) {
  std::lock_guard<std::mutex> Lock(M);
  Gen = G;
}

uint64_t Journal::generation() const {
  std::lock_guard<std::mutex> Lock(M);
  return Gen;
}

void Journal::holdRotation(bool Hold) {
  std::lock_guard<std::mutex> Lock(M);
  RotationHeld = Hold;
}

void Journal::stopFlusherLocked(std::unique_lock<std::mutex> &Lock) {
  if (!Flusher.joinable())
    return;
  FlusherStop = true;
  FlushCv.notify_all();
  Lock.unlock();
  Flusher.join();
  Lock.lock();
  FlusherStop = false;
}

/// Batch-mode group commit: sleep until records accumulate (or at most
/// one interval), then pay one fsync for all of them. The fsync runs
/// under the journal mutex — that *is* the commit point; appenders
/// queue behind it exactly as they would behind their own fsync, but
/// N records share one disk round-trip instead of paying N.
void Journal::flusherMain() {
  std::unique_lock<std::mutex> Lock(M);
  while (!FlusherStop) {
    FlushCv.wait_for(Lock, std::chrono::milliseconds(FlushIntervalMs),
                     [this] { return FlusherStop || Dirty; });
    if (Dirty && File) {
#ifdef JSLICE_HAVE_FSYNC
      fsync(fileno(File));
#endif
      Dirty = false;
      if (FlusherStop)
        break;
      // Bound the commit cadence: wake again one interval from now
      // rather than fsyncing per record under load.
      Lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(FlushIntervalMs));
      Lock.lock();
    }
  }
  // Final commit so close loses nothing that reached the FILE.
  if (Dirty && File) {
#ifdef JSLICE_HAVE_FSYNC
    fsync(fileno(File));
#endif
    Dirty = false;
  }
}

void Journal::append(const std::string &Line) {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return;
  if (RotateBytes && !RotationHeld &&
      Bytes + Line.size() + 1 > RotateBytes &&
      Bytes > OpenBegins.size() * 64) // Don't thrash a tiny threshold.
    rewriteLocked();
  std::fwrite(Line.data(), 1, Line.size(), File);
  std::fputc('\n', File);
  std::fflush(File);
  Bytes += Line.size() + 1;
  switch (Sync) {
  case JournalSync::Full:
#ifdef JSLICE_HAVE_FSYNC
    // fflush reaches the OS; fsync reaches the disk. A kill -9 only
    // needs the former, a power cut the latter — take both.
    fsync(fileno(File));
#endif
    break;
  case JournalSync::Batch:
    Dirty = true;
    FlushCv.notify_one();
    break;
  case JournalSync::Off:
    break;
  }
}

/// Rewrites the file to exactly the unmatched begins. Called with the
/// mutex held. Write-temp-then-rename so a crash mid-rotation leaves
/// either the old file or the new one, never a torn hybrid.
bool Journal::rewriteLocked() {
  std::string Tmp = Path + ".rotate";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    for (const auto &[Id, Line] : OpenBegins)
      Out << Line << "\n";
    Out.flush();
    if (!Out)
      return false;
  }
  std::error_code Ec;
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  // The old handle now points at an unlinked inode; reopen the new
  // file. A failed reopen disables the journal rather than silently
  // appending into the void.
  std::fclose(File);
  File = std::fopen(Path.c_str(), "ab");
  Bytes = 0;
  for (const auto &[Id, Line] : OpenBegins)
    Bytes += Line.size() + 1;
  return File != nullptr;
}

void Journal::begin(const ServiceRequest &R) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "begin");
  Rec.set("id", R.Id);
  Rec.set("request", R.toJson());
  std::string Line;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Gen)
      Rec.set("gen", Gen);
    Line = Rec.str();
    if (File)
      OpenBegins[R.Id] = Line;
  }
  append(Line);
}

void Journal::end(const std::string &Id, const std::string &Status) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "end");
  Rec.set("id", Id);
  Rec.set("status", Status);
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Gen)
      Rec.set("gen", Gen);
    OpenBegins.erase(Id);
  }
  append(Rec.str());
}

void Journal::shutdownRecord() {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "shutdown");
  Rec.set("status", "clean");
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Gen)
      Rec.set("gen", Gen);
  }
  append(Rec.str());
}

size_t Journal::compact() {
  std::lock_guard<std::mutex> Lock(M);
  if (!File || RotationHeld)
    return 0;
  rewriteLocked();
  return OpenBegins.size();
}

uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

std::vector<PoisonedRequest> jslice::scanJournal(const std::string &Path) {
  std::vector<PoisonedRequest> Out;
  std::ifstream In(Path);
  if (!In)
    return Out;

  // Id -> last unmatched begin. Ids may legitimately recur across
  // completed begin/end pairs; only a begin still open at EOF counts.
  std::map<std::string, PoisonedRequest> Open;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    if (!V || !V->isObject())
      continue; // Torn tail record; skip.
    const JsonValue *Event = V->find("event");
    const JsonValue *Id = V->find("id");
    if (!Event || !Event->isString())
      continue;
    if (!Id || !Id->isString()) {
      // Id-less records (the shutdown marker) carry no in-flight state.
      continue;
    }
    if (Event->asString() == "begin") {
      const JsonValue *Req = V->find("request");
      ServiceRequest R;
      if (Req && requestFromJson(*Req, R)) {
        PoisonedRequest P;
        P.Id = Id->asString();
        P.Request = std::move(R);
        const JsonValue *G = V->find("gen");
        if (G && G->isNumber() && G->asInt() > 0)
          P.Gen = static_cast<uint64_t>(G->asInt());
        Open[P.Id] = std::move(P);
      }
    } else if (Event->asString() == "end") {
      Open.erase(Id->asString());
    }
  }

  for (auto &[Id, P] : Open)
    Out.push_back(std::move(P));
  return Out;
}

bool jslice::journalEndsWithCleanShutdown(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line, LastEvent;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Event, Id;
    if (probeRecord(Line, Event, Id))
      LastEvent = Event;
  }
  return LastEvent == "shutdown";
}

std::string jslice::quarantinePoisoned(const std::string &Dir,
                                       const PoisonedRequest &P) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Base = Dir + "/poison_" + P.Id;
  {
    std::ofstream Out(Base + ".mc");
    if (!Out)
      return "";
    Out << P.Request.Program;
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "poisoned request (in flight when a previous server died)\n"
        << "id: " << P.Id << "\n"
        << "algorithm: " << algorithmName(P.Request.Algorithm) << "\n"
        << "criterion: line " << P.Request.Line << " vars "
        << join(P.Request.Vars, ",") << "\n"
        << "replay: jslice_stress --replay-journal <journal>, or slice "
        << "the .mc directly\n";
  }
  return Base + ".mc";
}
