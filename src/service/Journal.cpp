//===- service/Journal.cpp - Write-ahead request journal -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"

#include "support/StringUtils.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define JSLICE_HAVE_FSYNC 1
#endif

using namespace jslice;

Journal::~Journal() {
  if (File)
    std::fclose(File);
}

bool Journal::open(const std::string &P) {
  std::lock_guard<std::mutex> Lock(M);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  File = std::fopen(P.c_str(), "ab");
  if (!File)
    return false;
  Path = P;
  return true;
}

void Journal::append(const std::string &Line) {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return;
  std::fwrite(Line.data(), 1, Line.size(), File);
  std::fputc('\n', File);
  std::fflush(File);
#ifdef JSLICE_HAVE_FSYNC
  // fflush reaches the OS; fsync reaches the disk. A kill -9 only
  // needs the former, a power cut the latter — take both, the journal
  // is not on any hot path.
  fsync(fileno(File));
#endif
}

void Journal::begin(const ServiceRequest &R) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "begin");
  Rec.set("id", R.Id);
  Rec.set("request", R.toJson());
  append(Rec.str());
}

void Journal::end(const std::string &Id, const std::string &Status) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "end");
  Rec.set("id", Id);
  Rec.set("status", Status);
  append(Rec.str());
}

std::vector<PoisonedRequest> jslice::scanJournal(const std::string &Path) {
  std::vector<PoisonedRequest> Out;
  std::ifstream In(Path);
  if (!In)
    return Out;

  // Id -> last unmatched begin. Ids may legitimately recur across
  // completed begin/end pairs; only a begin still open at EOF counts.
  std::map<std::string, ServiceRequest> Open;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    if (!V || !V->isObject())
      continue; // Torn tail record; skip.
    const JsonValue *Event = V->find("event");
    const JsonValue *Id = V->find("id");
    if (!Event || !Event->isString() || !Id || !Id->isString())
      continue;
    if (Event->asString() == "begin") {
      const JsonValue *Req = V->find("request");
      ServiceRequest R;
      if (Req && requestFromJson(*Req, R))
        Open[Id->asString()] = std::move(R);
    } else if (Event->asString() == "end") {
      Open.erase(Id->asString());
    }
  }

  for (auto &[Id, R] : Open)
    Out.push_back(PoisonedRequest{Id, std::move(R)});
  return Out;
}

std::string jslice::quarantinePoisoned(const std::string &Dir,
                                       const PoisonedRequest &P) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Base = Dir + "/poison_" + P.Id;
  {
    std::ofstream Out(Base + ".mc");
    if (!Out)
      return "";
    Out << P.Request.Program;
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "poisoned request (in flight when a previous server died)\n"
        << "id: " << P.Id << "\n"
        << "algorithm: " << algorithmName(P.Request.Algorithm) << "\n"
        << "criterion: line " << P.Request.Line << " vars "
        << join(P.Request.Vars, ",") << "\n"
        << "replay: jslice_stress --replay-journal <journal>, or slice "
        << "the .mc directly\n";
  }
  return Base + ".mc";
}
