//===- service/Journal.cpp - Write-ahead request journal -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"

#include "support/StringUtils.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define JSLICE_HAVE_FSYNC 1
#endif

using namespace jslice;

namespace {

/// Minimal record probe: event + id, without materializing requests.
bool probeRecord(const std::string &Line, std::string &Event,
                 std::string &Id) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *E = V->find("event");
  if (!E || !E->isString())
    return false;
  Event = E->asString();
  const JsonValue *I = V->find("id");
  Id = (I && I->isString()) ? I->asString() : "";
  return true;
}

} // namespace

Journal::~Journal() {
  if (File)
    std::fclose(File);
}

bool Journal::open(const std::string &P, uint64_t Rotate) {
  std::lock_guard<std::mutex> Lock(M);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  OpenBegins.clear();
  Bytes = 0;

  // Seed the in-flight index from the existing file: rotation must
  // preserve a predecessor's unmatched begins until recover() closes
  // them, even if the first rotation fires before that.
  {
    std::ifstream In(P);
    std::string Line;
    while (In && std::getline(In, Line)) {
      Bytes += Line.size() + 1;
      std::string Event, Id;
      if (!probeRecord(Line, Event, Id))
        continue; // Torn tail record; it will be dropped on rotation.
      if (Event == "begin" && !Id.empty())
        OpenBegins[Id] = Line;
      else if (Event == "end")
        OpenBegins.erase(Id);
    }
  }

  File = std::fopen(P.c_str(), "ab");
  if (!File)
    return false;
  Path = P;
  RotateBytes = Rotate;
  return true;
}

void Journal::append(const std::string &Line) {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return;
  if (RotateBytes && Bytes + Line.size() + 1 > RotateBytes &&
      Bytes > OpenBegins.size() * 64) // Don't thrash a tiny threshold.
    rewriteLocked();
  std::fwrite(Line.data(), 1, Line.size(), File);
  std::fputc('\n', File);
  std::fflush(File);
  Bytes += Line.size() + 1;
#ifdef JSLICE_HAVE_FSYNC
  // fflush reaches the OS; fsync reaches the disk. A kill -9 only
  // needs the former, a power cut the latter — take both, the journal
  // is not on any hot path.
  fsync(fileno(File));
#endif
}

/// Rewrites the file to exactly the unmatched begins. Called with the
/// mutex held. Write-temp-then-rename so a crash mid-rotation leaves
/// either the old file or the new one, never a torn hybrid.
bool Journal::rewriteLocked() {
  std::string Tmp = Path + ".rotate";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    for (const auto &[Id, Line] : OpenBegins)
      Out << Line << "\n";
    Out.flush();
    if (!Out)
      return false;
  }
  std::error_code Ec;
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  // The old handle now points at an unlinked inode; reopen the new
  // file. A failed reopen disables the journal rather than silently
  // appending into the void.
  std::fclose(File);
  File = std::fopen(Path.c_str(), "ab");
  Bytes = 0;
  for (const auto &[Id, Line] : OpenBegins)
    Bytes += Line.size() + 1;
  return File != nullptr;
}

void Journal::begin(const ServiceRequest &R) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "begin");
  Rec.set("id", R.Id);
  Rec.set("request", R.toJson());
  std::string Line = Rec.str();
  {
    std::lock_guard<std::mutex> Lock(M);
    if (File)
      OpenBegins[R.Id] = Line;
  }
  append(Line);
}

void Journal::end(const std::string &Id, const std::string &Status) {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "end");
  Rec.set("id", Id);
  Rec.set("status", Status);
  {
    std::lock_guard<std::mutex> Lock(M);
    OpenBegins.erase(Id);
  }
  append(Rec.str());
}

void Journal::shutdownRecord() {
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "shutdown");
  Rec.set("status", "clean");
  append(Rec.str());
}

size_t Journal::compact() {
  std::lock_guard<std::mutex> Lock(M);
  if (!File)
    return 0;
  rewriteLocked();
  return OpenBegins.size();
}

uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

std::vector<PoisonedRequest> jslice::scanJournal(const std::string &Path) {
  std::vector<PoisonedRequest> Out;
  std::ifstream In(Path);
  if (!In)
    return Out;

  // Id -> last unmatched begin. Ids may legitimately recur across
  // completed begin/end pairs; only a begin still open at EOF counts.
  std::map<std::string, ServiceRequest> Open;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    if (!V || !V->isObject())
      continue; // Torn tail record; skip.
    const JsonValue *Event = V->find("event");
    const JsonValue *Id = V->find("id");
    if (!Event || !Event->isString())
      continue;
    if (!Id || !Id->isString()) {
      // Id-less records (the shutdown marker) carry no in-flight state.
      continue;
    }
    if (Event->asString() == "begin") {
      const JsonValue *Req = V->find("request");
      ServiceRequest R;
      if (Req && requestFromJson(*Req, R))
        Open[Id->asString()] = std::move(R);
    } else if (Event->asString() == "end") {
      Open.erase(Id->asString());
    }
  }

  for (auto &[Id, R] : Open)
    Out.push_back(PoisonedRequest{Id, std::move(R)});
  return Out;
}

bool jslice::journalEndsWithCleanShutdown(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line, LastEvent;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Event, Id;
    if (probeRecord(Line, Event, Id))
      LastEvent = Event;
  }
  return LastEvent == "shutdown";
}

std::string jslice::quarantinePoisoned(const std::string &Dir,
                                       const PoisonedRequest &P) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Base = Dir + "/poison_" + P.Id;
  {
    std::ofstream Out(Base + ".mc");
    if (!Out)
      return "";
    Out << P.Request.Program;
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "poisoned request (in flight when a previous server died)\n"
        << "id: " << P.Id << "\n"
        << "algorithm: " << algorithmName(P.Request.Algorithm) << "\n"
        << "criterion: line " << P.Request.Line << " vars "
        << join(P.Request.Vars, ",") << "\n"
        << "replay: jslice_stress --replay-journal <journal>, or slice "
        << "the .mc directly\n";
  }
  return Base + ".mc";
}
