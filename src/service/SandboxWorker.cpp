//===- service/SandboxWorker.cpp - Sandbox worker request loop -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/SandboxWorker.h"

#include "service/Ipc.h"

using namespace jslice;

ServiceResponse jslice::executeSliceRequest(const ServiceRequest &R,
                                            const ExecConfig &Cfg,
                                            const std::atomic<bool> *Cancel,
                                            uint64_t *RungTrips) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Requested = algorithmName(R.Algorithm);

  Budget B = Cfg.DefaultBudget;
  if (R.BudgetMs)
    B.DeadlineMs = R.BudgetMs;
  if (R.MaxSteps)
    B.MaxSteps = R.MaxSteps;
  B.Cancel = Cancel;

  LadderOptions L = Cfg.Ladder;
  L.B = B;
  LadderResult Res =
      runLadder(R.Program, Criterion(R.Line, R.Vars), R.Algorithm, L);

  for (const LadderAttempt &A : Res.Attempts) {
    TierReport T;
    T.Tier = algorithmName(A.Tier);
    T.Outcome = A.Served ? "served"
               : A.Skipped ? "skipped"
                           : "resource-exhausted";
    T.Detail = A.Served ? "" : (A.Skipped ? A.SkipReason : A.Trip);
    if (!A.Served && !A.Skipped && RungTrips)
      ++*RungTrips;
    Resp.Attempts.push_back(std::move(T));
  }

  if (Res.Ok) {
    Resp.Status = ResponseStatus::Ok;
    Resp.ServedTier = algorithmName(Res.Served);
    Resp.Degraded = Res.Degraded;
    Resp.Lines = Res.Lines;
  } else if (Cancel && Cancel->load(std::memory_order_relaxed)) {
    Resp.Status = ResponseStatus::Cancelled;
    Resp.Error = "cancelled";
  } else if (Res.Diags.hasKind(DiagKind::ResourceExhausted)) {
    Resp.Status = ResponseStatus::ResourceExhausted;
    Resp.Error = Res.Diags.str();
  } else {
    Resp.Status = ResponseStatus::Error;
    Resp.Error = Res.Diags.str();
  }
  return Resp;
}

int jslice::sandboxWorkerMain(int InFd, int OutFd, const ExecConfig &Cfg) {
  std::string Payload;
  for (;;) {
    FrameReadStatus S = readFrame(InFd, Payload, /*TimeoutMs=*/-1);
    if (S == FrameReadStatus::Eof)
      return 0; // The supervisor closed the channel: clean retirement.
    if (S != FrameReadStatus::Ok)
      return 1;

    ServiceResponse Resp;
    std::optional<JsonValue> V = JsonValue::parse(Payload);
    ServiceRequest R;
    if (V && requestFromJson(*V, R)) {
      Resp = executeSliceRequest(R, Cfg, /*Cancel=*/nullptr,
                                 /*RungTrips=*/nullptr);
    } else {
      // The supervisor only ships requests it already parsed, so this
      // is a framing bug, not client garbage — still answer rather
      // than die, so the bug surfaces as an error response upstream.
      Resp.Status = ResponseStatus::Error;
      Resp.Error = "sandbox worker: unparseable request frame";
    }
    if (!writeFrame(OutFd, Resp.str()))
      return 1; // Supervisor went away mid-response.
  }
}
