//===- service/SandboxWorker.cpp - Sandbox worker request loop -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/SandboxWorker.h"

#include "service/Ipc.h"
#include "slicer/Criterion.h"

#include <unistd.h>

using namespace jslice;

namespace {

/// Serves \p R from a cached artifact under the request's own budget.
/// Nullopt sends the caller to the full ladder: an unresolvable
/// criterion (the ladder produces the canonical diagnostic), an
/// algorithm without a cache-backed path, or a guard trip mid-walk
/// (the ladder's fresh rung guards then give budget-parity with the
/// cache-less server — a partial cached walk is never served).
std::optional<ServiceResponse> serveFromArtifact(const ServiceRequest &R,
                                                 const AnalysisArtifact &Art,
                                                 const Budget &B) {
  ResourceGuard G(B);
  if (!G.checkpoint("cache.hit"))
    return std::nullopt;
  ErrorOr<ResolvedCriterion> RC =
      resolveCriterion(Art.A, Criterion(R.Line, R.Vars));
  if (!RC)
    return std::nullopt;
  std::optional<SliceResult> S = Art.BS.sliceShared(*RC, R.Algorithm, G);
  if (!S || G.exhausted())
    return std::nullopt;

  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Requested = algorithmName(R.Algorithm);
  Resp.Status = ResponseStatus::Ok;
  Resp.ServedTier = Resp.Requested;
  Resp.Degraded = false;
  Resp.FromCache = true;
  Resp.Lines = S->lineSet(Art.A.cfg());
  TierReport T;
  T.Tier = Resp.ServedTier;
  T.Outcome = "served";
  T.Detail = "analysis-cache";
  Resp.Attempts.push_back(std::move(T));
  return Resp;
}

/// Self-audit: re-derives the slice from source under a fresh guard
/// and diffs the line sets. True = match, false = mismatch (cached
/// artifact is wrong; \p FreshLines holds the trusted result), nullopt
/// = inconclusive (budget tripped or the fresh pipeline failed) — an
/// inconclusive audit must not invalidate.
std::optional<bool> auditHit(const ServiceRequest &R, const Budget &B,
                             const std::set<unsigned> &CachedLines,
                             std::set<unsigned> &FreshLines) {
  {
    ResourceGuard Probe(B);
    if (!Probe.checkpoint("cache.audit"))
      return std::nullopt;
  }
  ErrorOr<Analysis> A = Analysis::fromSource(R.Program, B);
  if (!A)
    return std::nullopt;
  ErrorOr<ResolvedCriterion> RC =
      resolveCriterion(*A, Criterion(R.Line, R.Vars));
  if (!RC)
    return std::nullopt;
  SliceResult S = computeSlice(*A, *RC, R.Algorithm);
  if (A->guard().exhausted())
    return std::nullopt;
  FreshLines = S.lineSet(A->cfg());
  return FreshLines == CachedLines;
}

} // namespace

ServiceResponse jslice::executeSliceRequest(const ServiceRequest &R,
                                            const ExecConfig &Cfg,
                                            const std::atomic<bool> *Cancel,
                                            uint64_t *RungTrips,
                                            AnalysisCache *Cache) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Requested = algorithmName(R.Algorithm);

  Budget B = Cfg.DefaultBudget;
  if (R.BudgetMs)
    B.DeadlineMs = R.BudgetMs;
  if (R.MaxSteps)
    B.MaxSteps = R.MaxSteps;
  B.Cancel = Cancel;

  // Cache front half: key, lookup, hit/refuse, or become the leader.
  std::string LeaderKey;
  if (Cache && Cache->options().Enabled &&
      R.Algorithm != SliceAlgorithm::Weiser) {
    std::optional<std::string> Key;
    {
      ResourceGuard KeyG(B);
      std::string RawK = rawProgramKey(R.Program);
      Key = Cache->canonicalKeyFor(RawK);
      if (!Key && (Key = canonicalProgramKey(R.Program, KeyG)))
        Cache->rememberCanonicalKey(RawK, *Key);
      if (Key && !KeyG.checkpoint("cache.lookup"))
        Key.reset();
    }
    if (Key) {
      // Coalesced waits are bounded by the request's own deadline.
      auto Deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(B.DeadlineMs ? B.DeadlineMs : 1000);
      AnalysisCache::LookupResult L = Cache->lookup(*Key, Deadline);
      switch (L.K) {
      case AnalysisCache::Outcome::Quarantined:
        Resp.Status = ResponseStatus::Poisoned;
        Resp.Error = "program quarantined: repeated worker crashes "
                     "building its analysis";
        return Resp;
      case AnalysisCache::Outcome::Hit: {
        std::optional<ServiceResponse> Hit = serveFromArtifact(R, *L.Artifact, B);
        if (Hit) {
          if (L.Audit) {
            Hit->Audited = true;
            std::set<unsigned> Fresh;
            std::optional<bool> Same = auditHit(R, B, Hit->Lines, Fresh);
            if (Same && !*Same) {
              // The fresh pipeline is ground truth: drop the entry and
              // serve the recomputed slice.
              Cache->auditMismatch(*Key);
              Hit->Lines = std::move(Fresh);
            }
          }
          return *Hit;
        }
        break; // Hit unusable under this budget: plain ladder.
      }
      case AnalysisCache::Outcome::MustBuild:
        LeaderKey = *Key;
        break;
      case AnalysisCache::Outcome::Bypass:
        break;
      }
    }
  }

  LadderOptions L = Cfg.Ladder;
  L.B = B;
  LadderResult Res =
      runLadder(R.Program, Criterion(R.Line, R.Vars), R.Algorithm, L);

  for (const LadderAttempt &A : Res.Attempts) {
    TierReport T;
    T.Tier = algorithmName(A.Tier);
    T.Outcome = A.Served ? "served"
               : A.Skipped ? "skipped"
                           : "resource-exhausted";
    T.Detail = A.Served ? "" : (A.Skipped ? A.SkipReason : A.Trip);
    if (!A.Served && !A.Skipped && RungTrips)
      ++*RungTrips;
    Resp.Attempts.push_back(std::move(T));
  }

  if (Res.Ok) {
    Resp.Status = ResponseStatus::Ok;
    Resp.ServedTier = algorithmName(Res.Served);
    Resp.Degraded = Res.Degraded;
    Resp.Lines = Res.Lines;
  } else if (Cancel && Cancel->load(std::memory_order_relaxed)) {
    Resp.Status = ResponseStatus::Cancelled;
    Resp.Error = "cancelled";
  } else if (Res.Diags.hasKind(DiagKind::ResourceExhausted)) {
    Resp.Status = ResponseStatus::ResourceExhausted;
    Resp.Error = Res.Diags.str();
  } else {
    Resp.Status = ResponseStatus::Error;
    Resp.Error = Res.Diags.str();
  }

  // Cache back half: the leader must resolve its slot — publish a
  // usable artifact, or report failure so exactly one waiting follower
  // is promoted.
  if (!LeaderKey.empty()) {
    bool Published = false;
    if (Res.Ok && Res.A) {
      auto Art = std::make_shared<AnalysisArtifact>(std::move(*Res.A));
      // The closure caches were charged to the serving rung's guard; a
      // trip mid-build leaves them invalid and they must never be
      // indexed by later requests.
      if (Art->BS.closures().valid() &&
          Art->A.guard().checkpoint("cache.insert")) {
        Art->CostBytes = estimateArtifactCost(*Art, R.Program);
        Cache->publish(LeaderKey, std::move(Art));
        Published = true;
      }
    }
    if (!Published)
      Cache->buildFailed(LeaderKey);
  }
  return Resp;
}

int jslice::sandboxWorkerMain(int InFd, int OutFd, const ExecConfig &Cfg) {
  // Process mode: each (single-threaded) worker owns its own cache, so
  // a crash takes the cache down with the worker — nothing poisoned
  // survives into the replacement fork. Counters ride each response
  // frame as worker_cache/worker_pid; the server strips and aggregates
  // them before the frame reaches the client.
  std::optional<AnalysisCache> Cache;
  if (Cfg.Cache.Enabled)
    Cache.emplace(Cfg.Cache);

  std::string Payload;
  for (;;) {
    FrameReadStatus S = readFrame(InFd, Payload, /*TimeoutMs=*/-1);
    if (S == FrameReadStatus::Eof)
      return 0; // The supervisor closed the channel: clean retirement.
    if (S != FrameReadStatus::Ok)
      return 1;

    ServiceResponse Resp;
    std::optional<JsonValue> V = JsonValue::parse(Payload);
    ServiceRequest R;
    if (V && requestFromJson(*V, R)) {
      Resp = executeSliceRequest(R, Cfg, /*Cancel=*/nullptr,
                                 /*RungTrips=*/nullptr,
                                 Cache ? &*Cache : nullptr);
    } else {
      // The supervisor only ships requests it already parsed, so this
      // is a framing bug, not client garbage — still answer rather
      // than die, so the bug surfaces as an error response upstream.
      Resp.Status = ResponseStatus::Error;
      Resp.Error = "sandbox worker: unparseable request frame";
    }
    std::string Out = Resp.str();
    if (Cache) {
      if (std::optional<JsonValue> Frame = JsonValue::parse(Out)) {
        Frame->set("worker_cache", Cache->stats().toJson());
        Frame->set("worker_pid", static_cast<int64_t>(getpid()));
        Out = Frame->str();
      }
    }
    if (!writeFrame(OutFd, Out))
      return 1; // Supervisor went away mid-response.
  }
}
