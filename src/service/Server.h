//===- service/Server.h - Long-running slicing server ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slicing service (DESIGN.md, "Serving slices", "Supervision &
/// overload", and "TCP transport"): reads JSON-Lines requests
/// (service/Request.h) from a stream, fans them across a WorkerPool,
/// runs each under its own per-request Budget through the
/// precision-degradation ladder (service/Ladder.h), and writes one
/// JSON response line per request. The server is transport-agnostic:
/// serve() drives it from an istream, and the TCP listener
/// (net/TcpServer.h) drives serveLine() with a per-connection
/// ResponseSink so many independent clients share one server without
/// sharing each other's failures.
///
/// Two isolation modes:
///
///  * thread (default): each request runs on a pool thread with its
///    own Analysis, ResourceGuard, and cancellation flag — one
///    poisonous program can exhaust only its own budget.
///  * process: each pool thread is a dispatcher that ships its request
///    to a forked sandbox worker over pipe IPC (service/Supervisor.h).
///    A worker that segfaults, gets OOM-killed, or hangs costs exactly
///    that request — the caller gets a `crashed` response quoting the
///    wait status, the request is quarantined like a journal-recovered
///    poison, and the supervisor respawns the worker. Mid-run
///    cancellation does not cross the process boundary; `{"cancel"}`
///    still stops queued requests.
///
/// Overload control: a bounded admission queue (MaxQueueDepth) sheds
/// with a deterministic `shed` refusal instead of queueing without
/// bound; admitted requests carry a queue deadline (QueueDeadlineMs)
/// and are shed unrun when they exceed it (serving a request the
/// caller has already given up on helps nobody); an RSS watermark
/// (MaxRssMb) sheds while memory is critical. Graceful drain: when
/// the shutdown flag trips (jslice_serve's SIGTERM self-pipe), the
/// server stops reading, finishes in-flight work, and finish() writes
/// a clean-shutdown journal record.
///
/// A write-ahead Journal (service/Journal.h) brackets every dispatch;
/// recover() quarantines requests left in flight by a crashed
/// predecessor, refuses their exact resubmission (by content key) with
/// a pointer to the dumped reproducer, and compacts the journal down
/// to its unmatched begins. The journal reports its own failures: when
/// an append fails persistently (disk full, dying device, failed
/// fsync) the JournalFailurePolicy decides whether the server sheds
/// new requests deterministically, keeps serving with the journal
/// marked lost ({"health"} reports degraded), or aborts into a clean
/// drain — never the old behavior of serving on while silently
/// recording nothing.
///
/// The `{"stats"}` health request answers with counters: requests by
/// outcome (including shed and crashed), the tier histogram, guard
/// trips, supervisor spawn/restart/crash counts, and p50/p95 latency.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_SERVER_H
#define JSLICE_SERVICE_SERVER_H

#include "service/AnalysisCache.h"
#include "service/Journal.h"
#include "service/Ladder.h"
#include "service/Replication.h"
#include "service/Request.h"
#include "service/Supervisor.h"
#include "support/WorkerPool.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Where one protocol line's response line goes. The stdin transport
/// uses a sink that writes the shared ostream under a mutex; the TCP
/// transport (net/TcpServer.h) hands each line a sink bound to its
/// connection's bounded write buffer. A sink must be callable from any
/// worker thread and must stay valid until the response is delivered —
/// TCP sinks capture shared state by shared_ptr so a connection that
/// dies mid-request just swallows the late response.
using ResponseSink = std::function<void(const std::string &Line)>;

/// Server configuration.
struct ServerOptions {
  /// Worker threads; 0 = BatchSlicer::defaultThreads() (JSLICE_THREADS
  /// env var, else hardware concurrency).
  unsigned Threads = 0;

  /// Process isolation: run requests in forked sandbox workers under
  /// the Supervisor instead of on the pool threads directly. Falls
  /// back to thread mode (with a log line) where fork is unavailable.
  bool IsolateProcess = false;

  /// Supervisor knobs for process mode. Workers == 0 sizes the fleet
  /// to the dispatcher thread count. Exec inside is rebuilt from
  /// DefaultBudget/Ladder below; set the rest freely.
  SupervisorOptions Super;

  /// Admission control: admitted-but-unfinished requests above this
  /// are shed with a deterministic refusal (0 = unbounded).
  uint64_t MaxQueueDepth = 0;

  /// Queue deadline: an admitted request still waiting for a worker
  /// after this many ms is shed unrun (0 = none).
  uint64_t QueueDeadlineMs = 0;

  /// Memory watermark: while the process RSS exceeds this many MiB the
  /// server first evicts from the analysis cache toward half its cost
  /// total and admits the request (memory pressure degrades into cache
  /// misses); only when there is nothing left to evict are new
  /// requests shed (0 = no watermark; non-Linux reads 0 RSS and never
  /// sheds on memory).
  uint64_t MaxRssMb = 0;

  /// Analysis-cache knobs. Thread mode holds one shared instance;
  /// process mode forwards this to each sandbox worker, which builds
  /// its own (per-worker counters come back piggybacked on response
  /// frames and are aggregated into {"stats"}).
  CacheOptions Cache;

  /// Write-ahead journal path; empty disables journaling (and with it
  /// poison recovery).
  std::string JournalPath;

  /// Journal rotation threshold; past this many bytes the journal
  /// rewrites itself down to its unmatched begins (0 disables).
  uint64_t JournalRotateBytes = 8u << 20;

  /// Journal durability policy (--journal-sync): Full fsyncs every
  /// record, Batch group-commits at JournalFlushIntervalMs, Off leaves
  /// flushing to the OS. See Journal.h for the exact trade-offs.
  JournalSync JournalSyncPolicy = JournalSync::Full;
  uint64_t JournalFlushIntervalMs = 25;

  /// What a persistent journal append failure means for serving
  /// (--journal-failure): shed new requests (default — the journal is
  /// load-bearing for crash forensics), degrade (serve on, journal
  /// marked lost, health degraded), or abort (trip AbortFlag and
  /// drain). Also applied when the journal cannot be opened at all.
  JournalFailure JournalFailurePolicy = JournalFailure::Shed;

  /// Raised (when non-null) on persistent journal failure under the
  /// Abort policy; jslice_serve points this at the same flag its
  /// SIGTERM handler sets, so the abort rides the graceful-drain path.
  std::atomic<bool> *AbortFlag = nullptr;

  /// Journal I/O seam override; null = real syscalls. The disk-chaos
  /// soak and tests inject a FaultyJournalIo here. Not owned; must
  /// outlive the server.
  JournalIo *JournalIoHook = nullptr;

  /// Server generation for zero-downtime restart (0 = not generation-
  /// managed). Stamped onto every journal record and reported by
  /// {"health"}; recovery uses it to attribute unmatched begins to
  /// their owning process.
  uint64_t Generation = 0;

  /// Pid of the predecessor generation sharing the journal, or -1.
  /// While it is alive recover() defers — the predecessor's unmatched
  /// begins are its live in-flight set, not casualties. Once it exits,
  /// completeHandoff() quarantines exactly the begins stamped by
  /// earlier generations.
  long PredecessorPid = -1;

  /// When non-null, an {"upgrade"} control line stores true here and
  /// answers ok — jslice_serve points this at the same flag its
  /// SIGUSR2 handler sets. Null transports answer that upgrade is
  /// unsupported.
  std::atomic<bool> *UpgradeFlag = nullptr;

  /// Hard cap on one protocol line, shared by every transport (the
  /// bounded stdin/file reader and the TCP line reader). An input that
  /// exceeds it — adversarially newline-free or just oversized — is
  /// answered with a deterministic `shed` refusal instead of growing a
  /// read buffer without bound. 0 = unlimited (not recommended).
  uint64_t MaxLineBytes = 4u << 20;

  /// Where recover() dumps poisoned reproducers.
  std::string QuarantineDir = "poisoned";

  /// Graceful-drain trigger: when non-null and it reads true, serve()
  /// stops accepting, finishes in-flight requests, and returns.
  /// jslice_serve points this at its signal-handler flag.
  const std::atomic<bool> *ShutdownFlag = nullptr;

  /// Per-request defaults; a request's budget_ms / max_steps override
  /// the deadline / step dimensions. The service default polls the
  /// deadline every 16 checkpoints (not the library's 256): requests
  /// carry tight deadlines, and a service overshooting them stalls a
  /// worker slot, so the tighter stride is the right trade.
  Budget DefaultBudget = serviceDefaultBudget();

  /// Ladder behaviour (the rung-1 budget inside is ignored; it is
  /// rebuilt per request from DefaultBudget and the request fields).
  LadderOptions Ladder;

  /// Warm-standby mode (--standby-of): the server boots refusing
  /// slice requests with a deterministic `shed` (cause "standby") and
  /// stays that way until promote() runs. The tool that owns this
  /// server also runs a net::StandbyTail against journal() so the
  /// replica journal — and with it the recovered poison set — stays
  /// warm for the moment of promotion.
  bool Standby = false;

  /// Initial fencing epoch stamped (with the generation) onto every
  /// journal record. 0 = derive: primaries resume at
  /// max(on-disk epoch, 1); standbys stay at 0 until promotion
  /// assigns max-seen + 1. A request carrying "min_epoch" above this
  /// server's epoch is shed (cause "fenced") — that is what makes a
  /// resurrected ex-primary deterministically refuse traffic that has
  /// already failed over.
  uint64_t Epoch = 0;

  /// Replication acknowledgement policy (--repl-ack). Async ships
  /// records on a background thread; Flush hands them to subscriber
  /// sinks before the journal append returns; Sync additionally blocks
  /// the slice admission path until a standby acks the begin record
  /// (bounded by ReplAckTimeoutMs — a missing or slow standby costs
  /// latency and a counted loss-window, never a hang).
  ReplAckPolicy ReplAck = ReplAckPolicy::Async;
  uint64_t ReplAckTimeoutMs = 2000;

  /// Under --journal-failure=degrade, how often (ms) the serving path
  /// probes a lost journal with Journal::tryReattach. A recovered disk
  /// flips {"health"} back from "journal":"lost" to "journal":"ok" and
  /// journaling resumes; 0 disables the probe (the old latch-forever
  /// behavior). Shed/Abort never probe: their contract is that a lost
  /// journal stops serving until an operator intervenes.
  uint64_t JournalReattachIntervalMs = 500;

  /// Test hook for the crash-recovery test: the worker picking up the
  /// request with this id sleeps forever after its journal `begin`
  /// record is durable, giving a kill -9 a deterministic in-flight
  /// window. Never set in production.
  std::string HangAfterBeginId;

  static Budget serviceDefaultBudget() {
    Budget B;
    B.MaxNodes = 1u << 20;
    B.MaxSteps = 20000000;
    B.DeadlineMs = 5000;
    B.PollStride = 16;
    return B;
  }
};

/// Health snapshot, all-time since construction.
struct ServerStats {
  uint64_t Received = 0;    ///< Protocol lines read.
  uint64_t Served = 0;      ///< Ok responses (any tier).
  uint64_t Degraded = 0;    ///< Ok responses below the requested tier.
  uint64_t Refused = 0;     ///< resource-exhausted responses.
  uint64_t Errors = 0;      ///< error responses (bad program/criterion).
  uint64_t BadRequests = 0; ///< Unparseable protocol lines.
  uint64_t Cancelled = 0;   ///< Requests stopped by {"cancel"}.
  uint64_t Poisoned = 0;    ///< Resubmissions refused by quarantine.
  uint64_t Crashed = 0;     ///< Sandbox worker died/hung on a request.
  uint64_t Shed = 0;        ///< Overload-control refusals.
  uint64_t GuardTrips = 0;  ///< Ladder rungs that tripped a budget.
  std::map<std::string, uint64_t> TierHistogram; ///< served tier -> count.
  /// Shed refusals broken down by cause ("queue-full",
  /// "queue-deadline", "rss-watermark", "draining", "breaker-open",
  /// "line-cap", "journal-failed", "standby", "fenced") so soak
  /// assertions read counters instead of scraping stderr.
  std::map<std::string, uint64_t> ShedByCause;
  /// Poison reproducers that could not be written to the quarantine
  /// dir (e.g. ENOSPC): the journal begin stays unmatched so the next
  /// boot retries — this counter is the operator's only sign.
  uint64_t QuarantineFailures = 0;
  /// Journal self-health (JournalCounters + the lost latch), so a
  /// dying disk is visible in {"stats"} long before it kills the
  /// process.
  uint64_t JournalAppendFailures = 0;
  uint64_t JournalReopens = 0;
  uint64_t JournalCorruption = 0; ///< Corrupt records found at boot.
  uint64_t JournalTornTails = 0;  ///< Torn tails truncated at boot.
  uint64_t JournalRotationFailures = 0;
  bool JournalLost = false; ///< Persistent failure latched.
  double P50Ms = 0;
  double P95Ms = 0;
  bool ProcessIsolation = false;
  SupervisorStats Super; ///< Zeroed in thread mode.

  uint64_t Generation = 0;  ///< ServerOptions::Generation (0 = unmanaged).
  uint64_t Epoch = 0;       ///< Current fencing epoch (0 = standby,
                            ///< never promoted).
  bool Standby = false;     ///< Still refusing slices as a standby.
  ReplicationCounters Repl; ///< Journal-shipping counters (primary side).
  uint64_t ReplAckedSeq = 0;      ///< Standby's durable high-water mark.
  uint64_t ReplLastShippedSeq = 0; ///< Last record handed to a subscriber.
  uint64_t UptimeMs = 0;    ///< Since construction.
  uint64_t RssBytes = 0;    ///< Process RSS at snapshot time.
  uint64_t MaxRssBytes = 0; ///< The watermark (0 = none); toJson also
                            ///< derives the remaining headroom.
  bool CacheEnabled = false;
  CacheStats Cache; ///< Thread mode: the shared cache; process mode:
                    ///< the per-worker snapshots summed.
  /// Process mode: the latest cache snapshot from each worker pid.
  std::map<int64_t, CacheStats> WorkerCaches;

  JsonValue toJson() const;
};

/// The server. Construct, recover(), then serve() one or more streams.
class Server {
public:
  /// Responses go to \p Out (one JSON line each, mutex-serialized);
  /// operational log lines go to \p Log.
  Server(const ServerOptions &Opts, std::ostream &Out, std::ostream &Log);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Scans the journal for requests a dead predecessor left in flight,
  /// quarantines each as a reproducer, arms the poison filter, and
  /// compacts the journal. Returns how many were quarantined. When
  /// PredecessorPid names a live process (mid-upgrade handoff), the
  /// scan is deferred — the journal's unmatched begins are the
  /// predecessor's *live* in-flight set — and rotation is held until
  /// completeHandoff() runs.
  unsigned recover();

  /// Finishes a deferred handoff once the predecessor is gone:
  /// quarantines unmatched begins stamped by earlier generations (our
  /// own in-flight begins are excluded by their stamp), releases the
  /// rotation hold, and compacts. Idempotent; returns the number
  /// quarantined. The caller decides *when* the predecessor is dead —
  /// jslice_serve polls kill(pid, 0).
  unsigned completeHandoff();

  /// True while recovery is deferred on a live predecessor.
  bool handoffPending() const {
    return HandoffPending.load(std::memory_order_relaxed);
  }

  /// Pins (or releases) journal rotation across a generation-handoff
  /// overlap window: the predecessor holds it from spawn until the
  /// successor is ready or rolled back, so a compaction rewrite can
  /// never race the successor's open of the same path.
  void holdJournalRotation(bool Hold);

  /// Reads requests from \p In until EOF or the shutdown flag trips;
  /// returns after every accepted request has been answered.
  void serve(std::istream &In);

  /// Processes one protocol line. serve() is a loop over this;
  /// jslice_serve's signal-aware front end calls it directly so a
  /// SIGTERM can interrupt between lines.
  void serveLine(const std::string &Line);

  /// Same, but the response line(s) go to \p Sink instead of the
  /// shared output stream — the TCP transport's per-connection entry
  /// point. Every non-blank line produces exactly one response line,
  /// with two replication exceptions: {"repl_subscribe"} turns the
  /// sink into a long-lived record stream (the hello frame is its
  /// response), and {"repl_ack"} is one-way (a response line would
  /// interleave with the record frames on the same connection).
  /// Returns false for the one-way case — no response was or will be
  /// delivered for this line — so transports that count a pending
  /// response per dispatched line can give the slot back.
  bool serveLine(const std::string &Line, ResponseSink Sink);

  /// Answers an input line that blew past MaxLineBytes with the
  /// deterministic `shed` refusal (cause "line-cap"). Transports call
  /// this instead of buffering the rest of the line.
  void refuseOversizedLine();
  void refuseOversizedLine(const ResponseSink &Sink);

  /// The shared request-line cap (ServerOptions::MaxLineBytes, 0 =
  /// unlimited). The TCP transport reads it so stdin and socket input
  /// are bounded by the same knob.
  uint64_t maxLineBytes() const { return Opts.MaxLineBytes; }

  /// Registers a transport-statistics provider (the TCP listener's
  /// per-connection counters); folded into the {"stats"} reply as
  /// "transport". Set before traffic starts; not synchronized against
  /// in-flight stats requests.
  void setTransportStats(std::function<JsonValue()> Fn) {
    TransportStatsFn = std::move(Fn);
  }

  /// Registers the transport's liveness probe for {"health"}: must be
  /// lock-free (the TCP listener's is a read of per-shard heartbeat
  /// atomics). A "wedged":true member in its result marks the answer
  /// degraded. Set before traffic starts, like setTransportStats.
  void setHealthProbe(std::function<JsonValue()> Fn) {
    HealthProbeFn = std::move(Fn);
  }

  /// The {"health"} answer: uptime, generation, draining/breaker/
  /// handoff state, and the transport probe. Reads only atomics and
  /// the steady clock — never StateM — so a health probe cannot queue
  /// behind a stats snapshot or a wedged counter path.
  JsonValue healthJson() const;

  /// Call once after the last serve(): writes the clean-shutdown
  /// journal record and retires the sandbox fleet.
  void finish();

  /// Current counters (also served in-band by {"stats"}).
  ServerStats stats() const;

  /// True once the shutdown flag was observed (the serve loop stopped
  /// accepting because of it, not EOF).
  bool drained() const { return Draining.load(std::memory_order_relaxed); }

  /// True once the journal failed persistently (or never opened) and
  /// the failure policy took effect. {"health"} reports this as
  /// "journal":"lost" + degraded.
  bool journalLost() const {
    return JournalLost.load(std::memory_order_relaxed);
  }

  /// True when a journal failure under the Abort policy tripped the
  /// abort flag; jslice_serve exits 3 after the drain.
  bool journalAborted() const {
    return JournalAborted.load(std::memory_order_relaxed);
  }

  /// The sandbox supervisor, or null in thread mode. The crash-matrix
  /// soak reaches through this for the chaos-kill hook and restart
  /// counters.
  Supervisor *supervisor() { return Super.get(); }

  /// The server's journal. A standby tool hands this to its
  /// net::StandbyTail so the tail and the (post-promotion) server
  /// share one replica journal — one file, one in-flight index, one
  /// recovery story.
  Journal &journal() { return Wal; }

  /// The journal-shipping hub, or null when journaling is disabled.
  /// {"repl_subscribe"} lines are routed here; tests reach through for
  /// counters.
  ReplicationHub *replication() { return Repl.get(); }

  /// True while this server is a warm standby refusing slice traffic.
  bool standby() const {
    return StandbyMode.load(std::memory_order_relaxed);
  }

  /// The current fencing epoch (0 = unpromoted standby).
  uint64_t epoch() const {
    return EpochA.load(std::memory_order_relaxed);
  }

  /// Runs immediately before promote() recovers: the owning tool stops
  /// its StandbyTail here so the replica journal is quiescent while
  /// recovery scans it. Set before traffic starts.
  void setPromoteHook(std::function<void()> Fn) {
    PromoteHook = std::move(Fn);
  }

  /// Registers a replication-telemetry provider (the standby tool's
  /// tail stats); folded into {"health"} as "replication". Must be
  /// cheap — it runs on the health path. Set before traffic starts.
  void setReplProbe(std::function<JsonValue()> Fn) {
    ReplProbeFn = std::move(Fn);
  }

  /// Promotes a standby to primary: quiesces the tail (PromoteHook),
  /// fences the old primary by adopting epoch max-seen + 1, recovers
  /// the replica journal (quarantining whatever the dead primary left
  /// in flight), and starts accepting slices. Returns the new epoch.
  /// On a server that is already primary this is a no-op returning the
  /// current epoch — fencing must never move backwards. \p
  /// QuarantinedOut (when non-null) receives the recovery count.
  uint64_t promote(unsigned *QuarantinedOut = nullptr);

private:
  struct InFlight {
    std::atomic<bool> Cancel{false};
    std::atomic<bool> Started{false};
    std::chrono::steady_clock::time_point Enqueued;
  };

  unsigned recoverNow(bool OnlyEarlierGenerations);
  void noteJournalFailure();
  /// Degrade-policy disk-recovery probe: rate-limited
  /// Journal::tryReattach; clears the lost latch on success.
  void maybeReattachJournal();
  void handleSlice(ServiceRequest R, const ResponseSink &Sink);
  void handleSliceInProcess(ServiceRequest R, ServiceResponse &Resp,
                            const std::shared_ptr<InFlight> &Flight,
                            uint64_t &RungTrips);
  bool handleSliceSandboxed(const ServiceRequest &R, ServiceResponse &Resp,
                            std::string &RawResponse, uint64_t &RungTrips);
  void quarantineCrashed(const ServiceRequest &R, ServiceResponse &Resp);
  void handleCancel(const ServiceRequest &R, const ResponseSink &Sink);
  void shedResponse(const ServiceRequest &R, const std::string &Why,
                    const char *Cause, const ResponseSink &Sink);
  void writeResponse(const ServiceResponse &R, const ResponseSink &Sink);
  void recordOutcome(ResponseStatus Status, const std::string &ServedTier,
                     bool Degraded, double LatencyMs, uint64_t RungTrips,
                     const std::string &ShedCause = "");

  ServerOptions Opts;
  std::ostream &Out;
  std::ostream &Log;
  ResponseSink DefaultSink; ///< Writes Out under OutM.
  std::function<JsonValue()> TransportStatsFn;
  std::function<JsonValue()> HealthProbeFn;
  std::chrono::steady_clock::time_point StartTime;
  std::atomic<bool> HandoffPending{false};
  Journal Wal;
  /// Declared after Wal: destroyed first, so the hub detaches its tap
  /// before the journal it observes goes away.
  std::unique_ptr<ReplicationHub> Repl;
  std::function<void()> PromoteHook;
  std::function<JsonValue()> ReplProbeFn;
  WorkerPool Pool;
  std::unique_ptr<Supervisor> Super; ///< Process mode only.

  std::atomic<uint64_t> QueueDepth{0};
  std::atomic<bool> Draining{false};
  std::atomic<bool> JournalLost{false};
  std::atomic<bool> JournalAborted{false};
  std::atomic<bool> StandbyMode{false};
  std::atomic<uint64_t> EpochA{0}; ///< Mirror of Wal.epoch() for the
                                   ///< lock-free health/fencing paths.
  /// Steady-clock ms of the last Degrade-policy reattach probe; rate
  /// limits tryReattach to JournalReattachIntervalMs.
  std::atomic<uint64_t> LastReattachMs{0};
  std::mutex PromoteM; ///< Serializes concurrent promote() calls.

  std::mutex OutM; ///< Serializes response lines; never held with StateM.
  mutable std::mutex StateM;
  std::map<std::string, std::shared_ptr<InFlight>> Registry;
  std::set<std::string> PoisonKeys;
  std::map<std::string, std::string> PoisonRepros; ///< key -> .mc path.

  /// Thread mode only; null in process mode (workers own theirs).
  std::unique_ptr<AnalysisCache> Cache;
  /// Worker crashes per rawProgramKey: a program that kills two
  /// workers is quarantined for *every* criterion, not just the
  /// crashing (program, criterion, algorithm) content key. Keyed on
  /// raw bytes — a killer program is never parsed in this process.
  std::map<std::string, unsigned> ProgramCrashCounts;
  std::set<std::string> ProgramPoison;
  /// Process mode: latest piggybacked cache snapshot per worker pid.
  std::map<int64_t, CacheStats> WorkerCacheSnapshots;
  ServerStats Counters;
  std::vector<double> Latencies;
};

} // namespace jslice

#endif // JSLICE_SERVICE_SERVER_H
