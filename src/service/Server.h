//===- service/Server.h - Long-running slicing server ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slicing service (DESIGN.md, "Serving slices"): reads JSON-Lines
/// requests (service/Request.h) from a stream, fans them across a
/// WorkerPool, runs each under its own per-request Budget through the
/// precision-degradation ladder (service/Ladder.h), and writes one
/// JSON response line per request. Request isolation is the point:
/// every request gets a fresh Analysis, a fresh ResourceGuard, and a
/// cancellation flag of its own — one poisonous program can exhaust
/// only its own budget, and the `{"cancel": id}` control line stops
/// exactly one request.
///
/// A write-ahead Journal (service/Journal.h) brackets every dispatch;
/// recover() quarantines requests left in flight by a crashed
/// predecessor and refuses their exact resubmission (by content key)
/// with a pointer to the dumped reproducer.
///
/// The `{"stats"}` health request answers with counters: requests by
/// outcome, the tier histogram (how often each ladder rung actually
/// served), guard trips, and p50/p95 service latency.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_SERVER_H
#define JSLICE_SERVICE_SERVER_H

#include "service/Journal.h"
#include "service/Ladder.h"
#include "service/Request.h"
#include "support/WorkerPool.h"

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Server configuration.
struct ServerOptions {
  /// Worker threads; 0 = BatchSlicer::defaultThreads() (JSLICE_THREADS
  /// env var, else hardware concurrency).
  unsigned Threads = 0;

  /// Write-ahead journal path; empty disables journaling (and with it
  /// poison recovery).
  std::string JournalPath;

  /// Where recover() dumps poisoned reproducers.
  std::string QuarantineDir = "poisoned";

  /// Per-request defaults; a request's budget_ms / max_steps override
  /// the deadline / step dimensions. The service default polls the
  /// deadline every 16 checkpoints (not the library's 256): requests
  /// carry tight deadlines, and a service overshooting them stalls a
  /// worker slot, so the tighter stride is the right trade.
  Budget DefaultBudget = serviceDefaultBudget();

  /// Ladder behaviour (the rung-1 budget inside is ignored; it is
  /// rebuilt per request from DefaultBudget and the request fields).
  LadderOptions Ladder;

  /// Test hook for the crash-recovery test: the worker picking up the
  /// request with this id sleeps forever after its journal `begin`
  /// record is durable, giving a kill -9 a deterministic in-flight
  /// window. Never set in production.
  std::string HangAfterBeginId;

  static Budget serviceDefaultBudget() {
    Budget B;
    B.MaxNodes = 1u << 20;
    B.MaxSteps = 20000000;
    B.DeadlineMs = 5000;
    B.PollStride = 16;
    return B;
  }
};

/// Health snapshot, all-time since construction.
struct ServerStats {
  uint64_t Received = 0;    ///< Protocol lines read.
  uint64_t Served = 0;      ///< Ok responses (any tier).
  uint64_t Degraded = 0;    ///< Ok responses below the requested tier.
  uint64_t Refused = 0;     ///< resource-exhausted responses.
  uint64_t Errors = 0;      ///< error responses (bad program/criterion).
  uint64_t BadRequests = 0; ///< Unparseable protocol lines.
  uint64_t Cancelled = 0;   ///< Requests stopped by {"cancel"}.
  uint64_t Poisoned = 0;    ///< Resubmissions refused by quarantine.
  uint64_t GuardTrips = 0;  ///< Ladder rungs that tripped a budget.
  std::map<std::string, uint64_t> TierHistogram; ///< served tier -> count.
  double P50Ms = 0;
  double P95Ms = 0;

  JsonValue toJson() const;
};

/// The server. Construct, recover(), then serve() one or more streams.
class Server {
public:
  /// Responses go to \p Out (one JSON line each, mutex-serialized);
  /// operational log lines go to \p Log.
  Server(const ServerOptions &Opts, std::ostream &Out, std::ostream &Log);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Scans the journal for requests a dead predecessor left in flight,
  /// quarantines each as a reproducer, and arms the poison filter.
  /// Returns how many were quarantined.
  unsigned recover();

  /// Reads requests from \p In until EOF; returns after every accepted
  /// request has been answered.
  void serve(std::istream &In);

  /// Current counters (also served in-band by {"stats"}).
  ServerStats stats() const;

private:
  struct InFlight {
    std::atomic<bool> Cancel{false};
    std::atomic<bool> Started{false};
  };

  void handleSlice(ServiceRequest R);
  void handleCancel(const ServiceRequest &R);
  void writeResponse(const ServiceResponse &R);
  Budget requestBudget(const ServiceRequest &R,
                       const std::atomic<bool> *Cancel) const;
  void recordOutcome(const ServiceResponse &R, double LatencyMs,
                     uint64_t RungTrips);

  ServerOptions Opts;
  std::ostream &Out;
  std::ostream &Log;
  Journal Wal;
  WorkerPool Pool;

  std::mutex OutM; ///< Serializes response lines; never held with StateM.
  mutable std::mutex StateM;
  std::map<std::string, std::shared_ptr<InFlight>> Registry;
  std::set<std::string> PoisonKeys;
  std::map<std::string, std::string> PoisonRepros; ///< key -> .mc path.
  ServerStats Counters;
  std::vector<double> Latencies;
};

} // namespace jslice

#endif // JSLICE_SERVICE_SERVER_H
