//===- service/Server.cpp - Long-running slicing server --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "slicer/BatchSlicer.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>

using namespace jslice;

JsonValue ServerStats::toJson() const {
  JsonValue Out = JsonValue::object();
  Out.set("received", Received);
  Out.set("served", Served);
  Out.set("degraded", Degraded);
  Out.set("refused", Refused);
  Out.set("errors", Errors);
  Out.set("bad_requests", BadRequests);
  Out.set("cancelled", Cancelled);
  Out.set("poisoned", Poisoned);
  Out.set("guard_trips", GuardTrips);
  JsonValue Tiers = JsonValue::object();
  for (const auto &[Tier, N] : TierHistogram)
    Tiers.set(Tier, N);
  Out.set("tiers", std::move(Tiers));
  Out.set("latency_p50_ms", P50Ms);
  Out.set("latency_p95_ms", P95Ms);
  return Out;
}

Server::Server(const ServerOptions &Opts, std::ostream &Out, std::ostream &Log)
    : Opts(Opts), Out(Out), Log(Log),
      Pool(Opts.Threads ? Opts.Threads : BatchSlicer::defaultThreads()) {
  if (!Opts.JournalPath.empty() && !Wal.open(Opts.JournalPath))
    Log << "jslice_serve: cannot open journal " << Opts.JournalPath
        << "; continuing without crash recovery\n";
}

Server::~Server() { Pool.drain(); }

unsigned Server::recover() {
  if (Opts.JournalPath.empty())
    return 0;
  std::vector<PoisonedRequest> Poisoned = scanJournal(Opts.JournalPath);
  unsigned N = 0;
  for (const PoisonedRequest &P : Poisoned) {
    std::string Repro = quarantinePoisoned(Opts.QuarantineDir, P);
    {
      std::lock_guard<std::mutex> Lock(StateM);
      std::string Key = P.Request.contentKey();
      PoisonKeys.insert(Key);
      if (!Repro.empty())
        PoisonRepros[Key] = Repro;
    }
    // Close the journal pair so the *next* restart does not quarantine
    // it again: the quarantine files are now the durable record.
    Wal.end(P.Id, "poisoned");
    Log << "jslice_serve: quarantined in-flight request \"" << P.Id << "\""
        << (Repro.empty() ? "" : " -> " + Repro) << "\n";
    ++N;
  }
  return N;
}

void Server::serve(std::istream &In) {
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    {
      std::lock_guard<std::mutex> Lock(StateM);
      ++Counters.Received;
    }

    ParsedRequest P = parseRequestLine(Line);
    if (!P.Ok) {
      ServiceResponse R;
      R.Id = P.Id;
      R.Status = ResponseStatus::BadRequest;
      R.Error = P.Error;
      writeResponse(R);
      recordOutcome(R, -1, 0);
      continue;
    }

    switch (P.Request.Kind) {
    case RequestKind::Stats: {
      JsonValue V = JsonValue::object();
      V.set("status", "ok");
      V.set("stats", stats().toJson());
      std::lock_guard<std::mutex> Lock(OutM);
      Out << V.str() << "\n" << std::flush;
      break;
    }
    case RequestKind::Cancel:
      handleCancel(P.Request);
      break;
    case RequestKind::Slice: {
      ServiceRequest R = std::move(P.Request);

      std::string PoisonRepro;
      bool IsPoisoned = false;
      bool Duplicate = false;
      std::shared_ptr<InFlight> Flight;
      {
        std::lock_guard<std::mutex> Lock(StateM);
        std::string Key = R.contentKey();
        if (PoisonKeys.count(Key)) {
          IsPoisoned = true;
          auto It = PoisonRepros.find(Key);
          if (It != PoisonRepros.end())
            PoisonRepro = It->second;
        } else if (Registry.count(R.Id)) {
          Duplicate = true;
        } else {
          Flight = std::make_shared<InFlight>();
          Registry[R.Id] = Flight;
        }
      }

      if (IsPoisoned) {
        ServiceResponse Resp;
        Resp.Id = R.Id;
        Resp.Status = ResponseStatus::Poisoned;
        Resp.Error = "request matches a quarantined reproducer from a "
                     "previous crashed run";
        Resp.ReproPath = PoisonRepro;
        writeResponse(Resp);
        recordOutcome(Resp, -1, 0);
        break;
      }
      if (Duplicate) {
        ServiceResponse Resp;
        Resp.Id = R.Id;
        Resp.Status = ResponseStatus::BadRequest;
        Resp.Error = "request id already in flight";
        writeResponse(Resp);
        recordOutcome(Resp, -1, 0);
        break;
      }

      // Write-ahead: the begin record must be durable before any
      // slicing work can crash the process.
      Wal.begin(R);
      bool Hang = !Opts.HangAfterBeginId.empty() &&
                  R.Id == Opts.HangAfterBeginId;
      Pool.submit([this, R = std::move(R), Hang]() mutable {
        if (Hang)
          std::this_thread::sleep_for(std::chrono::hours(1));
        handleSlice(std::move(R));
      });
      break;
    }
    }
  }
  Pool.drain();
}

void Server::handleCancel(const ServiceRequest &R) {
  bool Signalled = false;
  {
    std::lock_guard<std::mutex> Lock(StateM);
    auto It = Registry.find(R.CancelTarget);
    if (It != Registry.end()) {
      It->second->Cancel.store(true, std::memory_order_relaxed);
      Signalled = true;
    }
  }
  JsonValue V = JsonValue::object();
  V.set("cancel", R.CancelTarget);
  V.set("status", "ok");
  V.set("signalled", Signalled);
  std::lock_guard<std::mutex> Lock(OutM);
  Out << V.str() << "\n" << std::flush;
}

Budget Server::requestBudget(const ServiceRequest &R,
                             const std::atomic<bool> *Cancel) const {
  Budget B = Opts.DefaultBudget;
  if (R.BudgetMs)
    B.DeadlineMs = R.BudgetMs;
  if (R.MaxSteps)
    B.MaxSteps = R.MaxSteps;
  B.Cancel = Cancel;
  return B;
}

void Server::handleSlice(ServiceRequest R) {
  std::shared_ptr<InFlight> Flight;
  {
    std::lock_guard<std::mutex> Lock(StateM);
    auto It = Registry.find(R.Id);
    if (It != Registry.end()) {
      Flight = It->second;
      Flight->Started.store(true, std::memory_order_relaxed);
    }
  }

  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Requested = algorithmName(R.Algorithm);

  auto Start = std::chrono::steady_clock::now();
  uint64_t RungTrips = 0;

  if (Flight && Flight->Cancel.load(std::memory_order_relaxed)) {
    // Cancelled while still queued: never ran, nothing to report.
    Resp.Status = ResponseStatus::Cancelled;
    Resp.Error = "cancelled before execution";
  } else {
    LadderOptions L = Opts.Ladder;
    L.B = requestBudget(R, Flight ? &Flight->Cancel : nullptr);
    LadderResult Res =
        runLadder(R.Program, Criterion(R.Line, R.Vars), R.Algorithm, L);

    for (const LadderAttempt &A : Res.Attempts) {
      TierReport T;
      T.Tier = algorithmName(A.Tier);
      T.Outcome = A.Served ? "served"
                 : A.Skipped ? "skipped"
                             : "resource-exhausted";
      T.Detail = A.Served ? "" : (A.Skipped ? A.SkipReason : A.Trip);
      if (!A.Served && !A.Skipped)
        ++RungTrips;
      Resp.Attempts.push_back(std::move(T));
    }

    if (Res.Ok) {
      Resp.Status = ResponseStatus::Ok;
      Resp.ServedTier = algorithmName(Res.Served);
      Resp.Degraded = Res.Degraded;
      Resp.Lines = Res.Lines;
    } else if (Flight && Flight->Cancel.load(std::memory_order_relaxed)) {
      Resp.Status = ResponseStatus::Cancelled;
      Resp.Error = "cancelled";
    } else if (Res.Diags.hasKind(DiagKind::ResourceExhausted)) {
      Resp.Status = ResponseStatus::ResourceExhausted;
      Resp.Error = Res.Diags.str();
    } else {
      Resp.Status = ResponseStatus::Error;
      Resp.Error = Res.Diags.str();
    }
  }

  double LatencyMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  Resp.LatencyMs = LatencyMs;

  Wal.end(R.Id, responseStatusName(Resp.Status));
  writeResponse(Resp);
  recordOutcome(Resp, LatencyMs, RungTrips);

  std::lock_guard<std::mutex> Lock(StateM);
  Registry.erase(R.Id);
}

void Server::writeResponse(const ServiceResponse &R) {
  std::lock_guard<std::mutex> Lock(OutM);
  Out << R.str() << "\n" << std::flush;
}

void Server::recordOutcome(const ServiceResponse &R, double LatencyMs,
                           uint64_t RungTrips) {
  std::lock_guard<std::mutex> Lock(StateM);
  Counters.GuardTrips += RungTrips;
  if (LatencyMs >= 0)
    Latencies.push_back(LatencyMs);
  switch (R.Status) {
  case ResponseStatus::Ok:
    ++Counters.Served;
    if (R.Degraded)
      ++Counters.Degraded;
    ++Counters.TierHistogram[R.ServedTier];
    break;
  case ResponseStatus::ResourceExhausted:
    ++Counters.Refused;
    break;
  case ResponseStatus::Error:
    ++Counters.Errors;
    break;
  case ResponseStatus::BadRequest:
    ++Counters.BadRequests;
    break;
  case ResponseStatus::Cancelled:
    ++Counters.Cancelled;
    break;
  case ResponseStatus::Poisoned:
    ++Counters.Poisoned;
    break;
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StateM);
  ServerStats S = Counters;
  if (!Latencies.empty()) {
    std::vector<double> Sorted = Latencies;
    std::sort(Sorted.begin(), Sorted.end());
    S.P50Ms = Sorted[Sorted.size() / 2];
    S.P95Ms = Sorted[std::min(Sorted.size() - 1, Sorted.size() * 95 / 100)];
  }
  return S;
}
