//===- service/Server.cpp - Long-running slicing server --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/SandboxWorker.h"
#include "slicer/BatchSlicer.h"
#include "support/Pipe.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <signal.h>
#endif

using namespace jslice;

JsonValue ServerStats::toJson() const {
  JsonValue Out = JsonValue::object();
  Out.set("received", Received);
  Out.set("served", Served);
  Out.set("degraded", Degraded);
  Out.set("refused", Refused);
  Out.set("errors", Errors);
  Out.set("bad_requests", BadRequests);
  Out.set("cancelled", Cancelled);
  Out.set("poisoned", Poisoned);
  Out.set("crashed", Crashed);
  Out.set("shed", Shed);
  Out.set("guard_trips", GuardTrips);
  JsonValue Tiers = JsonValue::object();
  for (const auto &[Tier, N] : TierHistogram)
    Tiers.set(Tier, N);
  Out.set("tiers", std::move(Tiers));
  JsonValue Causes = JsonValue::object();
  for (const auto &[Cause, N] : ShedByCause)
    Causes.set(Cause, N);
  Out.set("shed_by_cause", std::move(Causes));
  Out.set("quarantine_failures", QuarantineFailures);
  Out.set("journal_lost", JournalLost);
  Out.set("journal_corruption", JournalCorruption);
  Out.set("journal_torn_tails", JournalTornTails);
  Out.set("journal_append_failures", JournalAppendFailures);
  Out.set("journal_reopens", JournalReopens);
  Out.set("journal_rotation_failures", JournalRotationFailures);
  Out.set("latency_p50_ms", P50Ms);
  Out.set("latency_p95_ms", P95Ms);
  if (Generation)
    Out.set("generation", Generation);
  if (Epoch)
    Out.set("epoch", Epoch);
  if (Standby)
    Out.set("standby", true);
  {
    JsonValue R = JsonValue::object();
    R.set("shipped", Repl.Shipped);
    R.set("subscribes", Repl.Subscribes);
    R.set("snapshots", Repl.Snapshots);
    R.set("resumes", Repl.Resumes);
    R.set("sync_waits", Repl.SyncWaits);
    R.set("sync_timeouts", Repl.SyncTimeouts);
    R.set("acked_seq", ReplAckedSeq);
    R.set("last_shipped_seq", ReplLastShippedSeq);
    Out.set("replication", std::move(R));
  }
  Out.set("uptime_ms", UptimeMs);
  Out.set("rss_bytes", RssBytes);
  if (MaxRssBytes) {
    Out.set("rss_watermark_bytes", MaxRssBytes);
    Out.set("rss_headroom_bytes",
            RssBytes < MaxRssBytes ? MaxRssBytes - RssBytes : 0);
  }
  Out.set("cache_enabled", CacheEnabled);
  if (CacheEnabled) {
    Out.set("cache", Cache.toJson());
    if (!WorkerCaches.empty()) {
      JsonValue Ws = JsonValue::object();
      for (const auto &[Pid, S] : WorkerCaches)
        Ws.set(std::to_string(Pid), S.toJson());
      Out.set("worker_caches", std::move(Ws));
    }
  }
  Out.set("process_isolation", ProcessIsolation);
  if (ProcessIsolation) {
    JsonValue S = JsonValue::object();
    S.set("spawns", Super.Spawns);
    S.set("restarts", Super.Restarts);
    S.set("crashes", Super.Crashes);
    S.set("hangs", Super.Hangs);
    S.set("breaker_opens", Super.BreakerOpens);
    S.set("breaker_refusals", Super.BreakerRefusals);
    S.set("workers_alive", static_cast<uint64_t>(Super.WorkersAlive));
    Out.set("supervisor", std::move(S));
  }
  return Out;
}

Server::Server(const ServerOptions &Opts, std::ostream &Out, std::ostream &Log)
    : Opts(Opts), Out(Out), Log(Log),
      DefaultSink([this](const std::string &Line) {
        std::lock_guard<std::mutex> Lock(OutM);
        this->Out << Line << "\n" << std::flush;
      }),
      StartTime(std::chrono::steady_clock::now()),
      Pool(Opts.Threads ? Opts.Threads : BatchSlicer::defaultThreads()) {
  StandbyMode.store(Opts.Standby, std::memory_order_relaxed);
  EpochA.store(Opts.Epoch, std::memory_order_relaxed);
  if (!Opts.JournalPath.empty()) {
    Wal.setIo(Opts.JournalIoHook);
    // No on-disk repair while a predecessor generation may still be
    // appending: its in-progress record must not read as a torn tail.
    bool Repair = Opts.PredecessorPid <= 0;
    if (!Wal.open(Opts.JournalPath, Opts.JournalRotateBytes,
                  Opts.JournalSyncPolicy, Opts.JournalFlushIntervalMs,
                  Repair)) {
      Log << "jslice_serve: cannot open journal " << Opts.JournalPath
          << "\n";
      noteJournalFailure();
    } else {
      Wal.setGeneration(Opts.Generation);
      // Fencing epoch: a restarting primary *resumes* its on-disk
      // epoch (never bumps it — only promotion does, which is what
      // lets a promoted standby outrank a resurrected ex-primary
      // forever). A standby stays at 0 until promote().
      uint64_t E = Opts.Epoch;
      if (!E && !Opts.Standby)
        E = std::max<uint64_t>(Wal.maxEpochSeen(), 1);
      Wal.setEpoch(E);
      EpochA.store(E, std::memory_order_relaxed);
      Repl = std::make_unique<ReplicationHub>(Wal, Opts.ReplAck);
      JournalCounters JC = Wal.counters();
      if (JC.TornTails)
        Log << "jslice_serve: journal: truncated a torn tail record "
               "(expected after kill -9 or power loss)\n";
      if (JC.CorruptRecords)
        Log << "jslice_serve: journal: mid-file corruption ("
            << JC.CorruptRecords << " record(s)); damaged file kept as "
            << Opts.JournalPath << ".corrupt, " << JC.SalvagedRecords
            << " record(s) salvaged\n";
    }
  }

  if (Opts.IsolateProcess) {
    SupervisorOptions SOpts = Opts.Super;
    if (!SOpts.Workers)
      SOpts.Workers = Pool.threads();
    SOpts.Exec.DefaultBudget = Opts.DefaultBudget;
    SOpts.Exec.DefaultBudget.Cancel = nullptr; // Never crosses the fork.
    SOpts.Exec.Ladder = Opts.Ladder;
    SOpts.Exec.Cache = Opts.Cache; // Workers build their own.
    Super = std::make_unique<Supervisor>(SOpts);
    if (!Super->start()) {
      Log << "jslice_serve: process isolation unavailable on this "
             "platform; falling back to thread isolation\n";
      Super.reset();
    }
  }
  // Thread mode (including the fallback above) shares one cache
  // across the pool; process-mode workers each own theirs.
  if (!Super && Opts.Cache.Enabled)
    Cache = std::make_unique<AnalysisCache>(Opts.Cache);
}

Server::~Server() {
  Pool.drain();
  if (Super)
    Super->stop();
}

namespace {

/// True while \p Pid names a live process (EPERM still means alive).
bool processAlive(long Pid) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
  return ::kill(static_cast<pid_t>(Pid), 0) == 0 || errno == EPERM;
#else
  (void)Pid;
  return false;
#endif
}

} // namespace

unsigned Server::recover() {
  if (Opts.JournalPath.empty())
    return 0;
  if (Opts.PredecessorPid > 0 && processAlive(Opts.PredecessorPid)) {
    // Mid-upgrade handoff: the unmatched begins in the journal are the
    // predecessor's live in-flight requests, not casualties. Hold
    // rotation (a rewrite from this process would strand appends the
    // predecessor makes through its own handle) and wait for the
    // caller to observe its death or clean exit.
    HandoffPending.store(true, std::memory_order_relaxed);
    Wal.holdRotation(true);
    Log << "jslice_serve: journal handoff: deferring recovery while "
           "generation predecessor (pid " << Opts.PredecessorPid
        << ") still runs\n";
    return 0;
  }
  return recoverNow(/*OnlyEarlierGenerations=*/false);
}

unsigned Server::completeHandoff() {
  if (!HandoffPending.exchange(false, std::memory_order_relaxed))
    return 0;
  Wal.holdRotation(false);
  // Only begins stamped by earlier generations are casualties; this
  // process's own in-flight begins carry its generation stamp.
  return recoverNow(/*OnlyEarlierGenerations=*/true);
}

void Server::holdJournalRotation(bool Hold) { Wal.holdRotation(Hold); }

unsigned Server::recoverNow(bool OnlyEarlierGenerations) {
  std::vector<PoisonedRequest> Poisoned = scanJournal(Opts.JournalPath);
  unsigned N = 0;
  for (const PoisonedRequest &P : Poisoned) {
    if (OnlyEarlierGenerations && P.Gen >= Opts.Generation)
      continue;
    std::string Repro = quarantinePoisoned(Opts.QuarantineDir, P);
    {
      std::lock_guard<std::mutex> Lock(StateM);
      std::string Key = P.Request.contentKey();
      PoisonKeys.insert(Key);
      if (!Repro.empty())
        PoisonRepros[Key] = Repro;
      else
        ++Counters.QuarantineFailures;
    }
    if (Repro.empty()) {
      // The reproducer never reached the disk (ENOSPC, permissions),
      // so the journal begin is still the only durable record of this
      // poison. Leave it unmatched — the next boot retries — and keep
      // the in-memory refusal armed for this run.
      Log << "jslice_serve: FAILED to quarantine in-flight request \""
          << P.Id << "\"; leaving its journal record for the next boot\n";
      continue;
    }
    // Close the journal pair so the *next* restart does not quarantine
    // it again: the quarantine files are now the durable record.
    Wal.end(P.Id, "poisoned");
    Log << "jslice_serve: quarantined in-flight request \"" << P.Id << "\""
        << " -> " << Repro << "\n";
    ++N;
  }
  // Every recovered pair is now bracketed; drop the history so the
  // journal restarts minimal instead of replaying an ever-longer
  // prefix on each boot.
  Wal.compact();
  return N;
}

namespace {

/// getline with a ceiling: reads one '\n'-terminated line into \p Line
/// but stops accumulating at \p Cap bytes — the rest of an oversized
/// line is discarded, \p Overflowed is set, and the stream is left at
/// the next line. Returns false only at EOF with nothing read. This is
/// the stdin/file twin of the TCP reader's cap: an adversarial input
/// with no newline can no longer grow the buffer without limit.
bool readLineBounded(std::istream &In, std::string &Line, uint64_t Cap,
                     bool &Overflowed) {
  Line.clear();
  Overflowed = false;
  std::streambuf *SB = In.rdbuf();
  int C = SB->sbumpc();
  if (C == std::char_traits<char>::eof()) {
    In.setstate(std::ios::eofbit);
    return false;
  }
  for (; C != std::char_traits<char>::eof(); C = SB->sbumpc()) {
    if (C == '\n')
      return true;
    if (!Overflowed) {
      Line.push_back(static_cast<char>(C));
      if (Cap && Line.size() > Cap) {
        Overflowed = true;
        Line.clear();
      }
    }
  }
  In.setstate(std::ios::eofbit);
  return true; // Final unterminated line.
}

} // namespace

void Server::serve(std::istream &In) {
  std::string Line;
  bool Overflowed = false;
  while (readLineBounded(In, Line, Opts.MaxLineBytes, Overflowed)) {
    if (Opts.ShutdownFlag &&
        Opts.ShutdownFlag->load(std::memory_order_relaxed)) {
      Draining.store(true, std::memory_order_relaxed);
      break;
    }
    if (Overflowed)
      refuseOversizedLine();
    else
      serveLine(Line);
  }
  Pool.drain();
}

void Server::serveLine(const std::string &Line) {
  serveLine(Line, DefaultSink);
}

void Server::refuseOversizedLine() { refuseOversizedLine(DefaultSink); }

void Server::refuseOversizedLine(const ResponseSink &Sink) {
  {
    std::lock_guard<std::mutex> Lock(StateM);
    ++Counters.Received;
  }
  ServiceResponse Resp;
  Resp.Status = ResponseStatus::Shed;
  Resp.Error = "request line exceeds the " +
               std::to_string(Opts.MaxLineBytes) + "-byte cap";
  writeResponse(Resp, Sink);
  recordOutcome(Resp.Status, "", false, -1, 0, "line-cap");
}

bool Server::serveLine(const std::string &Line, ResponseSink Sink) {
  if (Line.empty() || Line.find_first_not_of(" \t\r") == std::string::npos)
    return true;
  if (Opts.MaxLineBytes && Line.size() > Opts.MaxLineBytes) {
    refuseOversizedLine(Sink);
    return true;
  }
  ParsedRequest P = parseRequestLine(Line);

  // Health probes bypass every lock by design: a load balancer must
  // get its liveness answer even while a stats snapshot (or anything
  // else holding StateM) is in progress — so they are also deliberately
  // absent from the Received counter.
  if (P.Ok && P.Request.Kind == RequestKind::Health) {
    Sink(healthJson().str());
    return true;
  }

  {
    std::lock_guard<std::mutex> Lock(StateM);
    ++Counters.Received;
  }

  if (!P.Ok) {
    ServiceResponse R;
    R.Id = P.Id;
    R.Status = ResponseStatus::BadRequest;
    R.Error = P.Error;
    writeResponse(R, Sink);
    recordOutcome(R.Status, "", false, -1, 0);
    return true;
  }

  switch (P.Request.Kind) {
  case RequestKind::Stats: {
    JsonValue V = JsonValue::object();
    V.set("status", "ok");
    JsonValue S = stats().toJson();
    if (TransportStatsFn)
      S.set("transport", TransportStatsFn());
    V.set("stats", std::move(S));
    Sink(V.str());
    break;
  }
  case RequestKind::Health:
    break; // Answered above, before the counter lock.
  case RequestKind::Upgrade: {
    JsonValue V = JsonValue::object();
    if (Opts.UpgradeFlag) {
      Opts.UpgradeFlag->store(true, std::memory_order_relaxed);
      V.set("status", "ok");
      V.set("upgrade", "requested");
    } else {
      V.set("status", "error");
      V.set("upgrade", "unsupported");
      V.set("error", "no upgrade orchestrator on this transport");
    }
    Sink(V.str());
    break;
  }
  case RequestKind::Cancel:
    handleCancel(P.Request, Sink);
    break;
  case RequestKind::Promote: {
    bool WasStandby = standby();
    unsigned Quarantined = 0;
    uint64_t E = promote(&Quarantined);
    JsonValue V = JsonValue::object();
    V.set("status", "ok");
    V.set("promoted", WasStandby);
    V.set("epoch", E);
    if (WasStandby)
      V.set("quarantined", static_cast<uint64_t>(Quarantined));
    else
      V.set("note", "already primary");
    Sink(V.str());
    break;
  }
  case RequestKind::ReplSubscribe: {
    if (!Repl) {
      JsonValue V = JsonValue::object();
      V.set("status", "error");
      V.set("error", "replication requires a journal (--journal)");
      Sink(V.str());
      break;
    }
    // The sink becomes a long-lived record stream; the hello frame the
    // hub writes during catch-up is this line's response. TCP sinks
    // hold their connection state by shared_ptr, so a standby that
    // disconnects just swallows late frames until eviction.
    Repl->subscribe(P.Request.ReplFromSeq, Sink);
    break;
  }
  case RequestKind::ReplAck:
    // One-way by design: an ack response would interleave with record
    // frames on the replication connection. Tell the transport no
    // response is coming so its pending-response count stays honest.
    if (Repl)
      Repl->ack(P.Request.AckSeq);
    return false;
  case RequestKind::Slice: {
    ServiceRequest R = std::move(P.Request);

    // Overload control first: a shed must be cheap — no registry
    // entry, no journal record, no worker.
    if (StandbyMode.load(std::memory_order_relaxed)) {
      shedResponse(R,
                   "standby: warm but not serving until promoted "
                   "(failover target)",
                   "standby", Sink);
      break;
    }
    if (R.MinEpoch &&
        EpochA.load(std::memory_order_relaxed) < R.MinEpoch) {
      // The client has already failed over to a higher-epoch
      // successor; a resurrected ex-primary must refuse, not
      // double-serve (split brain).
      shedResponse(R,
                   "fenced: server epoch " + std::to_string(epoch()) +
                       " is below the request's min_epoch " +
                       std::to_string(R.MinEpoch),
                   "fenced", Sink);
      break;
    }
    if (Draining.load(std::memory_order_relaxed)) {
      shedResponse(R, "server draining for shutdown", "draining", Sink);
      break;
    }
    if (!Opts.JournalPath.empty() &&
        JournalLost.load(std::memory_order_relaxed) &&
        Opts.JournalFailurePolicy == JournalFailure::Degrade &&
        Opts.JournalReattachIntervalMs)
      maybeReattachJournal();
    if (!Opts.JournalPath.empty() &&
        JournalLost.load(std::memory_order_relaxed) &&
        Opts.JournalFailurePolicy != JournalFailure::Degrade) {
      // The journal is gone and the policy says it is load-bearing:
      // a request served without a begin record would be invisible to
      // crash recovery. Refuse deterministically (Abort additionally
      // tripped the drain flag when the failure latched).
      shedResponse(R,
                   "write-ahead journal failed "
                   "(--journal-failure=shed): refusing to serve "
                   "unjournaled requests",
                   "journal-failed", Sink);
      break;
    }
    if (Opts.MaxQueueDepth &&
        QueueDepth.load(std::memory_order_relaxed) >= Opts.MaxQueueDepth) {
      shedResponse(R, "admission queue full", "queue-full", Sink);
      break;
    }
    if (Opts.MaxRssMb && currentRssMb() > Opts.MaxRssMb) {
      // Watermark-coupled eviction: drop cached artifacts before
      // refusing work. The freed memory may not leave the RSS number
      // immediately (the allocator keeps pages), so having evicted
      // anything at all is grounds to admit this request and let the
      // next admission re-measure; only an empty cache sheds.
      uint64_t Evicted =
          Cache ? Cache->evictToward(Cache->bytes() / 2) : 0;
      if (!Evicted) {
        shedResponse(R, "memory watermark exceeded", "rss-watermark", Sink);
        break;
      }
      Log << "jslice_serve: rss watermark tripped; evicted " << Evicted
          << " cached artifact(s)\n";
    }

    std::string PoisonRepro;
    bool IsPoisoned = false;
    bool Duplicate = false;
    std::shared_ptr<InFlight> Flight;
    {
      std::lock_guard<std::mutex> Lock(StateM);
      std::string Key = R.contentKey();
      if (PoisonKeys.count(Key) ||
          (!ProgramPoison.empty() &&
           ProgramPoison.count(rawProgramKey(R.Program)))) {
        IsPoisoned = true;
        auto It = PoisonRepros.find(Key);
        if (It != PoisonRepros.end())
          PoisonRepro = It->second;
      } else if (Registry.count(R.Id)) {
        Duplicate = true;
      } else {
        Flight = std::make_shared<InFlight>();
        Flight->Enqueued = std::chrono::steady_clock::now();
        Registry[R.Id] = Flight;
      }
    }

    if (IsPoisoned) {
      ServiceResponse Resp;
      Resp.Id = R.Id;
      Resp.Status = ResponseStatus::Poisoned;
      Resp.Error = "request matches a quarantined reproducer from a "
                   "previous crashed run";
      Resp.ReproPath = PoisonRepro;
      writeResponse(Resp, Sink);
      recordOutcome(Resp.Status, "", false, -1, 0);
      break;
    }
    if (Duplicate) {
      ServiceResponse Resp;
      Resp.Id = R.Id;
      Resp.Status = ResponseStatus::BadRequest;
      Resp.Error = "request id already in flight";
      writeResponse(Resp, Sink);
      recordOutcome(Resp.Status, "", false, -1, 0);
      break;
    }

    // Write-ahead: the begin record must be durable before any
    // slicing work can crash the process. An append failure here is
    // the disk speaking; the --journal-failure policy answers.
    uint64_t BeginSeq = 0;
    if (!Opts.JournalPath.empty() &&
        !JournalLost.load(std::memory_order_relaxed) &&
        !Wal.begin(R, &BeginSeq)) {
      noteJournalFailure();
      if (Opts.JournalFailurePolicy != JournalFailure::Degrade) {
        {
          std::lock_guard<std::mutex> Lock(StateM);
          Registry.erase(R.Id);
        }
        shedResponse(R,
                     "write-ahead journal failed while recording this "
                     "request (--journal-failure=" +
                         std::string(journalFailureName(
                             Opts.JournalFailurePolicy)) +
                         ")",
                     "journal-failed", Sink);
        break;
      }
      // Degrade: serve on; the journal is marked lost and {"health"}
      // says so.
    }
    QueueDepth.fetch_add(1, std::memory_order_relaxed);
    bool Hang = !Opts.HangAfterBeginId.empty() &&
                R.Id == Opts.HangAfterBeginId;
    // --repl-ack=sync: hold the response (bounded) until a standby has
    // durably applied the begin record. The wait runs on the pool
    // thread, never the reactor — the reactor must stay free to read
    // the subscriber connection that delivers the very ack being
    // waited on. A timeout or missing standby opens a counted loss
    // window; it never blocks serving.
    bool AwaitAck =
        BeginSeq != 0 && Repl && Repl->policy() == ReplAckPolicy::Sync;
    Pool.submit([this, R = std::move(R), Hang, AwaitAck, BeginSeq,
                 Sink = std::move(Sink)]() mutable {
      if (Hang)
        std::this_thread::sleep_for(std::chrono::hours(1));
      if (AwaitAck)
        Repl->waitAcked(BeginSeq, Opts.ReplAckTimeoutMs);
      handleSlice(std::move(R), Sink);
    });
    break;
  }
  }
  return true;
}

void Server::finish() {
  Pool.drain();
  if (Super)
    Super->stop();
  if (Wal.enabled())
    Wal.shutdownRecord();
}

void Server::shedResponse(const ServiceRequest &R, const std::string &Why,
                          const char *Cause, const ResponseSink &Sink) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Status = ResponseStatus::Shed;
  Resp.Error = Why;
  writeResponse(Resp, Sink);
  recordOutcome(Resp.Status, "", false, -1, 0, Cause);
}

uint64_t Server::promote(unsigned *QuarantinedOut) {
  if (QuarantinedOut)
    *QuarantinedOut = 0;
  std::lock_guard<std::mutex> Lock(PromoteM);
  if (!StandbyMode.load(std::memory_order_relaxed))
    return EpochA.load(std::memory_order_relaxed);
  // Quiesce the tail first: recovery must scan a replica journal that
  // nothing is appending to.
  if (PromoteHook)
    PromoteHook();
  // Fence the old primary: outrank every epoch this replica ever saw.
  // A resurrected ex-primary resumes its old (lower) epoch and sheds
  // any request carrying our epoch as min_epoch.
  uint64_t E = std::max(Wal.maxEpochSeen(),
                        EpochA.load(std::memory_order_relaxed)) +
               1;
  Wal.setEpoch(E);
  EpochA.store(E, std::memory_order_relaxed);
  unsigned N = 0;
  if (!Opts.JournalPath.empty() &&
      !JournalLost.load(std::memory_order_relaxed))
    N = recoverNow(/*OnlyEarlierGenerations=*/false);
  StandbyMode.store(false, std::memory_order_relaxed);
  Log << "jslice_serve: promoted to primary at epoch " << E << " (" << N
      << " in-flight request(s) quarantined from the dead primary)\n";
  if (QuarantinedOut)
    *QuarantinedOut = N;
  return E;
}

void Server::maybeReattachJournal() {
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  uint64_t Last = LastReattachMs.load(std::memory_order_relaxed);
  if (Last && Now - Last < Opts.JournalReattachIntervalMs)
    return;
  // One probe per interval across all serving threads.
  if (!LastReattachMs.compare_exchange_strong(Last, Now,
                                              std::memory_order_relaxed))
    return;
  if (Wal.tryReattach()) {
    JournalLost.store(false, std::memory_order_relaxed);
    Log << "jslice_serve: journal " << Opts.JournalPath
        << " reattached after failure; resuming journaling\n";
  }
}

void Server::noteJournalFailure() {
  if (JournalLost.exchange(true, std::memory_order_relaxed))
    return;
  const char *Action = "refusing new requests until restart";
  switch (Opts.JournalFailurePolicy) {
  case JournalFailure::Shed:
    break;
  case JournalFailure::Degrade:
    Action = "serving on with the journal marked lost";
    break;
  case JournalFailure::Abort:
    Action = "aborting into a clean drain";
    JournalAborted.store(true, std::memory_order_relaxed);
    if (Opts.AbortFlag)
      Opts.AbortFlag->store(true, std::memory_order_relaxed);
    break;
  }
  Log << "jslice_serve: journal " << Opts.JournalPath
      << " failed persistently; --journal-failure="
      << journalFailureName(Opts.JournalFailurePolicy) << ": " << Action
      << "\n";
}

void Server::handleCancel(const ServiceRequest &R,
                          const ResponseSink &Sink) {
  bool Signalled = false;
  {
    std::lock_guard<std::mutex> Lock(StateM);
    auto It = Registry.find(R.CancelTarget);
    if (It != Registry.end()) {
      It->second->Cancel.store(true, std::memory_order_relaxed);
      Signalled = true;
    }
  }
  JsonValue V = JsonValue::object();
  V.set("cancel", R.CancelTarget);
  V.set("status", "ok");
  V.set("signalled", Signalled);
  Sink(V.str());
}

void Server::handleSliceInProcess(ServiceRequest R, ServiceResponse &Resp,
                                  const std::shared_ptr<InFlight> &Flight,
                                  uint64_t &RungTrips) {
  ExecConfig Cfg;
  Cfg.DefaultBudget = Opts.DefaultBudget;
  Cfg.Ladder = Opts.Ladder;
  Cfg.Cache = Opts.Cache;
  Resp = executeSliceRequest(R, Cfg, Flight ? &Flight->Cancel : nullptr,
                             &RungTrips, Cache.get());
}

/// Ships the request to a sandbox worker. Returns true when \p
/// RawResponse holds the worker's own response line (pass it through);
/// false when \p Resp was synthesized here (crash, breaker, failure).
bool Server::handleSliceSandboxed(const ServiceRequest &R,
                                  ServiceResponse &Resp,
                                  std::string &RawResponse,
                                  uint64_t &RungTrips) {
  // Worst-case ladder latency: the geometric deadline ladder sums to
  // < 2x the first rung; 3x plus slack covers scheduling noise
  // without masking a genuine hang for long.
  uint64_t D = R.BudgetMs ? R.BudgetMs : Opts.DefaultBudget.DeadlineMs;
  int64_t TimeoutMs = D ? static_cast<int64_t>(3 * D + 500) : 0;

  DispatchResult Res = Super->dispatch(R, TimeoutMs);
  switch (Res.K) {
  case DispatchResult::Kind::Served: {
    std::optional<JsonValue> V = JsonValue::parse(Res.ResponseJson);
    const JsonValue *Status = V ? V->find("status") : nullptr;
    std::optional<ResponseStatus> S =
        Status && Status->isString()
            ? responseStatusByName(Status->asString())
            : std::nullopt;
    if (!V || !S) {
      // A worker that answers garbage is as broken as one that died.
      Resp.Status = ResponseStatus::Error;
      Resp.Error = "sandbox worker returned an unparseable response";
      return false;
    }
    Resp.Status = *S;
    if (const JsonValue *Tier = V->find("served_tier"))
      if (Tier->isString())
        Resp.ServedTier = Tier->asString();
    if (const JsonValue *Deg = V->find("degraded"))
      if (Deg->isBool())
        Resp.Degraded = Deg->asBool();
    if (const JsonValue *Attempts = V->find("attempts"))
      if (Attempts->isArray())
        for (const JsonValue &A : Attempts->elements())
          if (const JsonValue *O = A.find("outcome"))
            RungTrips += O->isString() &&
                         O->asString() == "resource-exhausted";
    // Peel off the piggybacked per-worker cache counters: they are
    // operator telemetry for {"stats"}, not part of the caller's
    // response.
    if (const JsonValue *WC = V->find("worker_cache")) {
      int64_t Pid = 0;
      if (const JsonValue *WP = V->find("worker_pid"))
        if (WP->isNumber())
          Pid = WP->asInt();
      if (std::optional<CacheStats> Snap = CacheStats::fromJson(*WC)) {
        std::lock_guard<std::mutex> Lock(StateM);
        WorkerCacheSnapshots[Pid] = *Snap;
      }
      V->remove("worker_cache");
      V->remove("worker_pid");
      RawResponse = V->str();
    } else {
      RawResponse = std::move(Res.ResponseJson);
    }
    return true;
  }
  case DispatchResult::Kind::Crashed:
    Resp.Status = ResponseStatus::Crashed;
    Resp.Error = "sandbox worker " +
                 (Res.CrashDetail.empty() ? std::string("died")
                                          : Res.CrashDetail);
    quarantineCrashed(R, Resp);
    return false;
  case DispatchResult::Kind::BreakerOpen:
    Resp.Status = ResponseStatus::Shed;
    Resp.Error = Res.CrashDetail;
    return false;
  case DispatchResult::Kind::Failed:
    Resp.Status = ResponseStatus::Error;
    Resp.Error = "process isolation unavailable: " + Res.CrashDetail;
    return false;
  }
  Resp.Status = ResponseStatus::Error;
  Resp.Error = "unknown dispatch outcome";
  return false;
}

/// A crash quarantines the request exactly like journal recovery
/// would: reproducer on disk, content key armed, resubmission refused.
void Server::quarantineCrashed(const ServiceRequest &R,
                               ServiceResponse &Resp) {
  PoisonedRequest P;
  P.Id = R.Id;
  P.Request = R;
  std::string Repro = quarantinePoisoned(Opts.QuarantineDir, P);
  {
    std::lock_guard<std::mutex> Lock(StateM);
    std::string Key = R.contentKey();
    PoisonKeys.insert(Key);
    if (!Repro.empty())
      PoisonRepros[Key] = Repro;
    else
      ++Counters.QuarantineFailures;
    // Program-level escalation: two crashes on the same source (any
    // criterion) quarantine the whole program, refusing it at
    // admission before it can reach another worker — and with it that
    // worker's analysis cache. Raw-byte key only: parsing a
    // worker-killing program in the server is how the server joins
    // the casualty list.
    if (++ProgramCrashCounts[rawProgramKey(R.Program)] >= 2)
      ProgramPoison.insert(rawProgramKey(R.Program));
  }
  Resp.ReproPath = Repro;
  Log << "jslice_serve: worker crashed on request \"" << R.Id << "\" ("
      << Resp.Error << ")" << (Repro.empty() ? "" : " -> " + Repro) << "\n";
}

void Server::handleSlice(ServiceRequest R, const ResponseSink &Sink) {
  std::shared_ptr<InFlight> Flight;
  {
    std::lock_guard<std::mutex> Lock(StateM);
    auto It = Registry.find(R.Id);
    if (It != Registry.end()) {
      Flight = It->second;
      Flight->Started.store(true, std::memory_order_relaxed);
    }
  }

  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Requested = algorithmName(R.Algorithm);

  auto Start = std::chrono::steady_clock::now();
  uint64_t RungTrips = 0;
  bool Raw = false;
  std::string RawResponse;

  double QueuedMs =
      Flight ? std::chrono::duration<double, std::milli>(
                   Start - Flight->Enqueued)
                   .count()
             : 0;

  std::string ShedCause;
  if (Flight && Flight->Cancel.load(std::memory_order_relaxed)) {
    // Cancelled while still queued: never ran, nothing to report.
    Resp.Status = ResponseStatus::Cancelled;
    Resp.Error = "cancelled before execution";
  } else if (Opts.QueueDeadlineMs &&
             QueuedMs > static_cast<double>(Opts.QueueDeadlineMs)) {
    // The caller gave up on this request long ago; running it now
    // only steals a worker from a request that can still be saved.
    Resp.Status = ResponseStatus::Shed;
    Resp.Error = "queue deadline exceeded before execution";
    ShedCause = "queue-deadline";
  } else if (Super) {
    Raw = handleSliceSandboxed(R, Resp, RawResponse, RungTrips);
    if (Resp.Status == ResponseStatus::Shed)
      ShedCause = "breaker-open"; // The only shed the sandbox path emits.
  } else {
    handleSliceInProcess(std::move(R), Resp, Flight, RungTrips);
  }

  double LatencyMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  Resp.LatencyMs = LatencyMs;

  if (!Opts.JournalPath.empty() &&
      !JournalLost.load(std::memory_order_relaxed) &&
      !Wal.end(Resp.Id, responseStatusName(Resp.Status)))
    noteJournalFailure();
  if (Raw) {
    // Pass the worker's line through, stamped with the latency the
    // caller actually experienced (IPC included).
    std::optional<JsonValue> V = JsonValue::parse(RawResponse);
    if (V) {
      V->set("latency_ms", LatencyMs);
      Sink(V->str());
    } else {
      Sink(RawResponse);
    }
  } else {
    writeResponse(Resp, Sink);
  }
  recordOutcome(Resp.Status, Resp.ServedTier, Resp.Degraded, LatencyMs,
                RungTrips, ShedCause);

  {
    std::lock_guard<std::mutex> Lock(StateM);
    Registry.erase(Resp.Id);
  }
  QueueDepth.fetch_sub(1, std::memory_order_relaxed);
}

void Server::writeResponse(const ServiceResponse &R,
                           const ResponseSink &Sink) {
  Sink(R.str());
}

void Server::recordOutcome(ResponseStatus Status,
                           const std::string &ServedTier, bool Degraded,
                           double LatencyMs, uint64_t RungTrips,
                           const std::string &ShedCause) {
  std::lock_guard<std::mutex> Lock(StateM);
  Counters.GuardTrips += RungTrips;
  if (!ShedCause.empty())
    ++Counters.ShedByCause[ShedCause];
  if (LatencyMs >= 0)
    Latencies.push_back(LatencyMs);
  switch (Status) {
  case ResponseStatus::Ok:
    ++Counters.Served;
    if (Degraded)
      ++Counters.Degraded;
    ++Counters.TierHistogram[ServedTier];
    break;
  case ResponseStatus::ResourceExhausted:
    ++Counters.Refused;
    break;
  case ResponseStatus::Error:
    ++Counters.Errors;
    break;
  case ResponseStatus::BadRequest:
    ++Counters.BadRequests;
    break;
  case ResponseStatus::Cancelled:
    ++Counters.Cancelled;
    break;
  case ResponseStatus::Poisoned:
    ++Counters.Poisoned;
    break;
  case ResponseStatus::Crashed:
    ++Counters.Crashed;
    break;
  case ResponseStatus::Shed:
    ++Counters.Shed;
    break;
  }
}

JsonValue Server::healthJson() const {
  JsonValue V = JsonValue::object();
  bool Degraded = false;
  V.set("uptime_ms",
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - StartTime)
                .count()));
  if (Opts.Generation)
    V.set("generation", Opts.Generation);
  bool Standby = StandbyMode.load(std::memory_order_relaxed);
  V.set("role", Standby ? "standby" : "primary");
  uint64_t E = EpochA.load(std::memory_order_relaxed);
  if (E)
    V.set("epoch", E);
  bool Drain = Draining.load(std::memory_order_relaxed);
  V.set("draining", Drain);
  Degraded |= Drain;
  bool Breaker = Super && Super->breakerOpenNow();
  V.set("breaker_open", Breaker);
  Degraded |= Breaker;
  if (!Opts.JournalPath.empty()) {
    bool Lost = JournalLost.load(std::memory_order_relaxed);
    V.set("journal", Lost ? "lost" : "ok");
    Degraded |= Lost;
  }
  V.set("handoff_pending", HandoffPending.load(std::memory_order_relaxed));
  if (ReplProbeFn)
    V.set("replication", ReplProbeFn());
  if (HealthProbeFn) {
    JsonValue T = HealthProbeFn();
    if (const JsonValue *W = T.find("wedged"))
      Degraded |= W->isBool() && W->asBool();
    V.set("transport", std::move(T));
  }
  V.set("status", "ok");
  if (Degraded)
    V.set("degraded", true);
  return V;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StateM);
  ServerStats S = Counters;
  S.Generation = Opts.Generation;
  S.Epoch = EpochA.load(std::memory_order_relaxed);
  S.Standby = StandbyMode.load(std::memory_order_relaxed);
  if (Repl) {
    S.Repl = Repl->counters();
    S.ReplAckedSeq = Repl->ackedSeq();
    S.ReplLastShippedSeq = Repl->lastShippedSeq();
  }
  S.UptimeMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
  if (!Latencies.empty()) {
    std::vector<double> Sorted = Latencies;
    std::sort(Sorted.begin(), Sorted.end());
    S.P50Ms = Sorted[Sorted.size() / 2];
    S.P95Ms = Sorted[std::min(Sorted.size() - 1, Sorted.size() * 95 / 100)];
  }
  S.ProcessIsolation = Super != nullptr;
  if (Super)
    S.Super = Super->stats();
  if (!Opts.JournalPath.empty()) {
    JournalCounters JC = Wal.counters();
    S.JournalAppendFailures = JC.AppendFailures;
    S.JournalReopens = JC.Reopens;
    S.JournalCorruption = JC.CorruptRecords;
    S.JournalTornTails = JC.TornTails;
    S.JournalRotationFailures = JC.RotationFailures;
    S.JournalLost = JournalLost.load(std::memory_order_relaxed);
  }
  S.RssBytes = currentRssMb() << 20;
  S.MaxRssBytes = Opts.MaxRssMb << 20;
  S.CacheEnabled = Opts.Cache.Enabled;
  if (Cache) {
    S.Cache = Cache->stats();
  } else if (Opts.Cache.Enabled) {
    S.WorkerCaches = WorkerCacheSnapshots;
    for (const auto &[Pid, Snap] : S.WorkerCaches)
      S.Cache.add(Snap);
  }
  return S;
}
