//===- service/Request.cpp - Slicing-service wire protocol -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Request.h"

#include <cstdio>
#include <functional>
#include <optional>

using namespace jslice;

namespace {

std::optional<SliceAlgorithm> algorithmByName(const std::string &Name) {
  static const SliceAlgorithm All[] = {
      SliceAlgorithm::Conventional,    SliceAlgorithm::Agrawal,
      SliceAlgorithm::AgrawalLst,      SliceAlgorithm::Structured,
      SliceAlgorithm::Conservative,    SliceAlgorithm::BallHorwitz,
      SliceAlgorithm::Lyle,            SliceAlgorithm::Gallagher,
      SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser,
  };
  for (SliceAlgorithm A : All)
    if (Name == algorithmName(A))
      return A;
  return std::nullopt;
}

/// Positive integer field; false on wrong type or negative value.
bool readCount(const JsonValue &V, uint64_t &Out) {
  if (!V.isNumber() || V.asInt() < 0)
    return false;
  Out = static_cast<uint64_t>(V.asInt());
  return true;
}

} // namespace

std::string ServiceRequest::contentKey() const {
  std::string Material = Program;
  Material += '\x1f';
  Material += std::to_string(Line);
  for (const std::string &V : Vars) {
    Material += '\x1f';
    Material += V;
  }
  Material += '\x1f';
  Material += algorithmName(Algorithm);
  size_t H = std::hash<std::string>{}(Material);
  char Buf[2 * sizeof(size_t) + 1];
  std::snprintf(Buf, sizeof(Buf), "%zx", H);
  return Buf;
}

JsonValue ServiceRequest::toJson() const {
  JsonValue Out = JsonValue::object();
  switch (Kind) {
  case RequestKind::Slice: {
    Out.set("id", Id);
    Out.set("program", Program);
    Out.set("line", static_cast<int64_t>(Line));
    if (!Vars.empty()) {
      JsonValue Vs = JsonValue::array();
      for (const std::string &V : Vars)
        Vs.push(V);
      Out.set("vars", std::move(Vs));
    }
    Out.set("algorithm", algorithmName(Algorithm));
    if (BudgetMs)
      Out.set("budget_ms", BudgetMs);
    if (MaxSteps)
      Out.set("max_steps", MaxSteps);
    if (MinEpoch)
      Out.set("min_epoch", MinEpoch);
    break;
  }
  case RequestKind::Cancel:
    Out.set("cancel", CancelTarget);
    break;
  case RequestKind::Stats:
    Out.set("stats", true);
    break;
  case RequestKind::Health:
    Out.set("health", true);
    break;
  case RequestKind::Upgrade:
    Out.set("upgrade", true);
    break;
  case RequestKind::Promote:
    Out.set("promote", true);
    break;
  case RequestKind::ReplSubscribe:
    Out.set("repl_subscribe", ReplFromSeq);
    break;
  case RequestKind::ReplAck:
    Out.set("repl_ack", AckSeq);
    break;
  }
  return Out;
}

bool jslice::requestFromJson(const JsonValue &V, ServiceRequest &Out) {
  if (!V.isObject())
    return false;
  const JsonValue *Id = V.find("id");
  const JsonValue *Program = V.find("program");
  const JsonValue *Line = V.find("line");
  if (!Id || !Id->isString() || !Program || !Program->isString() || !Line ||
      !Line->isNumber() || Line->asInt() <= 0)
    return false;
  Out.Kind = RequestKind::Slice;
  Out.Id = Id->asString();
  Out.Program = Program->asString();
  Out.Line = static_cast<unsigned>(Line->asInt());
  Out.Vars.clear();
  if (const JsonValue *Vars = V.find("vars")) {
    if (!Vars->isArray())
      return false;
    for (const JsonValue &Var : Vars->elements()) {
      if (!Var.isString() || Var.asString().empty())
        return false;
      Out.Vars.push_back(Var.asString());
    }
  }
  Out.Algorithm = SliceAlgorithm::Agrawal;
  if (const JsonValue *Algo = V.find("algorithm")) {
    if (!Algo->isString())
      return false;
    std::optional<SliceAlgorithm> Parsed = algorithmByName(Algo->asString());
    if (!Parsed)
      return false;
    Out.Algorithm = *Parsed;
  }
  Out.BudgetMs = 0;
  Out.MaxSteps = 0;
  Out.MinEpoch = 0;
  if (const JsonValue *B = V.find("budget_ms"))
    if (!readCount(*B, Out.BudgetMs))
      return false;
  if (const JsonValue *S = V.find("max_steps"))
    if (!readCount(*S, Out.MaxSteps))
      return false;
  if (const JsonValue *E = V.find("min_epoch"))
    if (!readCount(*E, Out.MinEpoch))
      return false;
  return true;
}

ParsedRequest jslice::parseRequestLine(const std::string &Line) {
  ParsedRequest Out;
  std::string JsonError;
  std::optional<JsonValue> V = JsonValue::parse(Line, &JsonError);
  if (!V) {
    Out.Error = "invalid JSON: " + JsonError;
    return Out;
  }
  if (!V->isObject()) {
    Out.Error = "request must be a JSON object";
    return Out;
  }
  if (const JsonValue *Id = V->find("id"))
    if (Id->isString())
      Out.Id = Id->asString();

  if (const JsonValue *Cancel = V->find("cancel")) {
    if (!Cancel->isString() || Cancel->asString().empty()) {
      Out.Error = "\"cancel\" must name a request id";
      return Out;
    }
    Out.Ok = true;
    Out.Request.Kind = RequestKind::Cancel;
    Out.Request.CancelTarget = Cancel->asString();
    return Out;
  }
  if (V->find("stats")) {
    Out.Ok = true;
    Out.Request.Kind = RequestKind::Stats;
    return Out;
  }
  if (V->find("health")) {
    Out.Ok = true;
    Out.Request.Kind = RequestKind::Health;
    return Out;
  }
  if (V->find("upgrade")) {
    Out.Ok = true;
    Out.Request.Kind = RequestKind::Upgrade;
    return Out;
  }
  if (V->find("promote")) {
    Out.Ok = true;
    Out.Request.Kind = RequestKind::Promote;
    return Out;
  }
  if (const JsonValue *Sub = V->find("repl_subscribe")) {
    if (!readCount(*Sub, Out.Request.ReplFromSeq)) {
      Out.Error = "\"repl_subscribe\" must be a non-negative sequence";
      return Out;
    }
    Out.Ok = true;
    Out.Request.Kind = RequestKind::ReplSubscribe;
    return Out;
  }
  if (const JsonValue *Ack = V->find("repl_ack")) {
    if (!readCount(*Ack, Out.Request.AckSeq)) {
      Out.Error = "\"repl_ack\" must be a non-negative sequence";
      return Out;
    }
    Out.Ok = true;
    Out.Request.Kind = RequestKind::ReplAck;
    return Out;
  }

  if (!V->find("id") || !V->find("id")->isString() ||
      V->find("id")->asString().empty()) {
    Out.Error = "slice request requires a string \"id\"";
    return Out;
  }
  if (!V->find("program") || !V->find("program")->isString()) {
    Out.Error = "slice request requires a string \"program\"";
    return Out;
  }
  if (!V->find("line") || !V->find("line")->isNumber() ||
      V->find("line")->asInt() <= 0) {
    Out.Error = "slice request requires a positive \"line\"";
    return Out;
  }
  if (!requestFromJson(*V, Out.Request)) {
    Out.Error = "malformed field (vars must be non-empty strings, "
                "algorithm a known name, budgets non-negative numbers)";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

const char *jslice::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::ResourceExhausted:
    return "resource-exhausted";
  case ResponseStatus::Error:
    return "error";
  case ResponseStatus::BadRequest:
    return "bad-request";
  case ResponseStatus::Cancelled:
    return "cancelled";
  case ResponseStatus::Poisoned:
    return "poisoned";
  case ResponseStatus::Crashed:
    return "crashed";
  case ResponseStatus::Shed:
    return "shed";
  }
  return "error";
}

std::optional<ResponseStatus>
jslice::responseStatusByName(const std::string &Name) {
  static const ResponseStatus All[] = {
      ResponseStatus::Ok,        ResponseStatus::ResourceExhausted,
      ResponseStatus::Error,     ResponseStatus::BadRequest,
      ResponseStatus::Cancelled, ResponseStatus::Poisoned,
      ResponseStatus::Crashed,   ResponseStatus::Shed,
  };
  for (ResponseStatus S : All)
    if (Name == responseStatusName(S))
      return S;
  return std::nullopt;
}

std::string ServiceResponse::str() const {
  JsonValue Out = JsonValue::object();
  if (!Id.empty())
    Out.set("id", Id);
  Out.set("status", responseStatusName(Status));
  if (!Requested.empty())
    Out.set("requested", Requested);
  if (Status == ResponseStatus::Ok) {
    Out.set("served_tier", ServedTier);
    Out.set("degraded", Degraded);
    if (FromCache)
      Out.set("cached", true);
    if (Audited)
      Out.set("audited", true);
    JsonValue Ls = JsonValue::array();
    for (unsigned L : Lines)
      Ls.push(static_cast<int64_t>(L));
    Out.set("lines", std::move(Ls));
  }
  if (!Attempts.empty()) {
    JsonValue As = JsonValue::array();
    for (const TierReport &A : Attempts) {
      JsonValue V = JsonValue::object();
      V.set("tier", A.Tier);
      V.set("outcome", A.Outcome);
      if (!A.Detail.empty())
        V.set("detail", A.Detail);
      As.push(std::move(V));
    }
    Out.set("attempts", std::move(As));
  }
  if (!Error.empty())
    Out.set("error", Error);
  if (!ReproPath.empty())
    Out.set("repro", ReproPath);
  if (LatencyMs >= 0)
    Out.set("latency_ms", LatencyMs);
  return Out.str();
}
