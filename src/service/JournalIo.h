//===- service/JournalIo.h - Injectable journal I/O seam -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syscall seam under the write-ahead journal (service/Journal.h).
/// Every operation whose failure the journal must survive — open,
/// write, flush, fsync, rename, directory fsync, remove, truncate —
/// goes through a JournalIo so the disk-chaos harness can fail any one
/// of them deterministically. Production uses JournalIo::system(), a
/// thin veneer over stdio/POSIX with no behavior of its own; tests and
/// `jslice_soak --disk-chaos` substitute a FaultyJournalIo.
///
/// FaultyJournalIo follows the FaultInjection pattern from
/// support/ResourceGuard.h: arm(Kind, N) fails the Nth operation of
/// that kind observed from now on, a counting pass sizes the sweep
/// (resetCounts() + observed(Kind)), and the sweep iterates every
/// ordinal asserting the journal's guarantees hold. Two kinds simulate
/// kill -9 mid-rotation: CrashBeforeRename leaves the temp file beside
/// an intact journal, CrashAfterRename leaves the renamed file with
/// the writer gone. A crash *latches*: every subsequent operation on
/// the faulty instance fails, freezing the on-disk state exactly as a
/// dead process would — the test then "reboots" by opening the same
/// path through a healthy instance.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_JOURNALIO_H
#define JSLICE_SERVICE_JOURNALIO_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace jslice {

/// The journal's view of the filesystem. Virtuals mirror the syscalls
/// one-to-one; the default implementations are the real thing.
class JournalIo {
public:
  virtual ~JournalIo() = default;

  /// fopen. Null on failure.
  virtual std::FILE *open(const std::string &Path, const char *Mode);

  /// fwrite; returns bytes accepted (short count = failure, and the
  /// accepted prefix may still reach the disk — a torn record).
  virtual size_t write(std::FILE *F, const char *Data, size_t N);

  /// fflush (user-space buffer -> OS). False on failure.
  virtual bool flush(std::FILE *F);

  /// fsync (OS -> disk). True on platforms without fsync: there is
  /// nothing stronger to ask for there.
  virtual bool sync(std::FILE *F);

  /// fclose. Failure is unreportable at close time; best-effort.
  virtual void close(std::FILE *F);

  /// Atomic replace. False on failure.
  virtual bool rename(const std::string &From, const std::string &To);

  /// fsyncs the directory containing \p Path so a completed rename
  /// survives power loss. True where directory fsync is unsupported.
  virtual bool syncDir(const std::string &Path);

  /// Unlink; missing files are success.
  virtual bool remove(const std::string &Path);

  /// Truncates \p Path to \p Size bytes (torn-tail repair).
  virtual bool truncate(const std::string &Path, uint64_t Size);

  /// The process-wide real-syscall instance.
  static JournalIo &system();
};

/// The disk faults the chaos harness can inject.
enum class JournalFault {
  None,
  ShortWrite,        ///< write() persists a prefix and reports short.
  WriteEio,          ///< write() accepts nothing (I/O error).
  WriteEnospc,       ///< write() accepts nothing (disk full).
  FlushFail,         ///< fflush() fails after buffering.
  FsyncFail,         ///< fsync() fails (the fsyncgate trap).
  CrashBeforeRename, ///< kill -9 after the rotation temp, before rename.
  CrashAfterRename,  ///< kill -9 after rename, before the dir fsync.
};

/// "short-write" / "eio" / ... for flags and logs.
const char *journalFaultName(JournalFault F);

/// Deterministic fault-injecting JournalIo. Counts eligible operations
/// per fault kind (writes for the write faults, flushes, fsyncs,
/// renames for the crash faults); when armed at ordinal N, the Nth
/// eligible operation observed since arming faults. armEvery(K, N)
/// instead faults every Nth eligible operation — the sharded soak's
/// background-noise mode. Thread-safe: counters are atomics, matching
/// the journal's one-writer-at-a-time discipline but safe beyond it.
class FaultyJournalIo : public JournalIo {
public:
  /// Arms: the \p Ordinal-th (1-based) operation eligible for \p F
  /// observed from now on faults. Resets all observation counters.
  void arm(JournalFault F, uint64_t Ordinal);

  /// Arms periodic mode: every \p N-th operation eligible for \p F
  /// faults, forever (until disarm). Crash kinds still latch.
  void armEvery(JournalFault F, uint64_t N);

  /// Disarms (and clears a crash latch); counters keep counting.
  void disarm();

  /// Operations eligible for \p F observed since the last arm/reset.
  uint64_t observed(JournalFault F) const;

  /// Restarts the observation counters (for a counting pass).
  void resetCounts();

  /// Faults injected since the last arm/reset.
  uint64_t injected() const { return Injected.load(); }

  /// True once a crash fault fired: the simulated process is dead and
  /// every operation fails until heal().
  bool crashed() const { return Crashed.load(); }

  /// Clears the crash latch (a simulated reboot on the same instance).
  void heal() { Crashed.store(false); }

  std::FILE *open(const std::string &Path, const char *Mode) override;
  size_t write(std::FILE *F, const char *Data, size_t N) override;
  bool flush(std::FILE *F) override;
  bool sync(std::FILE *F) override;
  bool rename(const std::string &From, const std::string &To) override;
  bool syncDir(const std::string &Path) override;
  bool remove(const std::string &Path) override;
  bool truncate(const std::string &Path, uint64_t Size) override;

private:
  /// Counts one operation eligible for \p F; true when it must fault.
  bool due(JournalFault F);

  std::atomic<int> Armed{static_cast<int>(JournalFault::None)};
  std::atomic<uint64_t> FailAt{0}; ///< Ordinal, or period in Every mode.
  std::atomic<bool> Every{false};
  std::atomic<bool> Crashed{false};
  std::atomic<uint64_t> Injected{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Flushes{0};
  std::atomic<uint64_t> Syncs{0};
  std::atomic<uint64_t> Renames{0};
};

} // namespace jslice

#endif // JSLICE_SERVICE_JOURNALIO_H
