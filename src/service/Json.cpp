//===- service/Json.cpp - Minimal JSON values -------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace jslice;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string jslice::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string JsonValue::str() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return BoolV ? "true" : "false";
  case Kind::Number: {
    if (!IsDouble)
      return std::to_string(NumV);
    if (std::isfinite(DblV)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3f", DblV);
      return Buf;
    }
    return "null"; // JSON has no NaN/Inf.
  }
  case Kind::String:
    return "\"" + jsonEscape(StrV) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (const JsonValue &V : Arr) {
      if (Out.size() > 1)
        Out += ",";
      Out += V.str();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (const auto &[Key, V] : Obj) {
      if (Out.size() > 1)
        Out += ",";
      Out += "\"" + jsonEscape(Key) + "\":" + V.str();
    }
    return Out + "}";
  }
  }
  return "null";
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Hand-rolled recursive-descent parser with an explicit depth cap (the
/// service reads untrusted request lines; a deep [[[[... must degrade,
/// not overflow the stack — the same discipline as the Mini-C parser).
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    std::optional<JsonValue> V = value(0);
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after value");
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  std::optional<JsonValue> fail(const std::string &What) {
    if (Error && Error->empty())
      *Error = "byte " + std::to_string(Pos) + ": " + What;
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  std::optional<JsonValue> value(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object(Depth);
    if (C == '[')
      return array(Depth);
    if (C == '"')
      return string();
    if (C == 't') {
      if (literal("true"))
        return JsonValue(true);
      return fail("bad literal");
    }
    if (C == 'f') {
      if (literal("false"))
        return JsonValue(false);
      return fail("bad literal");
    }
    if (C == 'n') {
      if (literal("null"))
        return JsonValue();
      return fail("bad literal");
    }
    if (C == '-' || (C >= '0' && C <= '9'))
      return number();
    return fail("unexpected character");
  }

  std::optional<JsonValue> object(unsigned Depth) {
    consume('{');
    JsonValue Out = JsonValue::object();
    skipWs();
    if (consume('}'))
      return Out;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::optional<JsonValue> Key = string();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!consume(':'))
        return fail("expected ':'");
      std::optional<JsonValue> V = value(Depth + 1);
      if (!V)
        return std::nullopt;
      Out.set(Key->asString(), std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Out;
      return fail("expected ',' or '}'");
    }
  }

  std::optional<JsonValue> array(unsigned Depth) {
    consume('[');
    JsonValue Out = JsonValue::array();
    skipWs();
    if (consume(']'))
      return Out;
    for (;;) {
      std::optional<JsonValue> V = value(Depth + 1);
      if (!V)
        return std::nullopt;
      Out.push(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Out;
      return fail("expected ',' or ']'");
    }
  }

  /// Reads exactly four hex digits into \p Code. On failure reports
  /// and returns false.
  bool hex4(unsigned &Code) {
    if (Pos + 4 > Text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<unsigned>(H - 'A' + 10);
      else {
        fail("bad \\u escape");
        return false;
      }
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  std::optional<JsonValue> string() {
    consume('"');
    std::string Out;
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return JsonValue(std::move(Out));
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!hex4(Code))
          return std::nullopt;
        // Surrogate handling: a \uD800-\uDBFF immediately followed by
        // \uDC00-\uDFFF decodes as one supplementary code point
        // (4-byte UTF-8). A lone surrogate — either half on its own —
        // names no character; it becomes U+FFFD rather than leaking
        // an invalid UTF-8 sequence into the heap of tools downstream
        // of the service (tolerant by design: the journal must be
        // able to round-trip any request the server ever accepted).
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          size_t Save = Pos;
          unsigned Low = 0;
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            if (!hex4(Low))
              return std::nullopt;
            if (Low >= 0xDC00 && Low <= 0xDFFF) {
              appendUtf8(Out, 0x10000 + ((Code - 0xD800) << 10) +
                                  (Low - 0xDC00));
              break;
            }
            Pos = Save; // Not the pair's low half; reparse it alone.
          }
          Code = 0xFFFD;
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          Code = 0xFFFD; // Lone low surrogate.
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  std::optional<JsonValue> number() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Fractional = true;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Tok = Text.substr(Start, Pos - Start);
    if (Tok.empty() || Tok == "-")
      return fail("bad number");
    if (Fractional) {
      double D = 0;
      if (std::sscanf(Tok.c_str(), "%lf", &D) != 1)
        return fail("bad number");
      return JsonValue(D);
    }
    errno = 0;
    long long N = std::strtoll(Tok.c_str(), nullptr, 10);
    if (errno != 0)
      return fail("number out of range");
    return JsonValue(static_cast<int64_t>(N));
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}
