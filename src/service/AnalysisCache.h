//===- service/AnalysisCache.h - Cross-request analysis cache --------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed analysis cache (DESIGN.md, "Analysis cache &
/// containment"): immutable, shared `Analysis` artifacts plus the
/// batch engine's SCC condensation and closure bit-vectors, keyed by a
/// canonical rendering of the program, so same-program requests stop
/// re-paying the parse → CFG → dominators → dependence pipeline and
/// fan their criteria out through BatchSlicer instead. What PR 2
/// memoizes *within* one batch, this lifts *across* requests.
///
/// The cache is a robustness feature first:
///
///  * **Single-flight coalescing with crash containment.** The first
///    request for a key becomes the build leader; concurrent requests
///    for the same key wait (bounded by their own deadlines) instead
///    of stampeding the pipeline. If the leader fails — budget
///    exhaustion, or death in process mode — exactly one waiting
///    follower is promoted to rebuild; the rest keep waiting with
///    their own deadlines intact. A key whose builds keep failing is
///    backed off (served cache-less) so a starved budget cannot wedge
///    a hot program, and quarantine() — wired to the PR-3 poison
///    machinery on worker-crash verdicts — permanently refuses a key
///    that has proven it can kill workers: a twice-crashing program
///    never re-enters the cache.
///
///  * **Watermark-coupled eviction.** Every artifact carries a cost
///    estimate; the LRU evicts on capacity at publish time and on
///    demand (evictToward) when the server's RSS watermark trips, so
///    memory pressure degrades into cache misses instead of admission
///    sheds, and an evict storm shows up in the counters rather than
///    passing silently.
///
///  * **Self-audit.** A seeded 1-in-N sample of hits is re-analyzed
///    from source and diffed against the cached artifact
///    (SandboxWorker.cpp); a mismatch invalidates the entry, serves
///    the fresh result, and increments audit_mismatches. The audit is
///    also the backstop for the (theoretically possible) canonical-key
///    hash collision.
///
/// Thread mode shares one instance across the worker pool; process
/// mode gives each persistent sandbox worker its own (workers are
/// single-threaded loops, so their instances see no coalescing and
/// piggyback their counters on response frames for aggregation).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_ANALYSISCACHE_H
#define JSLICE_SERVICE_ANALYSISCACHE_H

#include "service/Json.h"
#include "slicer/BatchSlicer.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace jslice {

/// Cache knobs (jslice_serve --cache-*).
struct CacheOptions {
  /// Master switch; off serves every request through the ladder.
  bool Enabled = true;

  /// Entry-count ceiling (clamped to >= 1).
  unsigned MaxEntries = 64;

  /// Cost-estimate ceiling over all cached artifacts, in bytes. The
  /// estimate is approximate (source + per-node structures + closure
  /// bitsets); the RSS watermark remains the hard backstop.
  uint64_t MaxBytes = 256u << 20;

  /// Self-audit sampling: re-analyze roughly 1 in N hits (0 = off).
  unsigned AuditEvery = 0;

  /// Seed for the audit sampler (deterministic per seed).
  uint64_t AuditSeed = 1;

  /// Consecutive build failures after which a key is backed off.
  unsigned MaxBuildFailures = 2;

  /// How many cache lookups (any key) must pass before a backed-off
  /// key may try to build again.
  uint64_t FailureBackoffLookups = 32;
};

/// Counters, served under {"stats"} "cache".
struct CacheStats {
  uint64_t Hits = 0;      ///< Ready artifact served.
  uint64_t Misses = 0;    ///< No artifact: leader builds or bypass.
  uint64_t Coalesced = 0; ///< Requests that waited on a leader.
  uint64_t CoalesceTimeouts = 0; ///< Waits that hit their deadline.
  uint64_t Promotions = 0;       ///< Followers promoted to leader.
  uint64_t Inserts = 0;          ///< Artifacts published.
  uint64_t Evictions = 0;        ///< All evictions (capacity + watermark).
  uint64_t WatermarkEvictions = 0; ///< Subset driven by evictToward().
  uint64_t BuildFailures = 0;      ///< Leader builds that failed.
  uint64_t Poisoned = 0;           ///< Lookups refused by quarantine.
  uint64_t Audits = 0;             ///< Hits re-analyzed by the sampler.
  uint64_t AuditMismatches = 0;    ///< Audits that diffed (invalidated).
  uint64_t Entries = 0;            ///< Current ready artifacts.
  uint64_t Bytes = 0;              ///< Current cost-estimate total.

  JsonValue toJson() const;

  /// Field-wise accumulation (the server sums per-worker snapshots).
  void add(const CacheStats &O);

  /// Inverse of toJson (the piggybacked worker snapshots). Nullopt
  /// when \p V is not an object.
  static std::optional<CacheStats> fromJson(const JsonValue &V);
};

/// One cached, immutable artifact: the Analysis and the BatchSlicer
/// built over it. Handed out by shared_ptr, so an eviction racing a
/// hit cannot free memory a reader still walks. The artifact's own
/// ResourceGuard belongs to the request that built it and is never
/// charged on the hit path (BatchSlicer::sliceShared takes the
/// reader's guard instead).
struct AnalysisArtifact {
  explicit AnalysisArtifact(Analysis &&An) : A(std::move(An)), BS(A) {}

  AnalysisArtifact(const AnalysisArtifact &) = delete;
  AnalysisArtifact &operator=(const AnalysisArtifact &) = delete;

  Analysis A;
  BatchSlicer BS;
  uint64_t CostBytes = 0;
};

/// Estimates the resident cost of \p Art for the eviction accounting:
/// source bytes + a per-CFG-node constant for the AST/CFG/tree/PDG
/// structures + the closure bitsets.
uint64_t estimateArtifactCost(const AnalysisArtifact &Art,
                              const std::string &Source);

/// Hash of the raw program bytes — the crash-accounting key
/// (Server.cpp): a program that kills workers must be matchable
/// *without* parsing it in the server.
std::string rawProgramKey(const std::string &Source);

/// The cache key: a 64-bit FNV-1a over the canonical line-numbered
/// rendering of the parsed program (plus its length), so trivially
/// reformatted duplicates of the same program hit the same entry. The
/// rendering keeps original line numbers: a criterion is (line, vars),
/// so two sources may share an artifact only when their statements
/// live on the same lines. Parsing charges \p G; nullopt when the
/// program does not parse (the ladder will produce the real
/// diagnostic) or the guard trips.
std::optional<std::string> canonicalProgramKey(const std::string &Source,
                                               ResourceGuard &G);

/// The cache. All public methods are thread-safe.
class AnalysisCache {
public:
  explicit AnalysisCache(const CacheOptions &Opts);

  AnalysisCache(const AnalysisCache &) = delete;
  AnalysisCache &operator=(const AnalysisCache &) = delete;

  const CacheOptions &options() const { return Opts; }

  enum class Outcome {
    Hit,         ///< Artifact holds a ready analysis.
    MustBuild,   ///< Caller is the (possibly promoted) build leader:
                 ///< it must end with publish() or buildFailed().
    Bypass,      ///< Serve without the cache (backoff, timeout).
    Quarantined, ///< Key is poisoned; refuse the request.
  };

  struct LookupResult {
    Outcome K = Outcome::Bypass;
    std::shared_ptr<const AnalysisArtifact> Artifact; ///< Hit only.
    bool Audit = false; ///< Hit: the sampler picked this one.
  };

  /// Resolves \p Key: returns a ready artifact, makes the caller the
  /// build leader, or — when a leader is already building — waits for
  /// it until \p Deadline (coalescing). A timed-out wait returns
  /// Bypass: the caller serves solo under its own budget.
  LookupResult lookup(const std::string &Key,
                      std::chrono::steady_clock::time_point Deadline);

  /// Leader success: installs \p Art as \p Key's artifact, wakes every
  /// waiter, and evicts LRU entries past the capacity caps (never the
  /// one just published).
  void publish(const std::string &Key,
               std::shared_ptr<const AnalysisArtifact> Art);

  /// Leader failure (budget exhaustion; in process mode the supervisor
  /// reports death the same way). Promotes exactly one waiting
  /// follower to leader; with no waiters, or past MaxBuildFailures,
  /// the key is backed off instead.
  void buildFailed(const std::string &Key);

  /// Permanently refuses \p Key (worker-crash verdicts; survives
  /// eviction). Waiters are woken and refused.
  void quarantine(const std::string &Key);

  /// Drops \p Key's ready artifact, if any (audit mismatch, external
  /// invalidation). In-flight readers keep their shared_ptr.
  void invalidate(const std::string &Key);

  /// invalidate() plus the audit_mismatches counter.
  void auditMismatch(const std::string &Key);

  /// Watermark eviction: LRU-evicts ready artifacts until the cost
  /// total is <= \p TargetBytes (or the cache is empty). Returns how
  /// many entries were evicted.
  uint64_t evictToward(uint64_t TargetBytes);

  /// Current cost-estimate total, for picking an eviction target.
  uint64_t bytes() const;

  /// Raw-bytes → canonical-key memo. Canonicalization re-parses and
  /// re-prints the program, which on the hit path would cost a large
  /// fraction of what the cache saves; byte-identical re-requests (the
  /// common case) skip it via this memo. The mapping is a pure
  /// function of the source bytes, so entries never go stale; the memo
  /// is bounded and simply cleared when it outgrows the slot table.
  std::optional<std::string> canonicalKeyFor(const std::string &RawKey) const;
  void rememberCanonicalKey(const std::string &RawKey,
                            const std::string &Key);

  CacheStats stats() const;

private:
  enum class State { Building, Ready, Failed, Quarantined };

  struct Slot {
    State St = State::Building;
    std::shared_ptr<const AnalysisArtifact> Art;
    unsigned Waiters = 0;
    bool NeedLeader = false; ///< Leader died; first waiter to see this
                             ///< claims the rebuild.
    unsigned Failures = 0;
    uint64_t RetryAtLookup = 0;       ///< Failed: earliest retry.
    std::list<std::string>::iterator LruIt; ///< Ready only.
  };

  void evictSlotLocked(std::map<std::string, Slot>::iterator It,
                       bool Watermark);
  void sweepStaleFailuresLocked();

  CacheOptions Opts;
  mutable std::mutex M;
  std::condition_variable CV;
  std::map<std::string, Slot> Slots;
  std::map<std::string, std::string> KeyMemo; ///< raw key -> canonical.
  std::list<std::string> Lru; ///< Front = most recent; ready keys only.
  uint64_t Bytes_ = 0;
  uint64_t LookupSeq = 0;
  uint64_t AuditRng = 0;
  CacheStats Counters;
};

} // namespace jslice

#endif // JSLICE_SERVICE_ANALYSISCACHE_H
