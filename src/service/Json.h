//===- service/Json.h - Minimal JSON values ---------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small JSON subset the slicing service speaks: null, booleans,
/// integer numbers (the protocol has no fractions; fractional input is
/// parsed but truncates through asUInt), strings with the standard
/// escapes, arrays, and objects. \uXXXX escapes decode to UTF-8,
/// including supplementary planes via surrogate pairs; a lone
/// surrogate becomes U+FFFD (tolerant: anything the server accepted
/// must round-trip through the journal, and an invalid sequence must
/// never leak downstream). Raw non-escape bytes pass through
/// byte-transparently — the parser validates JSON structure, not
/// UTF-8 well-formedness. No external dependency — the container
/// bakes in nothing — and no exceptions: parse() returns nullopt with
/// a position-carrying message, matching the library's ErrorOr
/// discipline one level down.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_JSON_H
#define JSLICE_SERVICE_JSON_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jslice {

/// One JSON value. A plain tagged struct, copyable; object member
/// order is normalized (std::map) so serialization is deterministic.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  /*implicit*/ JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  /*implicit*/ JsonValue(int64_t N) : K(Kind::Number), NumV(N) {}
  /*implicit*/ JsonValue(uint64_t N)
      : K(Kind::Number), NumV(static_cast<int64_t>(N)) {}
  /*implicit*/ JsonValue(int N) : K(Kind::Number), NumV(N) {}
  /*implicit*/ JsonValue(double N) : K(Kind::Number), NumV(0), DblV(N) {
    NumV = static_cast<int64_t>(N);
    IsDouble = true;
  }
  /*implicit*/ JsonValue(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  /*implicit*/ JsonValue(const char *S) : K(Kind::String), StrV(S) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  int64_t asInt() const { return NumV; }
  double asDouble() const { return IsDouble ? DblV : double(NumV); }
  const std::string &asString() const { return StrV; }
  const std::vector<JsonValue> &elements() const { return Arr; }
  const std::map<std::string, JsonValue> &members() const { return Obj; }

  /// Array append / object insert (no-ops unless this is that kind).
  void push(JsonValue V) {
    if (K == Kind::Array)
      Arr.push_back(std::move(V));
  }
  void set(const std::string &Key, JsonValue V) {
    if (K == Kind::Object)
      Obj[Key] = std::move(V);
  }

  /// Object member removal (no-op unless this is an object). The
  /// server strips piggybacked worker-cache fields off response frames
  /// before they reach the client.
  void remove(const std::string &Key) {
    if (K == Kind::Object)
      Obj.erase(Key);
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }

  /// Compact single-line serialization (keys sorted, no whitespace).
  std::string str() const;

  /// Parses exactly one JSON value spanning all of \p Text (trailing
  /// whitespace allowed). On failure returns nullopt and, when \p Error
  /// is given, a "byte N: what" message.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string *Error = nullptr);

private:
  Kind K;
  bool BoolV = false;
  int64_t NumV = 0;
  double DblV = 0;
  bool IsDouble = false;
  std::string StrV;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Escapes \p S for embedding in a JSON string literal (no quotes).
std::string jsonEscape(const std::string &S);

} // namespace jslice

#endif // JSLICE_SERVICE_JSON_H
