//===- service/Journal.h - Write-ahead request journal ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash forensics for the slicing server. Before a request is handed
/// to a worker the server appends a `begin` record (carrying the whole
/// request) and flushes; when its response is written, an `end` record
/// follows. A process that dies mid-request — OOM-killed, kill -9, a
/// bug the in-process guards cannot catch — leaves an unmatched
/// `begin`, and the next startup scans for exactly those: each is
/// *poisoned* (it crashed a server once; re-running it blind invites a
/// crash loop), quarantined as a jslice_stress-compatible reproducer
/// (`poison_<id>.mc` + metadata sidecar), and refused on resubmission
/// by content key until the quarantine is cleared. `jslice_stress
/// --replay-journal` feeds the same records straight into the
/// differential triage + ddmin reducer.
///
/// Records are JSON-Lines, one per event:
///
///   {"event":"begin","id":"r1","request":{...full request...}}
///   {"event":"end","id":"r1","status":"ok"}
///   {"event":"shutdown","status":"clean"}
///
/// Under zero-downtime restart (DESIGN.md, "Zero-downtime operations")
/// two server generations briefly append to the *same* file; every
/// record then carries a `"gen":N` stamp (setGeneration) so recovery
/// after a mid-upgrade kill -9 of either generation can attribute each
/// unmatched begin to its owner: a successor quarantines only begins
/// stamped by earlier generations, never its own live in-flight set.
/// During the overlap window both sides hold rotation (holdRotation):
/// a rewrite-and-rename from one process while the other appends
/// through its own FILE* would strand those appends on the unlinked
/// inode.
///
/// Durability is a policy knob (JournalSync). `Full` — the default and
/// the historical behavior — fsyncs every record: a power cut costs
/// nothing. `Batch` group-commits: appends reach the OS immediately
/// (kill -9 still loses nothing) and a flusher thread fsyncs at a
/// bounded interval, so a power cut can lose at most the last
/// FlushIntervalMs of records. `Off` leaves disk scheduling entirely
/// to the OS. The bench's journal_sync section quantifies the hot-path
/// cost of each.
///
/// The journal only ever *matters* for its unmatched begins, so it
/// compacts to exactly those: compact() rewrites the file keeping only
/// in-flight begins (recover() calls it after quarantining, so a
/// restart inherits a minimal journal), and a file growing past the
/// rotation threshold rewrites itself the same way mid-run — a server
/// that lives for a billion requests carries kilobytes, not the full
/// history. The `shutdown` record is the graceful-drain marker
/// (tools/jslice_serve's SIGTERM path): operators can tell a clean
/// stop from a crash without diffing begin/end pairs.
///
/// Unparseable journal lines (a crash can truncate the final record)
/// are skipped; recovery is best-effort by design.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_JOURNAL_H
#define JSLICE_SERVICE_JOURNAL_H

#include "service/Request.h"

#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jslice {

/// How hard an append pushes toward the disk before returning.
enum class JournalSync {
  Full,  ///< fsync every record (survives power loss). Default.
  Batch, ///< fflush every record; group fsync at a bounded interval.
  Off,   ///< fflush only; the OS flushes when it pleases.
};

/// "full" / "batch" / "off" for flags and logs.
const char *journalSyncName(JournalSync S);
/// Parses a --journal-sync value; false on anything unrecognized.
bool parseJournalSyncName(const std::string &Name, JournalSync &Out);

/// Append side. Thread-safe; every append reaches the OS before
/// returning (the journal's whole point is surviving the process) —
/// how far past the OS it pushes is the JournalSync policy.
class Journal {
public:
  Journal() = default;
  ~Journal();

  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens \p Path for appending and seeds the in-flight index from
  /// whatever the file already holds. \p RotateBytes > 0 arms size-
  /// triggered rotation: once the file exceeds it, the journal is
  /// rewritten down to its unmatched begins. \p Sync selects the
  /// durability policy; Batch mode starts a flusher thread honoring
  /// \p FlushIntervalMs. Returns false (and stays disabled) when the
  /// file cannot be opened.
  bool open(const std::string &Path, uint64_t RotateBytes = 0,
            JournalSync Sync = JournalSync::Full,
            uint64_t FlushIntervalMs = 25);

  bool enabled() const { return File != nullptr; }
  const std::string &path() const { return Path; }

  /// Stamps every subsequent record with `"gen":G` (0 = no stamp,
  /// matching the pre-upgrade record shape).
  void setGeneration(uint64_t G);
  uint64_t generation() const;

  /// While held, size-triggered rotation and compact() are suppressed.
  /// Both generations hold during an upgrade overlap window; the
  /// survivor releases once the other process is gone.
  void holdRotation(bool Hold);

  /// Appends the write-ahead record for \p R.
  void begin(const ServiceRequest &R);

  /// Appends the completion record for \p Id.
  void end(const std::string &Id, const std::string &Status);

  /// Appends the graceful-shutdown marker (clean drain, no poison).
  void shutdownRecord();

  /// Rewrites the file keeping only unmatched begins. Returns the
  /// number of records kept; a fully-bracketed journal compacts to an
  /// empty file. No-op (returning 0) when disabled or rotation-held.
  size_t compact();

  /// Bytes currently in the file (as tracked by the appender).
  uint64_t bytes() const;

private:
  void append(const std::string &Line);
  bool rewriteLocked();
  void stopFlusherLocked(std::unique_lock<std::mutex> &Lock);
  void flusherMain();

  mutable std::mutex M;
  std::FILE *File = nullptr;
  std::string Path;
  uint64_t RotateBytes = 0;
  uint64_t Bytes = 0;
  uint64_t Gen = 0;
  bool RotationHeld = false;
  /// Id -> raw begin line, for every begin without a matching end.
  std::map<std::string, std::string> OpenBegins;

  JournalSync Sync = JournalSync::Full;
  uint64_t FlushIntervalMs = 25;
  bool Dirty = false;         ///< Batch: bytes appended since last fsync.
  bool FlusherStop = false;
  std::condition_variable FlushCv;
  std::thread Flusher;
};

/// One in-flight-at-crash request recovered from a journal.
struct PoisonedRequest {
  std::string Id;
  ServiceRequest Request;
  /// Generation stamp of the begin record (0 for unstamped records).
  uint64_t Gen = 0;
};

/// Scans \p Path for begin records with no matching end. Missing or
/// empty files yield an empty list (first boot is not an error).
std::vector<PoisonedRequest> scanJournal(const std::string &Path);

/// True when \p Path's last meaningful record is a clean `shutdown`
/// marker (the graceful-drain test and operators use this).
bool journalEndsWithCleanShutdown(const std::string &Path);

/// Writes \p P's program to \p Dir/poison_<id>.mc with a metadata
/// sidecar (same shape as the stress harness's repros). Returns the
/// .mc path, or "" on I/O failure.
std::string quarantinePoisoned(const std::string &Dir,
                               const PoisonedRequest &P);

} // namespace jslice

#endif // JSLICE_SERVICE_JOURNAL_H
