//===- service/Journal.h - Write-ahead request journal ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash forensics for the slicing server. Before a request is handed
/// to a worker the server appends a `begin` record (carrying the whole
/// request) and flushes; when its response is written, an `end` record
/// follows. A process that dies mid-request — OOM-killed, kill -9, a
/// bug the in-process guards cannot catch — leaves an unmatched
/// `begin`, and the next startup scans for exactly those: each is
/// *poisoned* (it crashed a server once; re-running it blind invites a
/// crash loop), quarantined as a jslice_stress-compatible reproducer
/// (`poison_<id>.mc` + metadata sidecar), and refused on resubmission
/// by content key until the quarantine is cleared. `jslice_stress
/// --replay-journal` feeds the same records straight into the
/// differential triage + ddmin reducer; `jslice_stress
/// --verify-journal` scrubs a journal's framing offline.
///
/// Records are JSON-Lines, one per event, self-verifying: every record
/// carries a monotonic per-writer sequence number and a CRC32 computed
/// over its own serialization minus the `crc` member (serialization is
/// deterministic — sorted keys, no whitespace — so the check
/// re-serializes and compares):
///
///   {"crc":"1c291ca3","event":"begin","id":"r1","request":{...},"seq":1}
///   {"crc":"5d9f0e11","event":"end","id":"r1","seq":2,"status":"ok"}
///   {"crc":"8b7a0f2e","event":"shutdown","seq":3,"status":"clean"}
///
/// Pre-checksum journals (records without `crc`) stay readable for
/// upgrade compatibility: recovery accepts them as legacy-valid.
/// Recovery distinguishes two kinds of damage. A *torn tail* — the
/// file's final record is partial or fails its checksum — is the
/// expected signature of kill -9 or power loss mid-append: the tail is
/// truncated and the boot proceeds. *Mid-file corruption* — a record
/// that fails verification with intact records after it — means the
/// device or something else rewrote history: the damaged file is
/// quarantined aside as `<path>.corrupt`, every verifiable record is
/// salvaged into a fresh journal, and the event is counted as
/// `journal_corruption` in {"stats"}. Recovery never silently drops a
/// record it cannot prove was never written.
///
/// Under zero-downtime restart (DESIGN.md, "Zero-downtime operations")
/// two server generations briefly append to the *same* file; every
/// record then carries a `"gen":N` stamp (setGeneration) so recovery
/// after a mid-upgrade kill -9 of either generation can attribute each
/// unmatched begin to its owner: a successor quarantines only begins
/// stamped by earlier generations, never its own live in-flight set.
/// (Sequence numbers are monotonic per writer, so the overlap window
/// interleaves two sequences; the scrubber checks monotonicity within
/// each generation stamp, not across the file.) During the overlap
/// window both sides hold rotation (holdRotation): a rewrite-and-
/// rename from one process while the other appends through its own
/// FILE* would strand those appends on the unlinked inode.
///
/// Durability is a policy knob (JournalSync). `Full` — the default and
/// the historical behavior — fsyncs every record: a power cut costs
/// nothing. `Batch` group-commits: appends reach the OS immediately
/// (kill -9 still loses nothing) and a flusher thread fsyncs at a
/// bounded interval, so a power cut can lose at most the last
/// FlushIntervalMs of records. `Off` leaves disk scheduling entirely
/// to the OS. The bench's journal_sync section quantifies the hot-path
/// cost of each.
///
/// Every write reports back. A failed append (short write, EIO,
/// ENOSPC, failed fsync) is retried exactly once through a fresh file
/// handle — never by re-flushing the same fd, which after a failed
/// fsync may silently drop the dirty pages it claimed to hold (the
/// fsyncgate trap) — and if the retry also fails the journal latches
/// `failed()`. What the *server* does then is the --journal-failure
/// policy (JournalFailure below): refuse requests, serve on with the
/// journal marked lost in {"health"}, or abort. All file I/O goes
/// through the JournalIo seam (service/JournalIo.h) so the disk-chaos
/// harness can prove every one of these paths.
///
/// The journal only ever *matters* for its unmatched begins, so it
/// compacts to exactly those: compact() rewrites the file keeping only
/// in-flight begins (recover() calls it after quarantining, so a
/// restart inherits a minimal journal), and a file growing past the
/// rotation threshold rewrites itself the same way mid-run — a server
/// that lives for a billion requests carries kilobytes, not the full
/// history. Rotation is write-temp / fsync-temp / rename / fsync-dir;
/// a stale `<path>.rotate` left by a crash between those steps is
/// removed by the next open(). The `shutdown` record is the graceful-
/// drain marker (tools/jslice_serve's SIGTERM path): operators can
/// tell a clean stop from a crash without diffing begin/end pairs.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_JOURNAL_H
#define JSLICE_SERVICE_JOURNAL_H

#include "service/JournalIo.h"
#include "service/Request.h"

#include <condition_variable>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jslice {

/// How hard an append pushes toward the disk before returning.
enum class JournalSync {
  Full,  ///< fsync every record (survives power loss). Default.
  Batch, ///< fflush every record; group fsync at a bounded interval.
  Off,   ///< fflush only; the OS flushes when it pleases.
};

/// "full" / "batch" / "off" for flags and logs.
const char *journalSyncName(JournalSync S);
/// Parses a --journal-sync value; false on anything unrecognized.
bool parseJournalSyncName(const std::string &Name, JournalSync &Out);

/// What the server does once the journal latches failed() — the
/// --journal-failure policy. Never the pre-policy behavior of serving
/// on while silently recording nothing.
enum class JournalFailure {
  Shed,    ///< Refuse slice requests deterministically (shed,
           ///< cause "journal-failed"): the journal is load-bearing.
  Degrade, ///< Keep serving with the journal marked lost; {"health"}
           ///< reports degraded and jslice_client --health exits 1.
  Abort,   ///< Drain and exit cleanly: let the supervisor decide.
};

/// "shed" / "degrade" / "abort" for flags and logs.
const char *journalFailureName(JournalFailure F);
/// Parses a --journal-failure value; false on anything unrecognized.
bool parseJournalFailureName(const std::string &Name, JournalFailure &Out);

/// Counters for the journal's own health, folded into {"stats"}.
struct JournalCounters {
  uint64_t Appends = 0;          ///< Records durably appended.
  uint64_t AppendFailures = 0;   ///< Write/flush/fsync failures seen.
  uint64_t Reopens = 0;          ///< Fresh-handle retries that saved an
                                 ///< append after a failure.
  uint64_t RotationFailures = 0; ///< Rewrites abandoned on I/O errors.
  uint64_t CorruptRecords = 0;   ///< Mid-file damage found at open().
  uint64_t TornTails = 0;        ///< Torn final records truncated at open().
  uint64_t SalvagedRecords = 0;  ///< Records rescued from a corrupt file.
  bool Failed = false;           ///< Persistent-failure latch.
};

/// Append side. Thread-safe; every append reaches the OS before
/// returning (the journal's whole point is surviving the process) —
/// how far past the OS it pushes is the JournalSync policy.
class Journal {
public:
  Journal() = default;
  ~Journal();

  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Routes all file I/O through \p IoSeam (tests and the disk-chaos
  /// soak inject faults here). Call before open(); null restores the
  /// real syscalls. Not owned; must outlive the journal.
  void setIo(JournalIo *IoSeam);

  /// Opens \p Path for appending and seeds the in-flight index from
  /// whatever the file already holds, verifying checksums as it reads:
  /// a torn tail is truncated away, mid-file corruption quarantines
  /// the damaged file aside and salvages the verifiable records, and a
  /// stale rotation temp from a crashed predecessor is removed.
  /// \p RotateBytes > 0 arms size-triggered rotation: once the file
  /// exceeds it, the journal is rewritten down to its unmatched
  /// begins. \p Sync selects the durability policy; Batch mode starts
  /// a flusher thread honoring \p FlushIntervalMs. \p Repair = false
  /// suppresses the on-disk repairs (tail truncation, corruption
  /// quarantine, stale-temp removal) — a successor generation opening
  /// the journal while its predecessor still appends must not mistake
  /// a mid-write record for a torn tail and truncate live data; its
  /// recover()/completeHandoff() path reads around damage instead.
  /// Returns false (and stays disabled) when the file cannot be
  /// opened.
  bool open(const std::string &Path, uint64_t RotateBytes = 0,
            JournalSync Sync = JournalSync::Full,
            uint64_t FlushIntervalMs = 25, bool Repair = true);

  bool enabled() const { return File != nullptr; }
  const std::string &path() const { return Path; }

  /// True once an append failed persistently (the fresh-handle retry
  /// failed too). Appends stop reaching the disk; the server's
  /// --journal-failure policy decides what that means.
  bool failed() const;

  /// Counter snapshot.
  JournalCounters counters() const;

  /// Stamps every subsequent record with `"gen":G` (0 = no stamp,
  /// matching the pre-upgrade record shape).
  void setGeneration(uint64_t G);
  uint64_t generation() const;

  /// Stamps every subsequent record with `"epoch":E` — the replication
  /// fencing token (DESIGN.md, "Replication & failover"). 0 = no stamp,
  /// matching pre-replication record shape. Monotonic across
  /// promotions: a resurrected ex-primary still stamps its old epoch,
  /// which is how a post-mortem scan convicts a split-brain write.
  void setEpoch(uint64_t E);
  uint64_t epoch() const;

  /// Highest `"epoch"` stamp seen in replicated records (appendReplica)
  /// plus our own setEpoch — the base a promotion increments past.
  uint64_t maxEpochSeen() const;

  /// Sequence number of the last record appended (0 before the first).
  uint64_t lastSeq() const;

  /// Sequence the last compaction/rotation rewrite happened at: records
  /// with seq below this may no longer be in the file (a subscriber
  /// resuming from an older ack needs a fresh snapshot, not a tail).
  uint64_t lastCompactSeq() const;

  /// Observer called after every successfully appended record with the
  /// raw line and its sequence number — the replication ship hook.
  /// Invoked while the journal mutex is held, so invocations arrive in
  /// strict sequence order (a standby can dedup with a high-water
  /// mark); the tap must therefore never call back into this journal.
  /// A null tap detaches.
  using Tap = std::function<void(const std::string &Line, uint64_t Seq)>;
  void setTap(Tap T);

  /// Appends a pre-formed record line received from a replication
  /// stream verbatim: verifies it, folds its begin/end into the
  /// in-flight index, advances the sequence counter past it, and
  /// tracks its epoch stamp. Returns false on a corrupt line or when
  /// the append did not become durable. Does not invoke the tap
  /// (replicas do not re-ship).
  bool appendReplica(const std::string &Line);

  /// Snapshot of every verifiable record currently in the file, plus
  /// the sequence the snapshot is complete through (records with
  /// higher seq were appended after). The replication hub's catch-up
  /// source.
  std::vector<std::string> snapshotRecords(uint64_t &ThroughSeq) const;

  /// Standby side: empties the replica journal before applying a full
  /// snapshot stream (replaying a compacted file over stale records
  /// would resurrect completed begins as in-flight). Keeps the epoch/
  /// generation stamps; resets the sequence counter — the snapshot's
  /// records re-seed it. False when the file cannot be recreated.
  bool resetForSnapshot();

  /// Recovery probe for a latched failed() journal: reopens through a
  /// fresh handle and appends a `reattach` record through the normal
  /// retry path. True (and failed() clears) when the disk took the
  /// record durably — the --journal-failure=degrade reopen probe.
  /// No-op returning true when the journal never failed.
  bool tryReattach();

  /// While held, size-triggered rotation and compact() are suppressed.
  /// Both generations hold during an upgrade overlap window; the
  /// survivor releases once the other process is gone.
  void holdRotation(bool Hold);

  /// Appends the write-ahead record for \p R. False when the record
  /// did not become durable (the journal is disabled or failed).
  /// \p SeqOut (when non-null) receives the record's sequence number —
  /// what a sync-ack replication policy waits on.
  bool begin(const ServiceRequest &R, uint64_t *SeqOut = nullptr);

  /// Appends the completion record for \p Id. Same contract.
  bool end(const std::string &Id, const std::string &Status);

  /// Appends the graceful-shutdown marker (clean drain, no poison).
  bool shutdownRecord();

  /// Rewrites the file keeping only unmatched begins. Returns the
  /// number of records kept; a fully-bracketed journal compacts to an
  /// empty file. No-op (returning 0) when disabled or rotation-held.
  size_t compact();

  /// Bytes currently in the file (as tracked by the appender).
  uint64_t bytes() const;

private:
  bool appendLocked(const std::string &Line);
  bool writeLineLocked(const std::string &Line);
  bool commitLocked();
  bool reopenLocked();
  bool appendRecord(JsonValue Rec);
  bool rewriteLocked();
  void stopFlusherLocked(std::unique_lock<std::mutex> &Lock);
  void flusherMain();

  mutable std::mutex M;
  JournalIo *Io = &JournalIo::system();
  std::FILE *File = nullptr;
  std::string Path;
  uint64_t RotateBytes = 0;
  uint64_t Bytes = 0;
  uint64_t Gen = 0;
  uint64_t Epoch = 0;
  uint64_t MaxEpoch = 0;       ///< Highest epoch stamped or replicated.
  uint64_t NextSeq = 1;
  uint64_t LastCompactSeq = 0; ///< NextSeq when the file was last rewritten.
  Tap ShipTap;                 ///< Post-append observer (replication).
  bool RotationHeld = false;
  bool Failed = false;     ///< Persistent append failure; latched.
  bool SyncBroken = false; ///< Batch flusher saw a failed fsync; the
                           ///< next append must reopen-or-fail.
  JournalCounters Stats;
  /// One unmatched begin: its sequence number (rewrites preserve
  /// append order by emitting in seq order) and its raw line.
  struct OpenBegin {
    uint64_t Seq = 0;
    std::string Line;
  };
  /// Id -> open begin, for every begin without a matching end.
  std::map<std::string, OpenBegin> OpenBegins;

  JournalSync Sync = JournalSync::Full;
  uint64_t FlushIntervalMs = 25;
  bool Dirty = false; ///< Batch: bytes appended since last fsync.
  bool FlusherStop = false;
  std::condition_variable FlushCv;
  std::thread Flusher;
};

/// One in-flight-at-crash request recovered from a journal.
struct PoisonedRequest {
  std::string Id;
  ServiceRequest Request;
  /// Generation stamp of the begin record (0 for unstamped records).
  uint64_t Gen = 0;
  /// Epoch stamp of the begin record (0 for unstamped records).
  uint64_t Epoch = 0;
};

/// How one journal line verified.
enum class JournalLineCheck {
  Valid,   ///< Checksummed record; CRC and framing check out.
  Legacy,  ///< Pre-checksum record (no `crc`); accepted as-is.
  Corrupt, ///< Unparseable, wrong CRC, or malformed framing.
};

/// Verifies one raw journal line. \p SeqOut (when non-null) receives
/// the record's sequence number for Valid lines.
JournalLineCheck verifyJournalLine(const std::string &Line,
                                   uint64_t *SeqOut = nullptr);

/// CRC32 (the zlib/IEEE polynomial) of \p Data — the journal's record
/// checksum, exposed for tests and the scrub tool.
uint32_t journalCrc32(const std::string &Data);

/// Everything one pass over a journal file can tell you.
struct JournalScan {
  std::vector<PoisonedRequest> InFlight; ///< Begins with no end.
  uint64_t Records = 0;        ///< Checksummed records that verified.
  uint64_t LegacyRecords = 0;  ///< Pre-checksum records accepted.
  uint64_t CorruptRecords = 0; ///< Mid-file verification failures.
  bool TornTail = false;       ///< The final record is damaged —
                               ///< expected after kill -9; truncating
                               ///< to GoodBytes repairs it.
  uint64_t GoodBytes = 0;      ///< File offset after the last record
                               ///< that verified.
  uint64_t SeqRegressions = 0; ///< Sequence went backwards within one
                               ///< generation stamp (scrub signal, not
                               ///< corruption: upgrade overlap
                               ///< interleaves two writers).
  bool CleanShutdown = false;  ///< Last verifiable record is the
                               ///< graceful-drain marker.
  bool Exists = false;         ///< The file could be opened at all.
  uint64_t MaxEpoch = 0;       ///< Highest `"epoch"` fencing stamp seen
                               ///< (0 when no record carries one).
  uint64_t MaxSeq = 0;         ///< Highest verified sequence number —
                               ///< what a replica provably holds.
};

/// Scans \p Path, verifying every record. Missing or empty files yield
/// a default result (first boot is not an error). Read-only: the
/// repair decisions (truncate the tail, quarantine the file) belong to
/// Journal::open and the callers of this scan.
JournalScan scanJournalDetailed(const std::string &Path);

/// Scans \p Path for begin records with no matching end. Missing or
/// empty files yield an empty list (first boot is not an error).
/// Damaged records never crash the scan and never fabricate an entry.
std::vector<PoisonedRequest> scanJournal(const std::string &Path);

/// True when \p Path's last meaningful record is a clean `shutdown`
/// marker (the graceful-drain test and operators use this). A record
/// that fails verification cannot claim a clean shutdown.
bool journalEndsWithCleanShutdown(const std::string &Path);

/// Writes \p P's program to \p Dir/poison_<id>.mc with a metadata
/// sidecar (same shape as the stress harness's repros). Returns the
/// .mc path, or "" on I/O failure — callers must then leave the
/// journal begin unmatched so the next boot retries, never drop the
/// poison on the floor.
std::string quarantinePoisoned(const std::string &Dir,
                               const PoisonedRequest &P);

} // namespace jslice

#endif // JSLICE_SERVICE_JOURNAL_H
