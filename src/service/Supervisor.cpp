//===- service/Supervisor.cpp - Self-healing sandbox-worker fleet ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "service/Supervisor.h"

#include "service/Ipc.h"
#include "support/Pipe.h"

#include <algorithm>
#include <cerrno>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

using Clock = std::chrono::steady_clock;

Supervisor::Supervisor(const SupervisorOptions &Opts) : Opts(Opts) {
  this->Opts.Workers = std::max(1u, Opts.Workers);
}

Supervisor::~Supervisor() { stop(); }

#ifdef JSLICE_HAVE_POSIX_PROCESS

namespace {

/// Blocking waitpid, EINTR-looped. Returns false when the pid cannot
/// be waited (already reaped — a supervisor bug, treated as exited).
bool waitPid(long Pid, int &Status) {
  for (;;) {
    pid_t R = ::waitpid(static_cast<pid_t>(Pid), &Status, 0);
    if (R == static_cast<pid_t>(Pid))
      return true;
    if (R < 0 && errno == EINTR)
      continue;
    return false;
  }
}

uint64_t xorshift(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

} // namespace

bool Supervisor::start() {
  std::lock_guard<std::mutex> Lock(M);
  if (Started)
    return true;
  // Dead workers surface as EPIPE on write, not SIGPIPE: the whole
  // crash-detection scheme depends on this process surviving writes to
  // closed pipes.
  ::signal(SIGPIPE, SIG_IGN);
  Slots.resize(Opts.Workers);
  unsigned Alive = 0;
  for (Slot &S : Slots)
    Alive += spawnLocked(S);
  if (!Alive) {
    Slots.clear();
    return false;
  }
  Started = true;
  Stopping = false;
  Monitor = std::thread([this] { monitorMain(); });
  return true;
}

bool Supervisor::spawnLocked(Slot &S) {
  Pipe Down, Up; // Supervisor -> worker, worker -> supervisor.
  if (!Down.make() || !Up.make())
    return false;

  // Everything the child must NOT inherit: the parent-side ends of
  // every other worker's pipes. A sibling holding a copy of another
  // worker's write end would defeat both EOF shutdown and EPIPE
  // dead-worker detection.
  std::vector<int> CloseInChild;
  for (const Slot &Other : Slots) {
    if (Other.ToChild >= 0)
      CloseInChild.push_back(Other.ToChild);
    if (Other.FromChild >= 0)
      CloseInChild.push_back(Other.FromChild);
  }

  pid_t Pid = ::fork();
  if (Pid < 0)
    return false;

  if (Pid == 0) {
    // Child: sandbox worker. Close the parent-side ends and every
    // sibling fd, restore default signal dispositions (the server may
    // have SIGTERM/SIGINT routed to a self-pipe the child must not
    // share), run the loop, and _exit without flushing the stdio
    // buffers forked from the parent.
    for (int Fd : CloseInChild)
      ::close(Fd);
    Down.closeWrite();
    Up.closeRead();
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    int Code = sandboxWorkerMain(Down.ReadFd, Up.WriteFd, Opts.Exec);
    ::_exit(Code);
  }

  // Parent.
  Down.closeRead();
  Up.closeWrite();
  S.Pid = Pid;
  S.ToChild = Down.WriteFd;
  S.FromChild = Up.ReadFd;
  Down.WriteFd = -1; // Ownership moved into the slot.
  Up.ReadFd = -1;
  S.St = Slot::State::Idle;
  if (S.EverStarted)
    ++Counters.Restarts;
  S.EverStarted = true;
  ++Counters.Spawns;
  SlotFree.notify_all();
  return true;
}

void Supervisor::markDeadLocked(Slot &S, bool CountCrash) {
  closeQuietly(S.ToChild);
  closeQuietly(S.FromChild);
  S.Pid = -1;
  S.St = Slot::State::Dead;
  S.ChaosKillPending = false;
  if (CountCrash) {
    ++S.ConsecutiveCrashes;
    unsigned Shift = std::min(S.ConsecutiveCrashes - 1, 16u);
    uint64_t Delay = std::min<uint64_t>(
        static_cast<uint64_t>(Opts.BackoffBaseMs) << Shift, Opts.BackoffCapMs);
    S.RespawnAt = Clock::now() + std::chrono::milliseconds(Delay);
    noteCrashLocked();
  } else {
    S.RespawnAt = Clock::now();
  }
}

void Supervisor::noteCrashLocked() {
  ++Counters.Crashes;
  Clock::time_point Now = Clock::now();
  CrashTimes.push_back(Now);
  while (!CrashTimes.empty() &&
         Now - CrashTimes.front() >
             std::chrono::milliseconds(Opts.BreakerWindowMs))
    CrashTimes.pop_front();
  if (CrashTimes.size() >= Opts.BreakerThreshold &&
      Now >= BreakerOpenUntil) {
    BreakerOpenUntil = Now + std::chrono::milliseconds(Opts.BreakerCooldownMs);
    BreakerOpenUntilMs.store(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            BreakerOpenUntil.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    ++Counters.BreakerOpens;
  }
}

bool Supervisor::breakerOpenLocked() const {
  return Clock::now() < BreakerOpenUntil;
}

/// Finds and claims a usable slot before \p Deadline: an idle worker
/// wins; otherwise a dead slot past its backoff is respawned. Returns
/// the slot index, -1 on deadline, -2 when the breaker is open.
int Supervisor::acquireSlot(Clock::time_point Deadline) {
  std::unique_lock<std::mutex> Lock(M);
  for (;;) {
    if (Stopping)
      return -1;
    if (breakerOpenLocked()) {
      ++Counters.BreakerRefusals;
      return -2;
    }
    Clock::time_point Now = Clock::now();
    for (size_t I = 0; I != Slots.size(); ++I) {
      if (Slots[I].St == Slot::State::Idle) {
        Slots[I].St = Slot::State::Busy;
        return static_cast<int>(I);
      }
    }
    for (size_t I = 0; I != Slots.size(); ++I) {
      Slot &S = Slots[I];
      if (S.St == Slot::State::Dead && Now >= S.RespawnAt) {
        if (spawnLocked(S)) {
          S.St = Slot::State::Busy;
          return static_cast<int>(I);
        }
        // Fork failed (fd/process pressure): back off like a crash
        // would, without counting one.
        S.RespawnAt = Now + std::chrono::milliseconds(Opts.BackoffCapMs);
      }
    }
    if (Now >= Deadline)
      return -1;
    SlotFree.wait_until(Lock, std::min(Deadline,
                                       Now + std::chrono::milliseconds(20)));
  }
}

DispatchResult Supervisor::dispatch(const ServiceRequest &R,
                                    int64_t TimeoutMs) {
  DispatchResult Out;
  if (TimeoutMs <= 0)
    TimeoutMs = static_cast<int64_t>(Opts.DefaultDispatchTimeoutMs);
  TimeoutMs += static_cast<int64_t>(Opts.HangGraceMs);
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);

  std::string Payload = R.toJson().str();

  // A worker found dead *before* the request reached it proves nothing
  // about the request — retry on a fresh worker, bounded so a fork
  // storm cannot loop forever.
  for (int Attempt = 0; Attempt != 3; ++Attempt) {
    int Idx = acquireSlot(Deadline);
    if (Idx == -2) {
      Out.K = DispatchResult::Kind::BreakerOpen;
      Out.CrashDetail = "restart-storm circuit breaker open";
      return Out;
    }
    if (Idx < 0) {
      Out.K = DispatchResult::Kind::Crashed;
      Out.Hung = true;
      Out.CrashDetail = "no worker available before the dispatch deadline";
      return Out;
    }
    Slot &S = Slots[static_cast<size_t>(Idx)];
    long Pid = S.Pid;
    int ToChild = S.ToChild;
    int FromChild = S.FromChild;

    if (!writeFrame(ToChild, Payload)) {
      // EPIPE: the worker died while idle, before delivery. Reap,
      // respawn bookkeeping, and retry — the request is innocent.
      int Status = 0;
      waitPid(Pid, Status);
      std::lock_guard<std::mutex> Lock(M);
      markDeadLocked(S, /*CountCrash=*/true);
      SlotFree.notify_all();
      continue;
    }

    int64_t LeftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Deadline - Clock::now())
                         .count();
    std::string Response;
    FrameReadStatus RS =
        readFrame(FromChild, Response,
                  static_cast<int>(std::max<int64_t>(0, LeftMs)));

    if (RS == FrameReadStatus::Ok) {
      std::lock_guard<std::mutex> Lock(M);
      S.St = Slot::State::Idle;
      S.ConsecutiveCrashes = 0;
      SlotFree.notify_all();
      Out.K = DispatchResult::Kind::Served;
      Out.ResponseJson = std::move(Response);
      return Out;
    }

    // Dead or hung with our request on board.
    bool Hung = RS == FrameReadStatus::Timeout;
    if (Hung)
      ::kill(static_cast<pid_t>(Pid), SIGKILL);
    int Status = 0;
    bool HaveStatus = waitPid(Pid, Status);
    {
      std::lock_guard<std::mutex> Lock(M);
      markDeadLocked(S, /*CountCrash=*/true);
      if (Hung)
        ++Counters.Hangs;
      SlotFree.notify_all();
    }
    Out.K = DispatchResult::Kind::Crashed;
    Out.Hung = Hung;
    if (Hung)
      Out.CrashDetail = "worker hung past the response deadline; killed (" +
                        describeWaitStatus(Status) + ")";
    else
      Out.CrashDetail = HaveStatus ? describeWaitStatus(Status)
                                   : "worker vanished (already reaped)";
    return Out;
  }

  Out.K = DispatchResult::Kind::Crashed;
  Out.CrashDetail = "workers died before delivery on every retry";
  return Out;
}

void Supervisor::monitorMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Stopping)
        return;
      Clock::time_point Now = Clock::now();
      for (Slot &S : Slots) {
        if (S.St == Slot::State::Idle) {
          // Reap idle deaths (chaos kills, OOM kills between requests).
          int Status = 0;
          pid_t R = ::waitpid(static_cast<pid_t>(S.Pid), &Status, WNOHANG);
          if (R == static_cast<pid_t>(S.Pid))
            markDeadLocked(S, /*CountCrash=*/true);
        }
        if (S.St == Slot::State::Dead && Now >= S.RespawnAt &&
            !breakerOpenLocked())
          spawnLocked(S); // Self-healing respawn.
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opts.ReapIntervalMs));
  }
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Started)
      return;
    Stopping = true;
    SlotFree.notify_all();
  }
  if (Monitor.joinable())
    Monitor.join();

  std::lock_guard<std::mutex> Lock(M);
  for (Slot &S : Slots) {
    if (S.Pid < 0)
      continue;
    closeQuietly(S.ToChild); // EOF: the worker loop retires cleanly.
    closeQuietly(S.FromChild);
    int Status = 0;
    bool Reaped = false;
    for (int I = 0; I != 50; ++I) { // ~500ms grace.
      pid_t R = ::waitpid(static_cast<pid_t>(S.Pid), &Status, WNOHANG);
      if (R == static_cast<pid_t>(S.Pid)) {
        Reaped = true;
        break;
      }
      if (R < 0 && errno != EINTR) {
        Reaped = true; // Not ours to wait on anymore.
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!Reaped) {
      ::kill(static_cast<pid_t>(S.Pid), SIGKILL);
      waitPid(S.Pid, Status);
    }
    S.Pid = -1;
    S.St = Slot::State::Dead;
  }
  Started = false;
}

long Supervisor::chaosKillWorker(uint64_t &Rng) {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<size_t> Live;
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].Pid > 0 && Slots[I].St != Slot::State::Dead &&
        !Slots[I].ChaosKillPending)
      Live.push_back(I);
  if (Live.empty())
    return -1;
  size_t Pick = Live[xorshift(Rng) % Live.size()];
  Slots[Pick].ChaosKillPending = true;
  long Pid = Slots[Pick].Pid;
  ::kill(static_cast<pid_t>(Pid), SIGKILL);
  return Pid;
}

#else // !JSLICE_HAVE_POSIX_PROCESS

bool Supervisor::start() { return false; }
void Supervisor::stop() {}
bool Supervisor::spawnLocked(Slot &) { return false; }
void Supervisor::markDeadLocked(Slot &, bool) {}
void Supervisor::noteCrashLocked() {}
bool Supervisor::breakerOpenLocked() const { return false; }
int Supervisor::acquireSlot(Clock::time_point) { return -1; }
void Supervisor::monitorMain() {}

DispatchResult Supervisor::dispatch(const ServiceRequest &, int64_t) {
  DispatchResult Out;
  Out.K = DispatchResult::Kind::Failed;
  Out.CrashDetail = "process isolation unsupported on this platform";
  return Out;
}

long Supervisor::chaosKillWorker(uint64_t &) { return -1; }

#endif

SupervisorStats Supervisor::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  SupervisorStats S = Counters;
  for (const Slot &Sl : Slots)
    S.WorkersAlive += Sl.St != Slot::State::Dead;
  return S;
}

uint64_t Supervisor::restarts() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.Restarts;
}

uint64_t Supervisor::crashes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.Crashes;
}
