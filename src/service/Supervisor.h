//===- service/Supervisor.h - Self-healing sandbox-worker fleet ------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level request isolation (DESIGN.md, "Supervision &
/// overload"): the one failure class the in-process guards cannot
/// survive — a segfault, stack overflow, or OOM kill inside the
/// analysis — must cost exactly one request, not the whole service.
/// The Supervisor forks a small fleet of sandbox workers
/// (service/SandboxWorker.h), ships each request over a
/// length-prefixed pipe (service/Ipc.h), and converts every way a
/// worker can die into a per-request verdict:
///
///   * worker answers            -> Served (response passed through)
///   * worker dies mid-request   -> Crashed, with the waitpid() status
///   * worker misses its response
///     deadline (hung)           -> SIGKILL, then Crashed ("hung")
///   * worker found dead before
///     the request was delivered -> respawn and retry (the request
///                                  never reached it; it is innocent)
///
/// Self-healing: a monitor thread reaps workers that die while idle
/// and respawns every dead slot under exponential backoff
/// (BackoffBaseMs doubling per consecutive crash of that slot, capped
/// at BackoffCapMs; one successful serve resets it). A restart storm —
/// BreakerThreshold crashes inside BreakerWindowMs — opens a circuit
/// breaker: no respawns and deterministic BreakerOpen refusals until
/// BreakerCooldownMs passes, so a poison flood degrades into fast
/// refusals instead of a fork bomb.
///
/// The chaos hook (chaosKillWorker) SIGKILLs a random live worker
/// *under the supervisor lock, before it is reaped* — the only
/// pid-recycling-safe place to do it — and exists for the crash-matrix
/// soak, which asserts that random kills across a 10k-request run lose
/// zero responses and that restarts() converges to exactly the kill
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_SUPERVISOR_H
#define JSLICE_SERVICE_SUPERVISOR_H

#include "service/SandboxWorker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jslice {

/// Fleet configuration. The backoff and breaker constants are
/// justified in DESIGN.md ("Supervision & overload").
struct SupervisorOptions {
  /// Sandbox processes to keep alive.
  unsigned Workers = 2;

  /// Per-request execution settings shipped to every worker.
  ExecConfig Exec;

  /// Response deadline when the caller does not supply one (0 is not
  /// allowed to mean "forever": a hung worker holding a slot is the
  /// exact failure this layer exists to bound).
  uint64_t DefaultDispatchTimeoutMs = 60000;

  /// Extra slack on top of a request's own worst-case ladder latency
  /// before a silent worker is declared hung.
  uint64_t HangGraceMs = 3000;

  /// First respawn delay after a crash; doubles per consecutive crash
  /// of the same slot, capped at BackoffCapMs.
  unsigned BackoffBaseMs = 10;
  unsigned BackoffCapMs = 1000;

  /// Crashes within BreakerWindowMs that open the circuit breaker,
  /// and how long it stays open.
  unsigned BreakerThreshold = 10;
  uint64_t BreakerWindowMs = 2000;
  uint64_t BreakerCooldownMs = 1000;

  /// Monitor thread cadence for reaping idle deaths and respawning.
  uint64_t ReapIntervalMs = 20;
};

/// One dispatch's verdict.
struct DispatchResult {
  enum class Kind {
    Served,      ///< ResponseJson holds the worker's response line.
    Crashed,     ///< Worker died or hung on this request.
    BreakerOpen, ///< Refused without running: restart storm cooldown.
    Failed,      ///< Infrastructure failure (fork unsupported/denied).
  };
  Kind K = Kind::Failed;
  std::string ResponseJson;
  std::string CrashDetail; ///< Wait status / hang description.
  bool Hung = false;       ///< Crashed because the deadline passed.
};

/// Counters, for {"stats"} and the crash-matrix audit.
struct SupervisorStats {
  uint64_t Spawns = 0;   ///< Every fork, including the initial fleet.
  uint64_t Restarts = 0; ///< Respawns of previously-started slots.
  uint64_t Crashes = 0;  ///< Worker deaths (busy or idle) + hangs.
  uint64_t Hangs = 0;    ///< Subset of Crashes: killed for silence.
  uint64_t BreakerRefusals = 0;
  uint64_t BreakerOpens = 0;
  unsigned WorkersAlive = 0;
};

class Supervisor {
public:
  explicit Supervisor(const SupervisorOptions &Opts);
  ~Supervisor();

  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Forks the initial fleet and starts the monitor. False when the
  /// platform cannot fork/pipe (the server then stays thread-mode).
  bool start();

  /// Drains the fleet: EOFs every worker, reaps with a short grace,
  /// SIGKILLs stragglers, joins the monitor. Idempotent.
  void stop();

  /// Ships \p R to an idle worker and waits for its response.
  /// \p TimeoutMs bounds the wait (<= 0 uses the option default plus
  /// grace). Blocks while all workers are busy — admission control
  /// above this layer (Server's bounded queue) bounds that wait.
  DispatchResult dispatch(const ServiceRequest &R, int64_t TimeoutMs);

  SupervisorStats stats() const;
  uint64_t restarts() const;
  uint64_t crashes() const;

  /// Lock-free breaker probe for the {"health"} control line: stats()
  /// takes the fleet mutex, which a health endpoint must never wait
  /// on. Reads the atomic mirror of the breaker deadline.
  bool breakerOpenNow() const {
    int64_t Until = BreakerOpenUntilMs.load(std::memory_order_relaxed);
    if (!Until)
      return false;
    int64_t Now = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    return Now < Until;
  }

  /// Chaos hook for the crash-matrix soak: SIGKILL one live worker
  /// chosen by \p Rng (xorshift state, advanced in place). Returns the
  /// killed pid, or -1 when no worker is live. Safe against pid
  /// recycling: the victim is chosen and signalled under the lock,
  /// before anything can reap it. At most one kill per worker life:
  /// a slot whose kill has not been reaped yet is not picked again
  /// (signalling the zombie would count a kill with no matching
  /// death), so kills and restarts stay one-to-one.
  long chaosKillWorker(uint64_t &Rng);

private:
  struct Slot {
    long Pid = -1;
    int ToChild = -1;   ///< Parent-held write end.
    int FromChild = -1; ///< Parent-held read end.
    enum class State { Dead, Idle, Busy } St = State::Dead;
    unsigned ConsecutiveCrashes = 0;
    bool EverStarted = false;
    bool ChaosKillPending = false; ///< SIGKILLed, reap not observed yet.
    std::chrono::steady_clock::time_point RespawnAt;
  };

  bool spawnLocked(Slot &S);
  void markDeadLocked(Slot &S, bool CountCrash);
  void noteCrashLocked();
  bool breakerOpenLocked() const;
  int acquireSlot(std::chrono::steady_clock::time_point Deadline);
  void monitorMain();

  SupervisorOptions Opts;
  mutable std::mutex M;
  std::condition_variable SlotFree;
  std::vector<Slot> Slots;
  std::deque<std::chrono::steady_clock::time_point> CrashTimes;
  std::chrono::steady_clock::time_point BreakerOpenUntil;
  /// Steady-clock ms mirror of BreakerOpenUntil for breakerOpenNow().
  std::atomic<int64_t> BreakerOpenUntilMs{0};
  SupervisorStats Counters;
  bool Started = false;
  bool Stopping = false;
  std::thread Monitor;
};

} // namespace jslice

#endif // JSLICE_SERVICE_SUPERVISOR_H
