//===- service/Ladder.h - Precision-degradation ladder ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's answer to a tripped resource budget: the paper itself
/// ranks its algorithms by cost. Figure 7 iterates preorder traversals
/// to a fixpoint; Figure 13 is a single pass needing neither tree; and
/// Lyle's maximally conservative slicer just adds every jump with its
/// dependence closure. Both cheap tiers always terminate in one sweep,
/// so when the requested algorithm exhausts its Budget the ladder
/// retries the request at the next cheaper tier under a fresh guard
/// with a shrunken deadline (and a bounded backoff), guaranteeing the
/// caller a *sound* slice or a deterministic refusal — never a hang.
///
/// Soundness guards the rungs: Figure 13 is only behaviour-preserving
/// on structured programs without multi-level exits (this repo's
/// Finding 2 — a `return` under a loop defeats the paper's Section-4
/// property 2; tests/FindingsTest.cpp), so the Conservative rung is
/// skipped unless the analyzed program is structured, return-free, and
/// dead-code-free; the ladder then falls through to Lyle, which is
/// sound on every exit-reachable program. tests/LadderTest.cpp holds
/// the behavioural-projection proof over the paper corpus and a
/// generator sweep.
///
/// Each rung re-runs the *whole* pipeline (parse → analyze → slice)
/// under its own ResourceGuard: a budget tripped during analysis, not
/// just during slicing, also walks the ladder — a cheaper algorithm
/// won't save it, but the smaller rung budgets keep the total latency
/// bounded and the refusal deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_SERVICE_LADDER_H
#define JSLICE_SERVICE_LADDER_H

#include "slicer/SlicePrinter.h"
#include "slicer/Slicers.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace jslice {

/// Ladder knobs. The rung-1 budget is \p B; rung i+1 runs under a
/// fresh guard with the *full* step budget but a deadline scaled by
/// (ScalePercent/100)^i. The dimensions deliberately differ: every
/// rung re-pays the same analysis cost before its (cheap) slice, so a
/// shrunken step budget would refuse retries the cheap tier could
/// serve — measured on a goto-dense program, Lyle's whole pipeline
/// costs ~85% of Figure 7's, so even a 50% cut starves every rung.
/// Total work stays bounded at rungs x MaxSteps; the shrinking
/// deadline is what bounds end-to-end latency. Node and nesting
/// limits are structural, not progressive, and stay put.
struct LadderOptions {
  Budget B;

  /// Per-rung *deadline* scale, percent (clamped to [1, 100]). 50
  /// halves each retry's deadline, so total latency is bounded by 2x
  /// the first deadline (plus backoff).
  unsigned ScalePercent = 50;

  /// Sleep before each retry rung, doubling per rung but capped at
  /// 100ms — enough to let a transient deadline overrun clear, bounded
  /// so a refusal stays prompt. 0 disables.
  unsigned BackoffMs = 0;

  /// When false the ladder is a plain single-rung run (slicer_cli
  /// without --fallback, requests that opt out).
  bool Degrade = true;
};

/// One rung's outcome, for the response's `attempts` report.
struct LadderAttempt {
  SliceAlgorithm Tier;
  bool Served = false;
  bool Skipped = false;  ///< Rung ineligible (soundness precondition).
  std::string Trip;      ///< Guard reason when the rung tripped.
  std::string SkipReason;
};

/// The ladder's verdict on one request.
struct LadderResult {
  bool Ok = false;
  bool Degraded = false; ///< Ok, but below the requested tier.
  SliceAlgorithm Requested = SliceAlgorithm::Agrawal;
  SliceAlgorithm Served = SliceAlgorithm::Agrawal;
  SliceResult Result;          ///< Valid when Ok.
  std::set<unsigned> Lines;    ///< Result as source lines, when Ok.
  std::optional<Analysis> A;   ///< The serving rung's analysis, when Ok.
  DiagList Diags;              ///< Why, when !Ok.
  std::vector<LadderAttempt> Attempts;
};

/// The tier sequence for \p Requested: the request itself, then every
/// strictly cheaper tier (Conservative, then Lyle). Requesting a cheap
/// tier starts the ladder there.
std::vector<SliceAlgorithm> ladderTiers(SliceAlgorithm Requested);

/// Whether the Conservative (Figure 13) rung may soundly serve \p A:
/// structured jumps only, no return statements, no dead code.
bool conservativeTierEligible(const Analysis &A);

/// Runs the ladder for (\p Source, \p Crit, \p Requested).
LadderResult runLadder(const std::string &Source, const Criterion &Crit,
                       SliceAlgorithm Requested, const LadderOptions &Opts);

} // namespace jslice

#endif // JSLICE_SERVICE_LADDER_H
