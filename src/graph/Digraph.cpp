//===- graph/Digraph.cpp - Simple directed graph ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"

using namespace jslice;

std::vector<bool> jslice::reachableFrom(const Digraph &G, unsigned Root) {
  std::vector<bool> Seen(G.numNodes(), false);
  if (Root >= G.numNodes())
    return Seen;
  std::vector<unsigned> Worklist = {Root};
  Seen[Root] = true;
  while (!Worklist.empty()) {
    unsigned Node = Worklist.back();
    Worklist.pop_back();
    for (unsigned Succ : G.succs(Node)) {
      if (Seen[Succ])
        continue;
      Seen[Succ] = true;
      Worklist.push_back(Succ);
    }
  }
  return Seen;
}

std::vector<unsigned> jslice::reversePostorder(const Digraph &G,
                                               unsigned Root) {
  std::vector<unsigned> Postorder;
  std::vector<uint8_t> State(G.numNodes(), 0); // 0 new, 1 open, 2 done.
  // Iterative DFS storing (node, next-successor-index) frames.
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  State[Root] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    const auto &Succs = G.succs(Node);
    if (NextIdx < Succs.size()) {
      unsigned Succ = Succs[NextIdx++];
      if (State[Succ] == 0) {
        State[Succ] = 1;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    State[Node] = 2;
    Postorder.push_back(Node);
    Stack.pop_back();
  }
  return std::vector<unsigned>(Postorder.rbegin(), Postorder.rend());
}
