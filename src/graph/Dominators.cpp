//===- graph/Dominators.cpp - Dominator / postdominator trees --------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "graph/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace jslice;

DomTree::DomTree(unsigned Root, std::vector<int> IDomIn)
    : Root(Root), IDom(std::move(IDomIn)) {
  unsigned N = static_cast<unsigned>(IDom.size());
  assert(Root < N && "root out of range");
  Children.resize(N);
  for (unsigned Node = 0; Node != N; ++Node)
    if (IDom[Node] >= 0)
      Children[static_cast<unsigned>(IDom[Node])].push_back(Node);
  for (auto &Kids : Children)
    std::sort(Kids.begin(), Kids.end());

  // Preorder + interval numbering for O(1) dominance queries.
  TreeIn.assign(N, 0);
  TreeOut.assign(N, 0);
  unsigned Clock = 0;
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  TreeIn[Root] = ++Clock;
  Preorder.push_back(Root);
  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    if (NextIdx < Children[Node].size()) {
      unsigned Child = Children[Node][NextIdx++];
      TreeIn[Child] = ++Clock;
      Preorder.push_back(Child);
      Stack.emplace_back(Child, 0);
      continue;
    }
    TreeOut[Node] = ++Clock;
    Stack.pop_back();
  }
}

//===----------------------------------------------------------------------===//
// Cooper–Harvey–Kennedy iterative algorithm
//===----------------------------------------------------------------------===//

DomTree jslice::computeDominatorsIterative(const Digraph &G, unsigned Root,
                                           ResourceGuard *Guard) {
  unsigned N = G.numNodes();
  std::vector<unsigned> RPO = reversePostorder(G, Root);
  std::vector<int> RPONum(N, -1);
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RPONum[RPO[I]] = static_cast<int>(I);

  // IDom in node indices; -1 = not yet known / unreachable.
  std::vector<int> IDom(N, -1);
  IDom[Root] = static_cast<int>(Root); // Temporarily self, per CHK.

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RPONum[static_cast<unsigned>(A)] >
             RPONum[static_cast<unsigned>(B)])
        A = IDom[static_cast<unsigned>(A)];
      while (RPONum[static_cast<unsigned>(B)] >
             RPONum[static_cast<unsigned>(A)])
        B = IDom[static_cast<unsigned>(B)];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Guard && !Guard->checkpoint("dominators.iterate")) {
        // Budget exhausted: abandon the fixpoint. The caller observes
        // the tripped guard and discards this (unconverged) tree.
        IDom[Root] = -1;
        return DomTree(Root, std::move(IDom));
      }
      if (Node == Root)
        continue;
      int NewIDom = -1;
      for (unsigned Pred : G.preds(Node)) {
        if (RPONum[Pred] < 0 || IDom[Pred] < 0)
          continue; // Unreachable or unprocessed predecessor.
        NewIDom = NewIDom < 0 ? static_cast<int>(Pred)
                              : Intersect(NewIDom, static_cast<int>(Pred));
      }
      if (NewIDom >= 0 && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }

  IDom[Root] = -1; // Root has no immediate dominator.
  return DomTree(Root, std::move(IDom));
}

//===----------------------------------------------------------------------===//
// Lengauer–Tarjan (simple eval/link variant)
//===----------------------------------------------------------------------===//

namespace {

/// State for one Lengauer–Tarjan run. Vertices are renumbered by DFS
/// discovery order (1-based, 0 = undiscovered), per the original paper.
struct LengauerTarjan {
  const Digraph &G;
  unsigned Root;

  std::vector<unsigned> DfsNum;    // node -> dfs number (0 = unreachable)
  std::vector<unsigned> Vertex;    // dfs number -> node
  std::vector<unsigned> ParentOf;  // dfs number -> dfs number
  std::vector<unsigned> Semi;      // dfs number -> dfs number
  std::vector<unsigned> Ancestor;  // forest for eval/link (0 = none)
  std::vector<unsigned> Label;     // eval/link labels
  std::vector<std::vector<unsigned>> Bucket;
  std::vector<unsigned> Dom; // dfs number -> dfs number

  LengauerTarjan(const Digraph &G, unsigned Root) : G(G), Root(Root) {
    unsigned N = G.numNodes();
    DfsNum.assign(N, 0);
    Vertex.assign(N + 1, 0);
    ParentOf.assign(N + 1, 0);
    Semi.assign(N + 1, 0);
    Ancestor.assign(N + 1, 0);
    Label.assign(N + 1, 0);
    Bucket.assign(N + 1, {});
    Dom.assign(N + 1, 0);
  }

  unsigned Count = 0;

  void dfs() {
    std::vector<std::pair<unsigned, size_t>> Stack;
    DfsNum[Root] = ++Count;
    Vertex[Count] = Root;
    Semi[Count] = Count;
    Label[Count] = Count;
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[Node, NextIdx] = Stack.back();
      const auto &Succs = G.succs(Node);
      if (NextIdx >= Succs.size()) {
        Stack.pop_back();
        continue;
      }
      unsigned Succ = Succs[NextIdx++];
      if (DfsNum[Succ] != 0)
        continue;
      DfsNum[Succ] = ++Count;
      Vertex[Count] = Succ;
      Semi[Count] = Count;
      Label[Count] = Count;
      ParentOf[Count] = DfsNum[Node];
      Stack.emplace_back(Succ, 0);
    }
  }

  /// Path-compressing eval: returns the label with minimal semi on the
  /// forest path to \p V.
  unsigned eval(unsigned V) {
    if (Ancestor[V] == 0)
      return Label[V];
    compress(V);
    return Label[V];
  }

  void compress(unsigned V) {
    // Iterative path compression from V to the forest root.
    std::vector<unsigned> Path;
    unsigned Cur = V;
    while (Ancestor[Ancestor[Cur]] != 0) {
      Path.push_back(Cur);
      Cur = Ancestor[Cur];
    }
    for (auto It = Path.rbegin(), E = Path.rend(); It != E; ++It) {
      unsigned Node = *It;
      unsigned Anc = Ancestor[Node];
      if (Semi[Label[Anc]] < Semi[Label[Node]])
        Label[Node] = Label[Anc];
      Ancestor[Node] = Ancestor[Anc];
    }
  }

  std::vector<int> run() {
    dfs();

    for (unsigned W = Count; W >= 2; --W) {
      unsigned WNode = Vertex[W];
      // Step 2: semidominators.
      for (unsigned PredNode : G.preds(WNode)) {
        unsigned V = DfsNum[PredNode];
        if (V == 0)
          continue; // Predecessor unreachable from the root.
        unsigned U = eval(V);
        if (Semi[U] < Semi[W])
          Semi[W] = Semi[U];
      }
      Bucket[Semi[W]].push_back(W);
      Ancestor[W] = ParentOf[W]; // link(parent(w), w)

      // Step 3: implicit idoms for the parent's bucket.
      for (unsigned V : Bucket[ParentOf[W]]) {
        unsigned U = eval(V);
        Dom[V] = Semi[U] < Semi[V] ? U : ParentOf[W];
      }
      Bucket[ParentOf[W]].clear();
    }

    // Step 4: explicit idoms in DFS order.
    for (unsigned W = 2; W <= Count; ++W) {
      if (Dom[W] != Semi[W])
        Dom[W] = Dom[Dom[W]];
    }

    std::vector<int> IDom(G.numNodes(), -1);
    for (unsigned W = 2; W <= Count; ++W)
      IDom[Vertex[W]] = static_cast<int>(Vertex[Dom[W]]);
    return IDom;
  }
};

} // namespace

DomTree jslice::computeDominatorsLengauerTarjan(const Digraph &G,
                                                unsigned Root) {
  LengauerTarjan LT(G, Root);
  return DomTree(Root, LT.run());
}
