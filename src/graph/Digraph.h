//===- graph/Digraph.h - Simple directed graph ------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, index-based directed graph used for control flowgraphs and
/// dependence graphs. Nodes are the integers [0, numNodes()); payloads
/// live in parallel side tables owned by the clients (cfg/, pdg/).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_GRAPH_DIGRAPH_H
#define JSLICE_GRAPH_DIGRAPH_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace jslice {

/// Dense directed graph with parallel-edge suppression.
class Digraph {
public:
  Digraph() = default;
  explicit Digraph(unsigned NumNodes)
      : Succs(NumNodes), Preds(NumNodes) {}

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }

  /// Appends a fresh node and returns its index.
  unsigned addNode() {
    Succs.emplace_back();
    Preds.emplace_back();
    return numNodes() - 1;
  }

  /// Adds the edge From -> To; duplicate edges are ignored.
  void addEdge(unsigned From, unsigned To) {
    assert(From < numNodes() && To < numNodes() && "edge endpoint missing");
    for (unsigned Succ : Succs[From])
      if (Succ == To)
        return;
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }

  bool hasEdge(unsigned From, unsigned To) const {
    assert(From < numNodes() && "edge endpoint missing");
    for (unsigned Succ : Succs[From])
      if (Succ == To)
        return true;
    return false;
  }

  const std::vector<unsigned> &succs(unsigned Node) const {
    assert(Node < numNodes() && "node out of range");
    return Succs[Node];
  }
  const std::vector<unsigned> &preds(unsigned Node) const {
    assert(Node < numNodes() && "node out of range");
    return Preds[Node];
  }

  size_t numEdges() const {
    size_t N = 0;
    for (const auto &Out : Succs)
      N += Out.size();
    return N;
  }

  /// Returns the graph with every edge direction flipped.
  Digraph reversed() const {
    Digraph Rev(numNodes());
    for (unsigned From = 0, E = numNodes(); From != E; ++From)
      for (unsigned To : Succs[From])
        Rev.addEdge(To, From);
    return Rev;
  }

private:
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
};

/// Nodes reachable from \p Root along forward edges (as a bool-per-node
/// vector).
std::vector<bool> reachableFrom(const Digraph &G, unsigned Root);

/// Reverse postorder of the subgraph reachable from \p Root.
std::vector<unsigned> reversePostorder(const Digraph &G, unsigned Root);

} // namespace jslice

#endif // JSLICE_GRAPH_DIGRAPH_H
