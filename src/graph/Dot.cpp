//===- graph/Dot.cpp - Graphviz and text rendering ---------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "graph/Dot.h"

#include <algorithm>

using namespace jslice;

namespace {

std::string escapeDot(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string jslice::toDot(const Digraph &G, const std::string &Name,
                          const NodeLabelFn &Label,
                          const std::function<bool(unsigned)> *Highlight) {
  std::string Out = "digraph \"" + escapeDot(Name) + "\" {\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (unsigned Node = 0, E = G.numNodes(); Node != E; ++Node) {
    Out += "  n" + std::to_string(Node) + " [label=\"" +
           escapeDot(Label(Node)) + "\"";
    if (Highlight && (*Highlight)(Node))
      Out += ", style=filled, fillcolor=lightgrey";
    Out += "];\n";
  }
  for (unsigned From = 0, E = G.numNodes(); From != E; ++From) {
    std::vector<unsigned> Succs = G.succs(From);
    std::sort(Succs.begin(), Succs.end());
    for (unsigned To : Succs)
      Out += "  n" + std::to_string(From) + " -> n" + std::to_string(To) +
             ";\n";
  }
  Out += "}\n";
  return Out;
}

std::string jslice::domTreeToDot(const DomTree &Tree, const std::string &Name,
                                 const NodeLabelFn &Label) {
  std::string Out = "digraph \"" + escapeDot(Name) + "\" {\n";
  Out += "  node [shape=ellipse, fontname=\"monospace\"];\n";
  for (unsigned Node = 0, E = Tree.numNodes(); Node != E; ++Node) {
    if (!Tree.isReachable(Node))
      continue;
    Out += "  n" + std::to_string(Node) + " [label=\"" +
           escapeDot(Label(Node)) + "\"];\n";
  }
  for (unsigned Node = 0, E = Tree.numNodes(); Node != E; ++Node) {
    if (Tree.idom(Node) < 0)
      continue;
    Out += "  n" + std::to_string(Tree.idom(Node)) + " -> n" +
           std::to_string(Node) + ";\n";
  }
  Out += "}\n";
  return Out;
}

std::string jslice::toEdgeListText(const Digraph &G,
                                   const NodeLabelFn &Label) {
  std::string Out;
  for (unsigned From = 0, E = G.numNodes(); From != E; ++From) {
    std::vector<unsigned> Succs = G.succs(From);
    if (Succs.empty())
      continue;
    std::sort(Succs.begin(), Succs.end());
    Out += Label(From) + " ->";
    for (unsigned To : Succs)
      Out += " " + Label(To);
    Out += "\n";
  }
  return Out;
}

std::string jslice::domTreeToText(const DomTree &Tree,
                                  const NodeLabelFn &Label) {
  std::string Out;
  for (unsigned Node = 0, E = Tree.numNodes(); Node != E; ++Node) {
    if (Tree.idom(Node) < 0)
      continue;
    Out += Label(Node) + ": " +
           Label(static_cast<unsigned>(Tree.idom(Node))) + "\n";
  }
  return Out;
}
