//===- graph/Dominators.h - Dominator / postdominator trees ----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-tree construction. Two independent implementations are
/// provided and cross-checked by the test suite:
///
///  * the iterative algorithm of Cooper, Harvey & Kennedy ("A Simple,
///    Fast Dominance Algorithm"), the default; and
///  * Lengauer & Tarjan's algorithm [20 in the paper], kept as an oracle
///    and for benchmarks on large graphs.
///
/// The paper's postdominator trees (its Figures 4-b, 6-b, 9-b, 11-b,
/// 15-b) are dominator trees of the reversed flowgraph rooted at Exit,
/// exactly as Section 3 prescribes; cfg/ exposes that composition.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_GRAPH_DOMINATORS_H
#define JSLICE_GRAPH_DOMINATORS_H

#include "graph/Digraph.h"
#include "support/ResourceGuard.h"

#include <vector>

namespace jslice {

/// A rooted dominator tree over the node indices of some Digraph.
/// Nodes unreachable from the root are absent (isReachable == false).
class DomTree {
public:
  DomTree(unsigned Root, std::vector<int> IDomIn);

  unsigned root() const { return Root; }

  bool isReachable(unsigned Node) const {
    return Node == Root || IDom[Node] >= 0;
  }

  /// Immediate dominator; -1 for the root and for unreachable nodes.
  int idom(unsigned Node) const { return IDom[Node]; }

  const std::vector<unsigned> &children(unsigned Node) const {
    return Children[Node];
  }

  /// True when \p A dominates \p B (reflexively).
  bool dominates(unsigned A, unsigned B) const {
    if (!isReachable(A) || !isReachable(B))
      return false;
    return TreeIn[A] <= TreeIn[B] && TreeOut[B] <= TreeOut[A];
  }

  bool properlyDominates(unsigned A, unsigned B) const {
    return A != B && dominates(A, B);
  }

  /// Tree preorder over reachable nodes, children in ascending node
  /// order (deterministic; the paper's Figure 7 traversal order).
  const std::vector<unsigned> &preorder() const { return Preorder; }

  unsigned numNodes() const { return static_cast<unsigned>(IDom.size()); }

private:
  unsigned Root;
  std::vector<int> IDom;
  std::vector<std::vector<unsigned>> Children;
  std::vector<unsigned> Preorder;
  std::vector<unsigned> TreeIn;
  std::vector<unsigned> TreeOut;
};

/// Cooper–Harvey–Kennedy iterative dominators of \p G rooted at \p Root.
/// With a \p Guard, the fixpoint polls one checkpoint per node visit;
/// on exhaustion the iteration stops and the (possibly unconverged)
/// tree is returned — callers must treat a tripped guard as failure.
DomTree computeDominatorsIterative(const Digraph &G, unsigned Root,
                                   ResourceGuard *Guard = nullptr);

/// Lengauer–Tarjan dominators of \p G rooted at \p Root (simple
/// eval/link variant).
DomTree computeDominatorsLengauerTarjan(const Digraph &G, unsigned Root);

/// Postdominator tree of \p G: dominators of the reversed graph rooted
/// at \p Exit. Uses the iterative algorithm.
inline DomTree computePostDominators(const Digraph &G, unsigned Exit,
                                     ResourceGuard *Guard = nullptr) {
  return computeDominatorsIterative(G.reversed(), Exit, Guard);
}

} // namespace jslice

#endif // JSLICE_GRAPH_DOMINATORS_H
