//===- graph/Dot.h - Graphviz and text rendering ----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering of digraphs and dominator trees to Graphviz DOT and to a
/// plain-text edge list (the form the figure benches print and the tests
/// golden-match).
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_GRAPH_DOT_H
#define JSLICE_GRAPH_DOT_H

#include "graph/Digraph.h"
#include "graph/Dominators.h"

#include <functional>
#include <string>

namespace jslice {

/// Node-id -> display-label callback used by the renderers.
using NodeLabelFn = std::function<std::string(unsigned)>;

/// Renders \p G as a DOT digraph named \p Name. \p Highlight, when
/// non-null, marks nodes to shade (the paper shades in-slice nodes).
std::string toDot(const Digraph &G, const std::string &Name,
                  const NodeLabelFn &Label,
                  const std::function<bool(unsigned)> *Highlight = nullptr);

/// Renders the parent edges of \p Tree as a DOT digraph named \p Name.
std::string domTreeToDot(const DomTree &Tree, const std::string &Name,
                         const NodeLabelFn &Label);

/// One "a -> b, c" line per node that has successors, in node order.
std::string toEdgeListText(const Digraph &G, const NodeLabelFn &Label);

/// One "child: parent" line per reachable non-root node, in node order —
/// a stable, diff-friendly tree dump.
std::string domTreeToText(const DomTree &Tree, const NodeLabelFn &Label);

} // namespace jslice

#endif // JSLICE_GRAPH_DOT_H
