//===- tools/jslice_stress.cpp - Differential crash-triage harness ------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The robustness harness behind DESIGN.md's "Robustness contract":
/// fans seeded generator programs (structured and goto dialects) through
/// the whole pipeline under a resource Budget, checks every sound
/// slicing algorithm against the projection-interpreter oracle on the
/// survivors, and triages every oracle mismatch with a greedy
/// statement-deletion reducer that writes a minimized repro to disk.
///
/// Every program additionally runs through the batch slicing engine
/// (BatchSlicer): all line criteria, every cache-backed algorithm,
/// cross-checked bit for bit against the single-shot slicers. A
/// divergence is triaged exactly like an oracle mismatch — reduced and
/// written out as a repro.
///
///   jslice_stress [--seeds A..B] [--budget tight|default|unlimited]
///                 [--dialect structured|goto|both] [--stmts N]
///                 [--max-criteria N] [--trials N] [--fault-stride N]
///                 [--no-batch-check] [--replay-journal FILE]
///                 [--verify-journal FILE] [--corpus DIR] [--out DIR]
///                 [--verbose]
///
///   --seeds A..B     generator seed range, inclusive (default 1..50;
///                    a bare N means 1..N)
///   --budget NAME    resource budget each pipeline runs under
///                    (default tight — exhaustion must degrade, never
///                    crash or hang)
///   --dialect NAME   which generator dialects to fan out (default both)
///   --stmts N        target statements per generated program (default 40)
///   --max-criteria N criteria checked per program (default 4)
///   --trials N       oracle inputs per criterion (default 3)
///   --fault-stride N additionally re-run each program's pipeline with a
///                    fault injected at every Nth checkpoint (default 0
///                    = off); every injected failure must surface as
///                    diagnostics and the disarmed re-run must succeed
///   --no-batch-check skip the batch-vs-single-shot cross-check
///   --replay-journal FILE
///                    push every request a crashed jslice_serve left in
///                    flight in FILE (its write-ahead journal) through
///                    the differential triage + ddmin reducer — the
///                    poison-quarantine-to-root-cause path
///   --verify-journal FILE
///                    scrub mode: verify every record checksum in FILE
///                    (see Journal.h's framing) and report records,
///                    legacy (pre-checksum) records, in-flight begins,
///                    sequence regressions, and whether the file ends in
///                    a clean shutdown, a torn tail, or mid-file
///                    corruption; runs nothing else. Exit 0 when every
///                    record verifies (a torn tail — the expected
///                    kill -9 residue — is reported but still clean),
///                    1 on mid-file corruption or a sequence regression
///   --corpus DIR     also push every file under DIR through the
///                    pipeline (the checked-in fuzz seeds)
///   --out DIR        where minimized repros are written
///                    (default stress-repros)
///
/// Exit codes: 0 — every pipeline either succeeded or degraded with
/// diagnostics and the oracle found no mismatch; 1 — at least one
/// oracle mismatch (repros written) or contract violation (a failure
/// without diagnostics); 2 — usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"
#include "service/Journal.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace jslice;

namespace {

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

struct StressOptions {
  uint64_t SeedLo = 1;
  uint64_t SeedHi = 50;
  Budget B = Budget::tight();
  bool Structured = true;
  bool Gotos = true;
  unsigned TargetStmts = 40;
  unsigned MaxCriteria = 4;
  unsigned Trials = 3;
  uint64_t FaultStride = 0;
  bool BatchCheck = true;
  std::string ReplayJournal;
  std::string VerifyJournal;
  std::string CorpusDir;
  std::string OutDir = "stress-repros";
  bool Verbose = false;
};

/// Sound on every exit-reachable program, jumps or not (Figures 12/13
/// are only defined for structured programs, so the differential check
/// sticks to the generally-sound set).
const SliceAlgorithm OracleAlgorithms[] = {
    SliceAlgorithm::Agrawal,
    SliceAlgorithm::AgrawalLst,
    SliceAlgorithm::BallHorwitz,
    SliceAlgorithm::Lyle,
};

/// Every algorithm the batch engine implements over the closure cache
/// (Weiser dispatches to the single-shot slicer, so comparing it only
/// tests the dispatcher). Soundness is irrelevant here — the check is
/// batch == single-shot, not slice == behaviour.
const SliceAlgorithm BatchAlgorithms[] = {
    SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
    SliceAlgorithm::AgrawalLst,   SliceAlgorithm::Structured,
    SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
    SliceAlgorithm::Lyle,         SliceAlgorithm::Gallagher,
    SliceAlgorithm::JiangZhouRobson,
};

struct Tally {
  uint64_t Pipelines = 0;        ///< Generator programs + corpus files.
  uint64_t Analyzed = 0;         ///< Full analyses that succeeded.
  uint64_t Degraded = 0;         ///< Budget exhaustions (the contract path).
  uint64_t InputErrors = 0;      ///< Non-resource diagnostics.
  uint64_t SlicesChecked = 0;    ///< (criterion, algorithm) slices run.
  uint64_t OracleRuns = 0;       ///< Interpreter comparisons executed.
  uint64_t Mismatches = 0;       ///< Oracle disagreements (repro written).
  uint64_t BatchCompared = 0;    ///< Batch-vs-single-shot comparisons.
  uint64_t BatchDivergences = 0; ///< Batch disagreements (repro written).
  uint64_t FaultRuns = 0;        ///< Fault-injected pipeline re-runs.
  uint64_t ContractViolations = 0; ///< Failure without diagnostics.
};

int usage() {
  std::fprintf(
      stderr,
      "usage: jslice_stress [--seeds A..B] [--budget tight|default|"
      "unlimited]\n"
      "                     [--dialect structured|goto|both] [--stmts N]\n"
      "                     [--max-criteria N] [--trials N] "
      "[--fault-stride N]\n"
      "                     [--no-batch-check] [--replay-journal FILE]\n"
      "                     [--verify-journal FILE] [--corpus DIR] "
      "[--out DIR]\n"
      "                     [--verbose]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

bool parseSeedRange(const std::string &Text, StressOptions &Opts) {
  size_t Dots = Text.find("..");
  if (Dots == std::string::npos) {
    std::optional<uint64_t> N = parseCount(Text);
    if (!N || *N == 0)
      return false;
    Opts.SeedLo = 1;
    Opts.SeedHi = *N;
    return true;
  }
  std::optional<uint64_t> Lo = parseCount(Text.substr(0, Dots));
  std::optional<uint64_t> Hi = parseCount(Text.substr(Dots + 2));
  if (!Lo || !Hi || *Lo == 0 || *Hi < *Lo)
    return false;
  Opts.SeedLo = *Lo;
  Opts.SeedHi = *Hi;
  return true;
}

//===----------------------------------------------------------------------===//
// Pipeline under test
//===----------------------------------------------------------------------===//

/// One oracle disagreement, with everything needed to reproduce it.
struct Mismatch {
  SliceAlgorithm Algorithm;
  Criterion Crit;
  std::vector<int64_t> Input;
  std::vector<int64_t> Expected;
  std::vector<int64_t> Actual;
};

/// Deterministic oracle inputs for one (program, criterion) pair.
std::vector<std::vector<int64_t>> oracleInputs(uint64_t Seed,
                                               unsigned Trials) {
  std::mt19937_64 Rng(Seed * 6364136223846793005ull + 1442695040888963407ull);
  std::vector<std::vector<int64_t>> Out;
  for (unsigned Trial = 0; Trial != Trials; ++Trial) {
    std::vector<int64_t> Input;
    unsigned Len = static_cast<unsigned>(Rng() % 6);
    for (unsigned I = 0; I != Len; ++I)
      Input.push_back(static_cast<int64_t>(Rng() % 21) - 10);
    Out.push_back(std::move(Input));
  }
  return Out;
}

/// Differential check of one analyzed program: every sound algorithm,
/// every (capped) reachable write criterion, a few deterministic
/// inputs. Returns the first mismatch found, if any. Oracle executions
/// run with their own step cap (not the analysis budget) so slicing
/// degradation and behavioural checking stay independent.
std::optional<Mismatch> checkOracle(const Analysis &A, uint64_t Seed,
                                    const StressOptions &Opts,
                                    Tally *Counts) {
  if (!A.cfg().unreachableNodes().empty())
    return std::nullopt; // The paper's guarantees assume no dead code.

  std::vector<Criterion> Criteria = reachableWriteCriteria(A);
  if (Criteria.size() > Opts.MaxCriteria)
    Criteria.resize(Opts.MaxCriteria);

  for (const Criterion &Crit : Criteria) {
    ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Crit);
    if (!RC)
      continue; // E.g. a criterion var the reduced program no longer has.
    for (SliceAlgorithm Algorithm : OracleAlgorithms) {
      SliceResult R = computeSlice(A, *RC, Algorithm);
      if (A.guard().exhausted())
        return std::nullopt; // Degraded mid-slice; nothing to compare.
      if (Counts)
        ++Counts->SlicesChecked;
      std::set<unsigned> Kept = R.Nodes;
      Kept.insert(A.cfg().exit());

      for (const std::vector<int64_t> &Input :
           oracleInputs(Seed + Crit.Line, Opts.Trials)) {
        ExecOptions Exec;
        Exec.Input = Input;
        Exec.MaxSteps = 100000;
        ExecResult Orig = runOriginal(A, RC->Node, RC->VarIds, Exec);
        if (!Orig.Completed)
          continue; // Original diverges; Weiser's criterion is vacuous.
        if (Counts)
          ++Counts->OracleRuns;
        ExecResult Sliced = runProjection(A, Kept, RC->Node, RC->VarIds, Exec);
        if (Sliced.Completed &&
            Sliced.CriterionValues == Orig.CriterionValues)
          continue;
        Mismatch M;
        M.Algorithm = Algorithm;
        M.Crit = Crit;
        M.Input = Input;
        M.Expected = Orig.CriterionValues;
        M.Actual = Sliced.CriterionValues;
        return M;
      }
    }
  }
  return std::nullopt;
}

/// One batch-vs-single-shot disagreement.
struct BatchDivergence {
  SliceAlgorithm Algorithm = SliceAlgorithm::Agrawal;
  Criterion Crit;
  std::set<unsigned> BatchLines;
  std::set<unsigned> SingleLines;
  bool OkMismatch = false; ///< One side degraded/failed, the other not.
};

/// Cross-checks the batch engine against the single-shot slicers on
/// every line criterion of \p Source, every cache-backed algorithm.
/// Each side runs on its own Analysis (own ResourceGuard) so a budget
/// tripped by one cannot skew the other; a (criterion, algorithm) pair
/// where either side degrades is skipped — the engines poll the guard
/// at different sites by design, so exhaustion points differ.
std::optional<BatchDivergence> checkBatchAgreement(const std::string &Source,
                                                   const StressOptions &Opts,
                                                   Tally *Counts) {
  for (SliceAlgorithm Algorithm : BatchAlgorithms) {
    ErrorOr<Analysis> BatchA = Analysis::fromSource(Source, Opts.B);
    ErrorOr<Analysis> SingleA = Analysis::fromSource(Source, Opts.B);
    if (!BatchA || !SingleA)
      return std::nullopt; // Analysis degradation is the pipeline's story.

    BatchSlicer Batch(*BatchA);
    std::vector<Criterion> Crits = allLineCriteria(*BatchA);
    BatchOptions BatchOpts;
    BatchOpts.Algorithm = Algorithm;
    BatchOpts.Threads = 1; // Deterministic budget trip points.
    std::vector<BatchEntry> Entries = Batch.runAll(Crits, BatchOpts);

    for (size_t I = 0; I != Entries.size(); ++I) {
      ErrorOr<SliceResult> Single = computeSlice(*SingleA, Crits[I], Algorithm);
      bool SingleDegraded =
          !Single && Single.diags().hasKind(DiagKind::ResourceExhausted);
      bool BatchDegraded =
          !Entries[I].Ok &&
          Entries[I].Diags.hasKind(DiagKind::ResourceExhausted);
      if (SingleDegraded || BatchDegraded)
        continue; // Budgets trip at different sites; not comparable.

      BatchDivergence D;
      D.Algorithm = Algorithm;
      D.Crit = Crits[I];
      if (Entries[I].Ok != Single.hasValue()) {
        D.OkMismatch = true;
        return D;
      }
      if (!Entries[I].Ok)
        continue; // Both failed to resolve — agreed.
      if (Counts)
        ++Counts->BatchCompared;
      const SliceResult &B = Entries[I].Result;
      const SliceResult &S = *Single;
      if (B.Nodes != S.Nodes || B.ReassociatedLabels != S.ReassociatedLabels ||
          B.TraversalAdditions != S.TraversalAdditions) {
        D.BatchLines = B.lineSet(BatchA->cfg());
        D.SingleLines = S.lineSet(SingleA->cfg());
        return D;
      }
    }
  }
  return std::nullopt;
}

/// Whether \p Source still exhibits *some* oracle failure (any sound
/// algorithm, any criterion). This is the reducer's interestingness
/// test: statement deletion moves line numbers, so the criterion is
/// re-derived from the candidate rather than pinned.
bool exhibitsFailure(const std::string &Source, const StressOptions &Opts) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source, Opts.B);
  if (!A)
    return false;
  return checkOracle(*A, /*Seed=*/17, Opts, nullptr).has_value();
}

/// Greedy ddmin-style line deletion: try dropping chunks of lines,
/// halving the chunk size down to single lines, keeping any deletion
/// that preserves \p Interesting. Candidates that no longer parse or
/// analyze simply fail the interestingness test and are skipped.
template <typename Predicate>
std::string reduceWhile(const std::string &Source, Predicate Interesting) {
  std::vector<std::string> Lines = splitLines(Source);
  auto Render = [](const std::vector<std::string> &Ls) {
    std::string Out;
    for (const std::string &L : Ls)
      Out += L + "\n";
    return Out;
  };

  for (size_t Chunk = std::max<size_t>(1, Lines.size() / 2); Chunk >= 1;
       Chunk /= 2) {
    bool Shrunk = true;
    while (Shrunk) {
      Shrunk = false;
      for (size_t Start = 0; Start + 1 <= Lines.size() && Lines.size() > 1;
           /* advance below */) {
        std::vector<std::string> Candidate;
        Candidate.reserve(Lines.size());
        size_t End = std::min(Lines.size(), Start + Chunk);
        Candidate.insert(Candidate.end(), Lines.begin(),
                         Lines.begin() + static_cast<long>(Start));
        Candidate.insert(Candidate.end(),
                         Lines.begin() + static_cast<long>(End),
                         Lines.end());
        if (!Candidate.empty() && Interesting(Render(Candidate))) {
          Lines = std::move(Candidate);
          Shrunk = true;
          // Stay at the same Start: the next chunk slid into place.
        } else {
          Start += Chunk;
        }
      }
    }
    if (Chunk == 1)
      break;
  }
  return Render(Lines);
}

std::string reduceFailure(const std::string &Source,
                          const StressOptions &Opts) {
  return reduceWhile(Source, [&](const std::string &Candidate) {
    return exhibitsFailure(Candidate, Opts);
  });
}

std::string reduceBatchDivergence(const std::string &Source,
                                  const StressOptions &Opts) {
  return reduceWhile(Source, [&](const std::string &Candidate) {
    return checkBatchAgreement(Candidate, Opts, nullptr).has_value();
  });
}

std::string describeInput(const std::vector<int64_t> &Values) {
  std::vector<std::string> Parts;
  for (int64_t V : Values)
    Parts.push_back(std::to_string(V));
  return "[" + join(Parts, ", ") + "]";
}

/// Writes the minimized repro plus a metadata sidecar; returns the path.
std::string writeRepro(const std::string &Tag, const std::string &Original,
                       const std::string &Reduced, const Mismatch &M,
                       const StressOptions &Opts) {
  std::error_code Ec;
  std::filesystem::create_directories(Opts.OutDir, Ec);
  std::string Base = Opts.OutDir + "/repro_" + Tag;
  {
    std::ofstream Out(Base + ".mc");
    Out << Reduced;
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "algorithm: " << algorithmName(M.Algorithm) << "\n"
        << "criterion: line " << M.Crit.Line << " vars "
        << join(M.Crit.Vars, ",") << " (line number refers to the\n"
        << "  original program; re-derive criteria on the reduced one)\n"
        << "input: " << describeInput(M.Input) << "\n"
        << "expected criterion values: " << describeInput(M.Expected) << "\n"
        << "actual criterion values:   " << describeInput(M.Actual) << "\n"
        << "reduced from " << splitLines(Original).size() << " to "
        << splitLines(Reduced).size() << " lines\n";
  }
  return Base + ".mc";
}

/// Writes a minimized batch-divergence repro plus metadata; returns the
/// path.
std::string writeBatchRepro(const std::string &Tag,
                            const std::string &Original,
                            const std::string &Reduced,
                            const BatchDivergence &D,
                            const StressOptions &Opts) {
  std::error_code Ec;
  std::filesystem::create_directories(Opts.OutDir, Ec);
  std::string Base = Opts.OutDir + "/batch_" + Tag;
  {
    std::ofstream Out(Base + ".mc");
    Out << Reduced;
  }
  {
    std::ofstream Out(Base + ".txt");
    Out << "batch-vs-single-shot divergence\n"
        << "algorithm: " << algorithmName(D.Algorithm) << "\n"
        << "criterion: line " << D.Crit.Line << " (line number refers to "
        << "the\n  original program; re-derive criteria on the reduced "
        << "one)\n";
    if (D.OkMismatch)
      Out << "one engine produced a slice, the other a diagnostic\n";
    else
      Out << "batch lines:       " << formatLineSet(D.BatchLines) << "\n"
          << "single-shot lines: " << formatLineSet(D.SingleLines) << "\n";
    Out << "reduced from " << splitLines(Original).size() << " to "
        << splitLines(Reduced).size() << " lines\n";
  }
  return Base + ".mc";
}

/// Re-runs \p Source's pipeline with a fault injected at every
/// \p Stride-th checkpoint, asserting the contract: the injected run
/// fails with diagnostics (or survives, when the ordinal lands past
/// the pipeline's checkpoints) and the disarmed re-run succeeds again.
void runFaultSweep(const std::string &Source, const std::string &Tag,
                   const StressOptions &Opts, Tally &Counts) {
  // Size the pipeline: one clean run, counting checkpoints.
  FaultInjection::resetCount();
  {
    ErrorOr<Analysis> A = Analysis::fromSource(Source, Opts.B);
    if (!A)
      return; // Degraded before any fault; nothing to sweep.
  }
  uint64_t Total = FaultInjection::observedCheckpoints();

  for (uint64_t At = 1; At <= Total; At += Opts.FaultStride) {
    FaultInjection::ScopedArm Arm(At);
    ++Counts.FaultRuns;
    ErrorOr<Analysis> A = Analysis::fromSource(Source, Opts.B);
    if (!A && A.diags().empty()) {
      ++Counts.ContractViolations;
      std::fprintf(stderr,
                   "CONTRACT VIOLATION: %s fault@%llu failed without "
                   "diagnostics\n",
                   Tag.c_str(), static_cast<unsigned long long>(At));
    }
  }

  // Disarmed, the pipeline must succeed again (no sticky global state).
  ErrorOr<Analysis> A = Analysis::fromSource(Source, Opts.B);
  if (!A) {
    ++Counts.ContractViolations;
    std::fprintf(stderr,
                 "CONTRACT VIOLATION: %s does not recover after the fault "
                 "sweep: %s\n",
                 Tag.c_str(), A.diags().str().c_str());
  }
}

/// Pushes one source through analysis + differential oracle; triages
/// any mismatch. \p Tag names repro files.
void runPipeline(const std::string &Source, const std::string &Tag,
                 uint64_t Seed, const StressOptions &Opts, Tally &Counts) {
  ++Counts.Pipelines;
  ErrorOr<Analysis> A = Analysis::fromSource(Source, Opts.B);
  if (!A) {
    if (A.diags().empty()) {
      ++Counts.ContractViolations;
      std::fprintf(stderr, "CONTRACT VIOLATION: %s failed without "
                           "diagnostics\n",
                   Tag.c_str());
      return;
    }
    if (A.diags().hasKind(DiagKind::ResourceExhausted)) {
      ++Counts.Degraded;
      if (Opts.Verbose)
        std::fprintf(stderr, "degraded %s: %s\n", Tag.c_str(),
                     A.diags().str().c_str());
    } else {
      ++Counts.InputErrors;
      if (Opts.Verbose)
        std::fprintf(stderr, "rejected %s: %s\n", Tag.c_str(),
                     A.diags().str().c_str());
    }
    return;
  }
  ++Counts.Analyzed;

  std::optional<Mismatch> M = checkOracle(*A, Seed, Opts, &Counts);
  if (M) {
    ++Counts.Mismatches;
    std::string Reduced = reduceFailure(Source, Opts);
    std::string Path = writeRepro(Tag, Source, Reduced, *M, Opts);
    std::fprintf(stderr,
                 "MISMATCH %s: %s slice diverges on criterion line %u; "
                 "minimized repro: %s\n",
                 Tag.c_str(), algorithmName(M->Algorithm), M->Crit.Line,
                 Path.c_str());
  }

  if (Opts.BatchCheck) {
    std::optional<BatchDivergence> D =
        checkBatchAgreement(Source, Opts, &Counts);
    if (D) {
      ++Counts.BatchDivergences;
      std::string Reduced = reduceBatchDivergence(Source, Opts);
      std::string Path = writeBatchRepro(Tag, Source, Reduced, *D, Opts);
      std::fprintf(stderr,
                   "BATCH DIVERGENCE %s: %s batch slice differs from "
                   "single-shot on criterion line %u; minimized repro: %s\n",
                   Tag.c_str(), algorithmName(D->Algorithm), D->Crit.Line,
                   Path.c_str());
    }
  }

  if (Opts.FaultStride)
    runFaultSweep(Source, Tag, Opts, Counts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

int main(int argc, char **argv) {
  StressOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--seeds") {
      std::optional<std::string> Value = NextValue();
      if (!Value || !parseSeedRange(*Value, Opts)) {
        std::fprintf(stderr, "error: --seeds expects N or A..B\n");
        return usage();
      }
    } else if (Arg == "--budget") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --budget requires an argument\n");
        return usage();
      }
      if (*Value == "tight")
        Opts.B = Budget::tight();
      else if (*Value == "default" || *Value == "unlimited")
        Opts.B = Budget::unlimited();
      else {
        std::fprintf(stderr, "error: unknown budget '%s'\n", Value->c_str());
        return usage();
      }
    } else if (Arg == "--dialect") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --dialect requires an argument\n");
        return usage();
      }
      Opts.Structured = *Value == "structured" || *Value == "both";
      Opts.Gotos = *Value == "goto" || *Value == "both";
      if (!Opts.Structured && !Opts.Gotos) {
        std::fprintf(stderr, "error: unknown dialect '%s'\n", Value->c_str());
        return usage();
      }
    } else if (Arg == "--stmts" || Arg == "--max-criteria" ||
               Arg == "--trials" || Arg == "--fault-stride") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--stmts")
        Opts.TargetStmts = static_cast<unsigned>(*N);
      else if (Arg == "--max-criteria")
        Opts.MaxCriteria = static_cast<unsigned>(*N);
      else if (Arg == "--trials")
        Opts.Trials = static_cast<unsigned>(*N);
      else
        Opts.FaultStride = *N;
    } else if (Arg == "--replay-journal") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --replay-journal requires a file\n");
        return usage();
      }
      Opts.ReplayJournal = *Value;
    } else if (Arg == "--verify-journal") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --verify-journal requires a file\n");
        return usage();
      }
      Opts.VerifyJournal = *Value;
    } else if (Arg == "--corpus") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --corpus requires a directory\n");
        return usage();
      }
      Opts.CorpusDir = *Value;
    } else if (Arg == "--out") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: --out requires a directory\n");
        return usage();
      }
      Opts.OutDir = *Value;
    } else if (Arg == "--no-batch-check") {
      Opts.BatchCheck = false;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  // Scrub mode: verify the journal's record checksums and classify its
  // ending, nothing else. A torn tail is the normal residue of a kill
  // -9 mid-append (recovery truncates it); mid-file corruption means
  // the disk or a foreign writer damaged records recovery depends on.
  if (!Opts.VerifyJournal.empty()) {
    JournalScan Scan = scanJournalDetailed(Opts.VerifyJournal);
    if (!Scan.Exists) {
      std::fprintf(stderr, "error: cannot read journal %s\n",
                   Opts.VerifyJournal.c_str());
      return 2;
    }
    const char *Ending = Scan.CleanShutdown ? "clean shutdown"
                         : Scan.TornTail    ? "torn tail"
                                            : "no shutdown record";
    std::printf("jslice_stress: %s — %llu records (%llu legacy), "
                "%llu in flight, ends: %s\n",
                Opts.VerifyJournal.c_str(),
                static_cast<unsigned long long>(Scan.Records),
                static_cast<unsigned long long>(Scan.LegacyRecords),
                static_cast<unsigned long long>(Scan.InFlight.size()),
                Ending);
    if (Scan.CorruptRecords || Scan.SeqRegressions) {
      std::printf("               CORRUPT: %llu damaged record%s mid-file, "
                  "%llu sequence regression%s\n",
                  static_cast<unsigned long long>(Scan.CorruptRecords),
                  Scan.CorruptRecords == 1 ? "" : "s",
                  static_cast<unsigned long long>(Scan.SeqRegressions),
                  Scan.SeqRegressions == 1 ? "" : "s");
      return 1;
    }
    if (Scan.TornTail)
      std::printf("               torn tail after byte %llu (normal after "
                  "a crash mid-append; recovery truncates it)\n",
                  static_cast<unsigned long long>(Scan.GoodBytes));
    return 0;
  }

  Tally Counts;

  // Requests a crashed server left in flight: each poisoned program
  // goes through the same triage + ddmin as a generator mismatch, so
  // the quarantine turns into a root cause.
  if (!Opts.ReplayJournal.empty()) {
    std::vector<PoisonedRequest> Poisoned = scanJournal(Opts.ReplayJournal);
    if (Poisoned.empty())
      std::fprintf(stderr, "jslice_stress: no poisoned requests in %s\n",
                   Opts.ReplayJournal.c_str());
    for (const PoisonedRequest &P : Poisoned) {
      std::string Tag = "journal_";
      for (char C : P.Id)
        Tag += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
      runPipeline(P.Request.Program, Tag, /*Seed=*/1, Opts, Counts);
    }
  }

  // Checked-in fuzz seeds first: fixed adversarial shapes.
  if (!Opts.CorpusDir.empty()) {
    std::error_code Ec;
    std::filesystem::directory_iterator It(Opts.CorpusDir, Ec), End;
    if (Ec) {
      std::fprintf(stderr, "error: cannot read corpus directory %s: %s\n",
                   Opts.CorpusDir.c_str(), Ec.message().c_str());
      return usage();
    }
    std::vector<std::filesystem::path> Files;
    for (; It != End; ++It)
      if (It->is_regular_file())
        Files.push_back(It->path());
    std::sort(Files.begin(), Files.end());
    for (const std::filesystem::path &File : Files) {
      std::ifstream In(File);
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      runPipeline(Buffer.str(), "corpus_" + File.stem().string(),
                  /*Seed=*/1, Opts, Counts);
    }
  }

  // Generator fan-out over both dialects.
  for (uint64_t Seed = Opts.SeedLo; Seed <= Opts.SeedHi; ++Seed) {
    for (int Dialect = 0; Dialect != 2; ++Dialect) {
      bool Gotos = Dialect == 1;
      if ((Gotos && !Opts.Gotos) || (!Gotos && !Opts.Structured))
        continue;
      GenOptions Gen;
      Gen.Seed = Seed;
      Gen.TargetStmts = Opts.TargetStmts;
      Gen.AllowGotos = Gotos;
      std::string Tag = std::string(Gotos ? "goto" : "structured") +
                        "_seed" + std::to_string(Seed);
      runPipeline(generateProgram(Gen), Tag, Seed, Opts, Counts);
    }
  }

  std::printf("jslice_stress: %llu pipelines — %llu analyzed, %llu degraded "
              "under budget, %llu input errors\n",
              static_cast<unsigned long long>(Counts.Pipelines),
              static_cast<unsigned long long>(Counts.Analyzed),
              static_cast<unsigned long long>(Counts.Degraded),
              static_cast<unsigned long long>(Counts.InputErrors));
  std::printf("               %llu slices checked, %llu oracle runs, "
              "%llu mismatches, %llu fault runs, %llu contract "
              "violations\n",
              static_cast<unsigned long long>(Counts.SlicesChecked),
              static_cast<unsigned long long>(Counts.OracleRuns),
              static_cast<unsigned long long>(Counts.Mismatches),
              static_cast<unsigned long long>(Counts.FaultRuns),
              static_cast<unsigned long long>(Counts.ContractViolations));
  std::printf("               %llu batch comparisons, %llu batch "
              "divergences\n",
              static_cast<unsigned long long>(Counts.BatchCompared),
              static_cast<unsigned long long>(Counts.BatchDivergences));

  return Counts.Mismatches || Counts.ContractViolations ||
                 Counts.BatchDivergences
             ? 1
             : 0;
}
