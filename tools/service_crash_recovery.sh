#!/usr/bin/env bash
# Crash-recovery acceptance for the slicing service: kill -9 a server
# while a request is in flight (the --hang-after-begin test hook gives
# the kill a deterministic window after the journal `begin` record is
# durable), then assert the restart quarantines the request as a
# replayable reproducer, refuses its resubmission, and does not
# re-quarantine on a second restart. Optionally replays the crashed
# journal through jslice_stress's triage path.
#
#   service_crash_recovery.sh <jslice_serve> <workdir> [<jslice_stress>]
set -u

SERVE="$1"
WORK="$2"
STRESS="${3:-}"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

REQ='{"id":"victim","program":"read(a);\nwrite(a);\n","line":2,"vars":["a"]}'

printf '%s\n' "$REQ" |
  "$SERVE" --journal wal.jsonl --quarantine q --hang-after-begin victim &
PID=$!

# The begin record must become durable before the kill.
for _ in $(seq 1 100); do
  grep -q '"event":"begin"' wal.jsonl 2>/dev/null && break
  sleep 0.1
done
if ! grep -q '"event":"begin"' wal.jsonl 2>/dev/null; then
  echo "FAIL: no begin record appeared in the journal"
  kill -9 "$PID" 2>/dev/null
  exit 1
fi

kill -9 "$PID"
wait "$PID" 2>/dev/null

# The dead server's journal feeds the differential triage directly.
if [ -n "$STRESS" ]; then
  if ! "$STRESS" --replay-journal wal.jsonl --seeds 1..1 --trials 1 \
       --no-batch-check --out replay-repros; then
    echo "FAIL: jslice_stress --replay-journal flagged the crashed journal"
    exit 1
  fi
fi

# Restart: the in-flight request must be quarantined...
OUT=$(printf '%s\n' "$REQ" | "$SERVE" --journal wal.jsonl --quarantine q \
        2>stderr1.txt)
if ! grep -q "quarantined" stderr1.txt; then
  echo "FAIL: restart did not quarantine the in-flight request"
  cat stderr1.txt
  exit 1
fi
if [ ! -f q/poison_victim.mc ]; then
  echo "FAIL: no reproducer was written"
  exit 1
fi
# ...and its resubmission refused with a pointer to the reproducer.
if ! printf '%s' "$OUT" | grep -q 'poisoned'; then
  echo "FAIL: resubmission was not refused: $OUT"
  exit 1
fi

# A second restart must not re-quarantine (the pair was closed).
printf '' | "$SERVE" --journal wal.jsonl --quarantine q 2>stderr2.txt
if grep -q "quarantined" stderr2.txt; then
  echo "FAIL: second restart re-quarantined an already-closed request"
  exit 1
fi

echo "crash recovery OK"
