//===- tools/jslice_netchaos.cpp - Network chaos proxy ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The standalone front end over net/ChaosProxy.h: sits between
/// clients and a `jslice_serve --listen` upstream and injects the
/// network failure modes the transport and client must survive —
/// delays, byte-level truncation, mid-response resets, stalled reads.
/// Faults are seeded, so a failing run is reproducible from its seed.
///
///   jslice_netchaos --listen HOST:PORT --upstream HOST:PORT
///                   [--reset-permille N] [--truncate-permille N]
///                   [--stall-permille N] [--delay-permille N]
///                   [--delay-ms N] [--stall-ms N] [--seed N]
///
/// Runs until SIGTERM/SIGINT, then prints fault counters on stderr and
/// exits 0. The bound port is reported as "listening on HOST:PORT" on
/// stderr (parsable, for --listen HOST:0).
///
//===----------------------------------------------------------------------===//

#include "net/ChaosProxy.h"
#include "net/Socket.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

using namespace jslice;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jslice_netchaos --listen HOST:PORT --upstream HOST:PORT\n"
      "                       [--reset-permille N] [--truncate-permille N]\n"
      "                       [--stall-permille N] [--delay-permille N]\n"
      "                       [--delay-ms N] [--stall-ms N] [--seed N]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

std::atomic<bool> StopRequested{false};

extern "C" void onStopSignal(int) {
  StopRequested.store(true, std::memory_order_relaxed);
}

} // namespace

int main(int argc, char **argv) {
  ChaosOptions Opts;
  std::string ListenSpec, UpstreamSpec;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--listen" || Arg == "--upstream") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n",
                     Arg.c_str());
        return usage();
      }
      if (Arg == "--listen")
        ListenSpec = *Value;
      else
        UpstreamSpec = *Value;
    } else if (Arg == "--reset-permille" || Arg == "--truncate-permille" ||
               Arg == "--stall-permille" || Arg == "--delay-permille" ||
               Arg == "--delay-ms" || Arg == "--stall-ms" ||
               Arg == "--seed") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--reset-permille")
        Opts.ResetPermille = static_cast<unsigned>(*N);
      else if (Arg == "--truncate-permille")
        Opts.TruncatePermille = static_cast<unsigned>(*N);
      else if (Arg == "--stall-permille")
        Opts.StallPermille = static_cast<unsigned>(*N);
      else if (Arg == "--delay-permille")
        Opts.DelayPermille = static_cast<unsigned>(*N);
      else if (Arg == "--delay-ms")
        Opts.DelayMs = *N;
      else if (Arg == "--stall-ms")
        Opts.StallMs = *N;
      else
        Opts.Seed = *N;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  if (ListenSpec.empty() || UpstreamSpec.empty()) {
    std::fprintf(stderr, "error: need --listen and --upstream\n");
    return usage();
  }
  if (!parseHostPort(ListenSpec, Opts.ListenHost, Opts.ListenPort)) {
    std::fprintf(stderr, "error: --listen expects HOST:PORT, got '%s'\n",
                 ListenSpec.c_str());
    return usage();
  }
  if (!parseHostPort(UpstreamSpec, Opts.UpstreamHost, Opts.UpstreamPort) ||
      Opts.UpstreamPort == 0) {
    std::fprintf(stderr, "error: --upstream expects HOST:PORT, got '%s'\n",
                 UpstreamSpec.c_str());
    return usage();
  }

  ChaosProxy Proxy(Opts);
  std::string Err;
  if (!Proxy.start(Err)) {
    std::fprintf(stderr, "error: cannot start proxy: %s\n", Err.c_str());
    return usage();
  }

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);

  std::fprintf(stderr, "jslice_netchaos: listening on %s:%u -> %s\n",
               Opts.ListenHost.c_str(), Proxy.port(), UpstreamSpec.c_str());

  while (!StopRequested.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Proxy.stop();
  ChaosStats S = Proxy.stats();
  std::fprintf(stderr,
               "jslice_netchaos: %llu connections, %llu bytes; faults: "
               "%llu delays, %llu truncations, %llu resets, %llu stalls\n",
               static_cast<unsigned long long>(S.Connections),
               static_cast<unsigned long long>(S.BytesForwarded),
               static_cast<unsigned long long>(S.Delays),
               static_cast<unsigned long long>(S.Truncations),
               static_cast<unsigned long long>(S.Resets),
               static_cast<unsigned long long>(S.Stalls));
  return 0;
}
