#!/usr/bin/env bash
# Graceful-drain acceptance for the slicing service: SIGTERM a server
# that has served traffic and still holds its stdin open, then assert
# it (a) exits 0 on its own, (b) answered everything it accepted, and
# (c) closed the journal with the clean-shutdown marker — the record
# operators use to tell a drain from a crash. Run twice: thread and
# process isolation.
#
#   service_drain.sh <jslice_serve> <workdir>
set -u

SERVE="$1"
WORK="$2"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

REQ='{"id":"r%d","program":"read(a);\nif (a > 0) { write(a); }\nwrite(a);\n","line":3,"vars":["a"]}'

run_mode() {
  local MODE="$1"
  local WAL="wal-$MODE.jsonl"
  rm -f "$WAL" out.log err.log
  mkfifo pipe-"$MODE"

  "$SERVE" --journal "$WAL" --isolate "$MODE" --threads 2 \
    < pipe-"$MODE" > out.log 2> err.log &
  local PID=$!
  # Hold a writer open so the server sees an idle-but-live stream
  # (EOF would end the loop without any signal involved).
  exec 3> pipe-"$MODE"

  for I in 1 2 3; do
    # shellcheck disable=SC2059
    printf "$REQ\n" "$I" >&3
  done

  # All three answered before the signal lands.
  for _ in $(seq 1 100); do
    [ "$(grep -c '"status"' out.log 2>/dev/null)" -ge 3 ] && break
    sleep 0.1
  done
  if [ "$(grep -c '"status"' out.log)" -lt 3 ]; then
    echo "FAIL($MODE): requests were not answered before the drain"
    kill -9 "$PID" 2>/dev/null
    exec 3>&-
    return 1
  fi

  kill -TERM "$PID"
  local RC=1
  for _ in $(seq 1 100); do
    if ! kill -0 "$PID" 2>/dev/null; then
      wait "$PID"
      RC=$?
      break
    fi
    sleep 0.1
  done
  exec 3>&-

  if [ "$RC" -ne 0 ]; then
    echo "FAIL($MODE): server exited $RC after SIGTERM (want 0)"
    return 1
  fi
  if ! grep -q "shut down cleanly" err.log; then
    echo "FAIL($MODE): no clean-shutdown log line"
    cat err.log
    return 1
  fi
  if ! grep -q '"event":"shutdown"' "$WAL"; then
    echo "FAIL($MODE): journal lacks the clean-shutdown marker"
    cat "$WAL"
    return 1
  fi
  # The drain closed every begin: a restart must quarantine nothing.
  printf '' | "$SERVE" --journal "$WAL" > /dev/null 2> restart.log
  if grep -q "quarantined" restart.log; then
    echo "FAIL($MODE): restart after a clean drain quarantined requests"
    return 1
  fi
  echo "drain OK ($MODE)"
}

run_mode thread || exit 1
run_mode process || exit 1
echo "graceful drain OK"
