#!/usr/bin/env bash
# Graceful-drain acceptance for the slicing service: SIGTERM a server
# that has served traffic and still holds its stdin open, then assert
# it (a) exits 0 on its own, (b) answered everything it accepted, and
# (c) closed the journal with the clean-shutdown marker — the record
# operators use to tell a drain from a crash. Run twice: thread and
# process isolation — then once more over a live TCP socket when a
# jslice_client binary is supplied.
#
#   service_drain.sh <jslice_serve> <workdir> [<jslice_client>]
set -u

SERVE="$1"
WORK="$2"
CLIENT="${3:-}"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

REQ='{"id":"r%d","program":"read(a);\nif (a > 0) { write(a); }\nwrite(a);\n","line":3,"vars":["a"]}'

run_mode() {
  local MODE="$1"
  local WAL="wal-$MODE.jsonl"
  rm -f "$WAL" out.log err.log
  mkfifo pipe-"$MODE"

  "$SERVE" --journal "$WAL" --isolate "$MODE" --threads 2 \
    < pipe-"$MODE" > out.log 2> err.log &
  local PID=$!
  # Hold a writer open so the server sees an idle-but-live stream
  # (EOF would end the loop without any signal involved).
  exec 3> pipe-"$MODE"

  for I in 1 2 3; do
    # shellcheck disable=SC2059
    printf "$REQ\n" "$I" >&3
  done

  # All three answered before the signal lands.
  for _ in $(seq 1 100); do
    [ "$(grep -c '"status"' out.log 2>/dev/null)" -ge 3 ] && break
    sleep 0.1
  done
  if [ "$(grep -c '"status"' out.log)" -lt 3 ]; then
    echo "FAIL($MODE): requests were not answered before the drain"
    kill -9 "$PID" 2>/dev/null
    exec 3>&-
    return 1
  fi

  kill -TERM "$PID"
  local RC=1
  for _ in $(seq 1 100); do
    if ! kill -0 "$PID" 2>/dev/null; then
      wait "$PID"
      RC=$?
      break
    fi
    sleep 0.1
  done
  exec 3>&-

  if [ "$RC" -ne 0 ]; then
    echo "FAIL($MODE): server exited $RC after SIGTERM (want 0)"
    return 1
  fi
  if ! grep -q "shut down cleanly" err.log; then
    echo "FAIL($MODE): no clean-shutdown log line"
    cat err.log
    return 1
  fi
  if ! grep -q '"event":"shutdown"' "$WAL"; then
    echo "FAIL($MODE): journal lacks the clean-shutdown marker"
    cat "$WAL"
    return 1
  fi
  # The drain closed every begin: a restart must quarantine nothing.
  printf '' | "$SERVE" --journal "$WAL" > /dev/null 2> restart.log
  if grep -q "quarantined" restart.log; then
    echo "FAIL($MODE): restart after a clean drain quarantined requests"
    return 1
  fi
  echo "drain OK ($MODE)"
}

# The same contract over a live socket: clients were answered, SIGTERM
# flushes in-flight responses ("TCP drain complete"), exit 0, clean
# journal marker, nothing to quarantine on restart.
run_tcp_mode() {
  local WAL="wal-tcp.jsonl"
  rm -f "$WAL" out.log err.log

  "$SERVE" --listen 127.0.0.1:0 --journal "$WAL" --isolate thread \
    --threads 2 > out.log 2> err.log &
  local PID=$!

  # The ephemeral port is reported on stderr: "listening on HOST:PORT".
  local PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/^jslice_serve: listening on [^:]*:\([0-9]*\)$/\1/p' \
             err.log 2>/dev/null | head -1)
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "FAIL(tcp): server never reported its port"
    cat err.log
    kill -9 "$PID" 2>/dev/null
    return 1
  fi

  for I in 1 2 3; do
    # Bash substitution, not printf: the \n escapes in the program text
    # must reach the server as two characters inside the JSON string.
    if ! "$CLIENT" --connect 127.0.0.1:"$PORT" \
           --request "${REQ/r%d/r$I}" >> tcp-out.log 2>> tcp-err.log
    then
      echo "FAIL(tcp): client request $I failed"
      cat tcp-err.log
      kill -9 "$PID" 2>/dev/null
      return 1
    fi
  done
  if [ "$(grep -c '"status":"ok"' tcp-out.log)" -lt 3 ]; then
    echo "FAIL(tcp): expected 3 ok responses over the socket"
    cat tcp-out.log
    kill -9 "$PID" 2>/dev/null
    return 1
  fi

  kill -TERM "$PID"
  local RC=1
  for _ in $(seq 1 100); do
    if ! kill -0 "$PID" 2>/dev/null; then
      wait "$PID"
      RC=$?
      break
    fi
    sleep 0.1
  done

  if [ "$RC" -ne 0 ]; then
    echo "FAIL(tcp): server exited $RC after SIGTERM (want 0)"
    cat err.log
    return 1
  fi
  if ! grep -q "TCP drain complete" err.log; then
    echo "FAIL(tcp): no TCP drain log line"
    cat err.log
    return 1
  fi
  if ! grep -q "shut down cleanly" err.log; then
    echo "FAIL(tcp): no clean-shutdown log line"
    cat err.log
    return 1
  fi
  if ! grep -q '"event":"shutdown"' "$WAL"; then
    echo "FAIL(tcp): journal lacks the clean-shutdown marker"
    cat "$WAL"
    return 1
  fi
  printf '' | "$SERVE" --journal "$WAL" > /dev/null 2> restart.log
  if grep -q "quarantined" restart.log; then
    echo "FAIL(tcp): restart after a clean TCP drain quarantined requests"
    return 1
  fi
  echo "drain OK (tcp)"
}

run_mode thread || exit 1
run_mode process || exit 1
if [ -n "$CLIENT" ]; then
  rm -f tcp-out.log tcp-err.log
  run_tcp_mode || exit 1
fi
echo "graceful drain OK"
