//===- tools/jslice_client.cpp - Retrying slicing-service client ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The CLI over net/Client.h: sends JSON-Lines requests to a
/// `jslice_serve --listen` endpoint (directly or through
/// jslice_netchaos) and prints each response line on stdout. Transport
/// failures — refused connects, torn responses, resets, deadlines —
/// are retried on fresh connections with exponential backoff and
/// jitter; retried submission is safe because the server deduplicates
/// crashed requests by the journal's content key (see net/Client.h for
/// the full retry contract).
///
///   jslice_client --connect HOST:PORT --request LINE
///   jslice_client --connect HOST:PORT --stats
///   jslice_client --connect HOST:PORT --health
///   jslice_client --connect HOST:PORT --promote
///   jslice_client --connect HOST:PORT --input FILE   (- = stdin)
///
/// --connect may repeat: extra endpoints are failover targets, rotated
/// on any transport failure. Resubmitting after a failover is safe for
/// the same reason retrying is — the service dedups by content key and
/// slicing is a pure function of the request.
///
///   --request LINE    send one raw protocol line
///   --stats           send {"stats": true} and pretty-print the
///                     counters (server, cache, supervisor, transport)
///                     one per line; use --request '{"stats": true}'
///                     for the raw JSON line
///   --health          send {"health": true} and pretty-print the
///                     liveness answer (uptime, generation, shard
///                     heartbeats, breaker). LB-probe exit discipline:
///                     0 healthy, 1 degraded (draining, breaker open,
///                     or a wedged shard), 4 unreachable
///   --promote         send {"promote": true}: turn a warm standby
///                     into the primary (exit 0 on "ok"; promoting a
///                     server that is already primary is an ok no-op)
///   --input FILE      send every line of FILE in order ("-" = stdin)
///   --connect-timeout-ms N  per-connect deadline (default 5000)
///   --timeout-ms N    per-response deadline (default 30000)
///   --attempts N      total attempts per request (default 4)
///   --backoff-ms N    backoff base, doubling per attempt (default 50)
///   --backoff-cap-ms N  backoff ceiling (default 2000)
///   --retry-budget-ms N  total retry wall-clock per request; once
///                     spent, fail fast with exit 4 instead of
///                     sleeping through more backoff (default 30000;
///                     0 = unbounded, the old behavior)
///   --seed N          jitter PRNG seed (0 = per-process)
///
/// Exit taxonomy (machine-readable, mirrors slicer exit discipline):
///   0  every response ok at the requested tier
///   1  some response carried a deterministic non-ok status
///      (error / resource-exhausted / bad-request / shed / poisoned /
///      cancelled / crashed) — the refusal is the answer; retrying the
///      same request yields the same verdict
///   2  usage error
///   3  every response ok, but at least one served degraded
///   4  transport failure after all retries — the request's fate is
///      unknown to this client (the server may still have served it)
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Socket.h"
#include "service/Json.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace jslice;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jslice_client --connect HOST:PORT [--connect HOST:PORT ...]\n"
      "                     (--request LINE | --stats | --health | "
      "--promote | --input FILE)\n"
      "                     [--connect-timeout-ms N] [--timeout-ms N]\n"
      "                     [--attempts N] [--backoff-ms N]\n"
      "                     [--backoff-cap-ms N] [--retry-budget-ms N] "
      "[--seed N]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

/// Severity of one response for the exit taxonomy.
enum class Verdict { Ok, Degraded, Refused, Transport };

Verdict classify(const ClientResult &R) {
  if (!R.Ok)
    return Verdict::Transport;
  // The response is one JSON line from Request.h's taxonomy; key
  // matching is enough (ids and programs are JSON-escaped strings, so
  // a literal `"status":"ok"` cannot appear inside them).
  if (R.Response.find("\"status\":\"ok\"") == std::string::npos)
    return Verdict::Refused;
  if (R.Response.find("\"degraded\":true") != std::string::npos)
    return Verdict::Degraded;
  return Verdict::Ok;
}

/// Recursive "key: value" renderer for the {"stats"} reply. Byte
/// counters get a MiB gloss so watermark headroom is readable at a
/// glance.
void printStatsValue(const std::string &Name, const JsonValue &V,
                     unsigned Indent) {
  std::string Pad(Indent, ' ');
  if (V.isObject()) {
    std::printf("%s%s:\n", Pad.c_str(), Name.c_str());
    for (const auto &[Key, Member] : V.members())
      printStatsValue(Key, Member, Indent + 2);
    return;
  }
  if (V.isNumber() && Name.size() > 6 &&
      Name.compare(Name.size() - 6, 6, "_bytes") == 0) {
    std::printf("%s%s: %lld (%.1f MiB)\n", Pad.c_str(), Name.c_str(),
                static_cast<long long>(V.asInt()),
                static_cast<double>(V.asInt()) / (1024.0 * 1024.0));
    return;
  }
  std::printf("%s%s: %s\n", Pad.c_str(), Name.c_str(), V.str().c_str());
}

/// Pretty-prints one stats response line; false when it does not look
/// like one (caller falls back to the raw line).
bool printStatsPretty(const std::string &Line) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *S = V->find("stats");
  if (!S || !S->isObject())
    return false;
  for (const auto &[Key, Member] : S->members())
    printStatsValue(Key, Member, 0);
  return true;
}

/// Pretty-prints one health response line (the response *is* the
/// health object — no wrapper key); false when it does not look like
/// one.
bool printHealthPretty(const std::string &Line) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject() || !V->find("status"))
    return false;
  for (const auto &[Key, Member] : V->members())
    printStatsValue(Key, Member, 0);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ClientOptions Opts;
  Opts.RetryBudgetMs = 30000; // Bounded by default; 0 restores legacy.
  std::vector<std::string> Connects;
  std::string RequestLine, InputPath;
  bool HaveRequest = false, WantStats = false, WantHealth = false;
  bool WantPromote = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--stats") {
      WantStats = true;
    } else if (Arg == "--health") {
      WantHealth = true;
    } else if (Arg == "--promote") {
      WantPromote = true;
    } else if (Arg == "--connect" || Arg == "--request" ||
               Arg == "--input") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n",
                     Arg.c_str());
        return usage();
      }
      if (Arg == "--connect")
        Connects.push_back(*Value);
      else if (Arg == "--request") {
        RequestLine = *Value;
        HaveRequest = true;
      } else
        InputPath = *Value;
    } else if (Arg == "--connect-timeout-ms" || Arg == "--timeout-ms" ||
               Arg == "--attempts" || Arg == "--backoff-ms" ||
               Arg == "--backoff-cap-ms" || Arg == "--retry-budget-ms" ||
               Arg == "--seed") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--connect-timeout-ms")
        Opts.ConnectTimeoutMs = static_cast<int>(*N);
      else if (Arg == "--timeout-ms")
        Opts.ResponseTimeoutMs = static_cast<int>(*N);
      else if (Arg == "--attempts")
        Opts.MaxAttempts = static_cast<unsigned>(*N);
      else if (Arg == "--backoff-ms")
        Opts.BackoffBaseMs = *N;
      else if (Arg == "--backoff-cap-ms")
        Opts.BackoffCapMs = *N;
      else if (Arg == "--retry-budget-ms")
        Opts.RetryBudgetMs = *N;
      else
        Opts.JitterSeed = *N;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  if (Connects.empty() ||
      (HaveRequest + WantStats + WantHealth + WantPromote +
       !InputPath.empty()) != 1) {
    std::fprintf(stderr, "error: need --connect and exactly one of "
                         "--request / --stats / --health / --promote / "
                         "--input\n");
    return usage();
  }
  for (const std::string &Spec : Connects) {
    std::string Host;
    uint16_t Port = 0;
    if (!parseHostPort(Spec, Host, Port) || Port == 0) {
      std::fprintf(stderr, "error: --connect expects HOST:PORT, got '%s'\n",
                   Spec.c_str());
      return usage();
    }
  }
  parseHostPort(Connects.front(), Opts.Host, Opts.Port);
  if (Connects.size() > 1)
    Opts.Endpoints = Connects;
  if (WantStats)
    RequestLine = "{\"stats\": true}";
  if (WantHealth)
    RequestLine = "{\"health\": true}";
  if (WantPromote)
    RequestLine = "{\"promote\": true}";

  ClientConnection Conn(Opts);

  // Aggregate across lines: transport loss dominates (the caller
  // cannot trust anything after it), then deterministic refusals,
  // then degradation.
  bool SawTransport = false, SawRefused = false, SawDegraded = false;

  auto sendOne = [&](const std::string &Line) {
    if (Line.empty() ||
        Line.find_first_not_of(" \t\r") == std::string::npos)
      return;
    ClientResult R = Conn.request(Line);
    switch (classify(R)) {
    case Verdict::Transport:
      SawTransport = true;
      std::fprintf(stderr, "jslice_client: transport failure after %u "
                           "attempt%s: %s\n",
                   R.Attempts, R.Attempts == 1 ? "" : "s",
                   R.TransportError.c_str());
      return;
    case Verdict::Refused:
      SawRefused = true;
      break;
    case Verdict::Degraded:
      SawDegraded = true;
      break;
    case Verdict::Ok:
      break;
    }
    if (WantStats && printStatsPretty(R.Response))
      return;
    if (WantHealth && printHealthPretty(R.Response))
      return;
    std::cout << R.Response << "\n";
  };

  if (!InputPath.empty()) {
    std::ifstream File;
    std::istream *In = &std::cin;
    if (InputPath != "-") {
      File.open(InputPath);
      if (!File) {
        std::fprintf(stderr, "error: cannot open %s\n", InputPath.c_str());
        return usage();
      }
      In = &File;
    }
    std::string Line;
    while (std::getline(*In, Line))
      sendOne(Line);
  } else {
    sendOne(RequestLine);
  }

  if (SawTransport)
    return 4;
  // Health probes collapse the taxonomy for load balancers: anything
  // short of a clean "ok" answer is 1, reachable-but-degraded.
  if (WantHealth)
    return SawRefused || SawDegraded ? 1 : 0;
  if (SawRefused)
    return 1;
  if (SawDegraded)
    return 3;
  return 0;
}
