//===- tools/jslice_serve.cpp - Long-running slicing server -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The slicing service front end (DESIGN.md, "Serving slices"): reads
/// JSON-Lines requests from stdin (or --input FILE), answers each with
/// one JSON line on stdout. Requests run concurrently on a worker
/// pool, each under its own resource Budget, through the
/// precision-degradation ladder — the caller always gets a sound slice
/// or a deterministic refusal, never a hang.
///
///   printf '{"id":"r1","program":"read(a);\nwrite(a);\n","line":2,
///            "vars":["a"]}\n' | jslice_serve
///
///   jslice_serve [--input FILE] [--journal FILE] [--quarantine DIR]
///                [--threads N] [--budget-ms N] [--max-steps N]
///                [--poll-stride N] [--scale-percent N] [--backoff-ms N]
///                [--no-degrade]
///
///   --input FILE      read requests from FILE instead of stdin
///   --journal FILE    write-ahead request journal; on startup,
///                     requests a crashed predecessor left in flight
///                     are quarantined and refused on resubmission
///   --quarantine DIR  where poisoned reproducers go (default poisoned)
///   --threads N       worker threads (default: JSLICE_THREADS env var,
///                     else hardware concurrency)
///   --budget-ms N     default per-request deadline (requests override)
///   --max-steps N     default per-request step budget
///   --poll-stride N   guard checkpoints between deadline polls
///                     (default 16 — tighter than the library's 256,
///                     because an overshot deadline stalls a worker)
///   --scale-percent N per-rung ladder budget scale (default 50)
///   --backoff-ms N    sleep before each ladder retry, doubling per
///                     rung, capped at 100ms (default 0)
///   --no-degrade      disable the ladder: serve the requested
///                     algorithm or refuse
///
/// Exit codes: 0 — stream served to EOF; 2 — usage error.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

using namespace jslice;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jslice_serve [--input FILE] [--journal FILE] "
               "[--quarantine DIR]\n"
               "                    [--threads N] [--budget-ms N] "
               "[--max-steps N]\n"
               "                    [--poll-stride N] [--scale-percent N] "
               "[--backoff-ms N]\n"
               "                    [--no-degrade]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  std::string InputPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--input" || Arg == "--journal" || Arg == "--quarantine" ||
        Arg == "--hang-after-begin") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--input")
        InputPath = *Value;
      else if (Arg == "--journal")
        Opts.JournalPath = *Value;
      else if (Arg == "--quarantine")
        Opts.QuarantineDir = *Value;
      else
        Opts.HangAfterBeginId = *Value; // Test hook (see Server.h).
    } else if (Arg == "--threads" || Arg == "--budget-ms" ||
               Arg == "--max-steps" || Arg == "--poll-stride" ||
               Arg == "--scale-percent" || Arg == "--backoff-ms") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--threads")
        Opts.Threads = static_cast<unsigned>(*N);
      else if (Arg == "--budget-ms")
        Opts.DefaultBudget.DeadlineMs = *N;
      else if (Arg == "--max-steps")
        Opts.DefaultBudget.MaxSteps = *N;
      else if (Arg == "--poll-stride")
        Opts.DefaultBudget.PollStride = *N;
      else if (Arg == "--scale-percent")
        Opts.Ladder.ScalePercent = static_cast<unsigned>(*N);
      else
        Opts.Ladder.BackoffMs = static_cast<unsigned>(*N);
    } else if (Arg == "--no-degrade") {
      Opts.Ladder.Degrade = false;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  Server S(Opts, std::cout, std::cerr);
  unsigned Quarantined = S.recover();
  if (Quarantined)
    std::fprintf(stderr,
                 "jslice_serve: recovered journal; %u poisoned request%s "
                 "quarantined under %s\n",
                 Quarantined, Quarantined == 1 ? "" : "s",
                 Opts.QuarantineDir.c_str());

  if (!InputPath.empty()) {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", InputPath.c_str());
      return usage();
    }
    S.serve(In);
  } else {
    S.serve(std::cin);
  }
  return 0;
}
