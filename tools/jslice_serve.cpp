//===- tools/jslice_serve.cpp - Long-running slicing server -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The slicing service front end (DESIGN.md, "Serving slices" and
/// "Supervision & overload"): reads JSON-Lines requests from stdin (or
/// --input FILE), answers each with one JSON line on stdout. Requests
/// run concurrently on a worker pool, each under its own resource
/// Budget, through the precision-degradation ladder — the caller
/// always gets a sound slice or a deterministic refusal, never a hang.
///
///   printf '{"id":"r1","program":"read(a);\nwrite(a);\n","line":2,
///            "vars":["a"]}\n' | jslice_serve
///
///   jslice_serve [--input FILE] [--listen HOST:PORT] [--journal FILE]
///                [--quarantine DIR] [--threads N] [--budget-ms N]
///                [--max-steps N] [--poll-stride N] [--scale-percent N]
///                [--backoff-ms N] [--no-degrade] [--isolate MODE]
///                [--workers N] [--max-queue-depth N]
///                [--queue-deadline-ms N] [--max-rss-mb N]
///                [--journal-rotate-bytes N] [--max-line-bytes N]
///                [--max-conns N] [--idle-timeout-ms N]
///                [--read-deadline-ms N] [--write-buffer-bytes N]
///                [--drain-grace-ms N] [--send-buffer-bytes N]
///                [--shards N] [--journal-sync full|batch|off]
///                [--journal-flush-ms N] [--journal-failure shed|degrade|abort]
///                [--journal-reattach-ms N]
///                [--upgrade on|off] [--wedge-threshold-ms N]
///                [--standby-of HOST:PORT] [--repl-ack async|flush|sync]
///                [--repl-ack-timeout-ms N] [--epoch N]
///
///   --input FILE      read requests from FILE instead of stdin
///   --listen HOST:PORT serve over TCP instead of stdin (see
///                     net/TcpServer.h; port 0 binds an ephemeral port,
///                     reported as "listening on HOST:PORT" on stderr).
///                     Per-connection containment: a misbehaving byte
///                     stream costs exactly its own connection
///   --shards N        TCP: reactor shard threads, each owning its
///                     connections outright (default 0 = one per
///                     hardware thread). SO_REUSEPORT listeners when
///                     the platform has them, else round-robin fd
///                     handoff from shard 0
///   --max-line-bytes N refuse request lines longer than N bytes with a
///                     deterministic shed response, on every transport
///                     (default 4 MiB; 0 = unbounded)
///   --max-conns N     TCP: connection cap; accepts beyond it get a
///                     one-line shed refusal (default 256)
///   --idle-timeout-ms N TCP: close connections idle this long
///                     (default 30000; 0 disables)
///   --read-deadline-ms N TCP: a partial line must complete within N ms
///                     (slowloris defense; default 10000; 0 disables)
///   --write-buffer-bytes N TCP: per-connection bound on unsent
///                     response bytes; a stalled reader past it is
///                     disconnected (default 4 MiB)
///   --drain-grace-ms N TCP: how long a drain waits for in-flight
///                     responses before forcing closes (default 10000)
///   --send-buffer-bytes N TCP: shrink each connection's kernel send
///                     buffer (test/ops knob; default 0 = leave alone)
///   --journal FILE    write-ahead request journal; on startup,
///                     requests a crashed predecessor left in flight
///                     are quarantined and refused on resubmission
///   --journal-sync MODE durability policy for journal appends:
///                     `full` (default) fsyncs every record — a kernel
///                     panic loses nothing; `batch` group-commits on a
///                     bounded flush interval — a panic can lose the
///                     last interval's records (a process crash loses
///                     nothing; records are flushed to the kernel per
///                     append); `off` never fsyncs
///   --journal-flush-ms N  batch-mode group-commit interval
///                     (default 25)
///   --journal-failure MODE what to do when the journal fails
///                     persistently (append still failing after a
///                     reopen-and-retry): `shed` (default) keeps the
///                     process up but refuses new slice requests with a
///                     deterministic "journal-failed" shed — crash
///                     recovery stays trustworthy; `degrade` keeps
///                     serving with the journal marked lost — {"health"}
///                     reports degraded ("journal":"lost") and
///                     jslice_client --health exits 1; `abort` drains
///                     in-flight requests and exits 3. Never serves on
///                     while silently recording nothing
///   --journal-reattach-ms N  under --journal-failure=degrade, probe a
///                     lost journal for recovery every N ms; a healed
///                     disk resumes journaling and {"health"} flips
///                     back to "journal":"ok" (default 500; 0 keeps the
///                     old latch-forever behavior)
///   --standby-of HOST:PORT  boot as a warm standby of the primary at
///                     HOST:PORT: tail its replication stream into the
///                     local --journal (required), refuse slice
///                     requests with a deterministic "standby" shed,
///                     and report replication lag in {"health"}. A
///                     {"promote": true} request (jslice_client
///                     --promote) or the watchdog turns this process
///                     into the primary: the tail stops, the replica
///                     journal is recovered (the dead primary's
///                     in-flight requests are quarantined), and the
///                     epoch is bumped past everything the old primary
///                     ever stamped — the fence that keeps a
///                     resurrected ex-primary from double-serving
///   --repl-ack MODE   how hard a journal append pushes toward the
///                     standby before admitting the request: `async`
///                     (default; background shipper), `flush` (record
///                     handed to the standby's transport buffer
///                     inline), `sync` (wait bounded for the standby's
///                     durable ack — zero acknowledged-but-lost
///                     records on failover)
///   --repl-ack-timeout-ms N  sync-mode ack wait bound (default 2000)
///   --epoch N         initial fencing epoch (test/ops override;
///                     default: primaries resume the on-disk epoch,
///                     standbys wait for promotion)
///   --upgrade on|off  TCP: accept SIGUSR2 / {"upgrade"} requests for a
///                     zero-downtime generation handoff (default on;
///                     implies SO_REUSEPORT listeners where available
///                     so the successor can bind alongside)
///   --wedge-threshold-ms N  TCP: a shard whose reactor loop has not
///                     progressed for N ms is reported wedged in
///                     {"health"} and {"stats"} (default 5000)
///   --quarantine DIR  where poisoned reproducers go (default poisoned)
///   --threads N       worker threads (default: JSLICE_THREADS env var,
///                     else hardware concurrency)
///   --budget-ms N     default per-request deadline (requests override)
///   --max-steps N     default per-request step budget
///   --poll-stride N   guard checkpoints between deadline polls
///                     (default 16 — tighter than the library's 256,
///                     because an overshot deadline stalls a worker)
///   --scale-percent N per-rung ladder budget scale (default 50)
///   --backoff-ms N    sleep before each ladder retry, doubling per
///                     rung, capped at 100ms (default 0)
///   --no-degrade      disable the ladder: serve the requested
///                     algorithm or refuse
///   --isolate MODE    `thread` (default) or `process`: run requests in
///                     forked sandbox workers under a self-healing
///                     supervisor — a crash or hang costs one request
///                     (answered `crashed` + quarantined), never the
///                     server
///   --workers N       sandbox processes in process mode (default:
///                     one per dispatcher thread)
///   --max-queue-depth N   shed (refuse) new requests beyond N in
///                     flight (default 0 = unbounded)
///   --queue-deadline-ms N shed admitted requests still queued after
///                     N ms (default 0 = none)
///   --max-rss-mb N    while process RSS exceeds N MiB, evict cached
///                     analyses first and shed only when the cache is
///                     empty (default 0 = no watermark)
///   --journal-rotate-bytes N  rewrite the journal down to its
///                     unmatched begins past N bytes (default 8 MiB)
///   --cache on|off    content-addressed analysis cache: identical
///                     programs share one parsed+analyzed artifact and
///                     coalesce concurrent builds single-flight
///                     (default on; per-worker in process mode)
///   --cache-entries N cache entry cap (default 64)
///   --cache-bytes N   cache cost-estimate cap in bytes (default 256 MiB)
///   --cache-audit-every N  self-audit: re-analyze ~1 in N cache hits
///                     from source and diff the slices; a mismatch
///                     invalidates the entry and serves the fresh
///                     result (default 0 = off)
///   --cache-audit-seed N   seed for the audit sampler (default 1)
///
/// SIGTERM / SIGINT drain gracefully: the server stops accepting,
/// finishes in-flight requests, writes a clean-shutdown journal
/// record, and exits 0. The signal handler only writes one byte to a
/// self-pipe; the serve loop polls it between lines, so the drain
/// happens on a normal thread, never inside a handler.
///
/// SIGUSR2 (TCP mode, --upgrade on) performs a zero-downtime hot
/// restart (DESIGN.md §16): re-exec this binary as generation G+1 on
/// the same port (SO_REUSEPORT, falling back to passing the listener
/// fd over SCM_RIGHTS), wait for the successor's readiness self-probe,
/// then drain generation G exactly like SIGTERM. If the successor dies
/// or never becomes ready, generation G rolls back and keeps serving.
/// A second SIGUSR2 while a handoff is pending is refused; SIGTERM
/// always wins over an upgrade. The flags --generation, --upgrade-from,
/// --ready-fd, --listener-socket, and --ready-delay-ms are internal
/// plumbing between generations (the last one is a test hook delaying
/// the readiness probe).
///
/// Exit codes: 0 — stream served to EOF or drained on signal;
/// 2 — usage error; 3 — the write-ahead journal failed persistently
/// under --journal-failure=abort (in-flight requests were drained and
/// answered first).
///
//===----------------------------------------------------------------------===//

#include "net/Socket.h"
#include "net/StandbyTail.h"
#include "net/TcpServer.h"
#include "service/Json.h"
#include "service/Server.h"
#include "support/Pipe.h"

#include <memory>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jslice_serve [--input FILE] [--listen HOST:PORT] "
               "[--journal FILE]\n"
               "                    [--quarantine DIR] [--threads N] "
               "[--budget-ms N] [--max-steps N]\n"
               "                    [--poll-stride N] [--scale-percent N] "
               "[--backoff-ms N]\n"
               "                    [--no-degrade] [--isolate thread|process] "
               "[--workers N]\n"
               "                    [--max-queue-depth N] "
               "[--queue-deadline-ms N]\n"
               "                    [--max-rss-mb N] "
               "[--journal-rotate-bytes N]\n"
               "                    [--max-line-bytes N] [--max-conns N] "
               "[--idle-timeout-ms N]\n"
               "                    [--read-deadline-ms N] "
               "[--write-buffer-bytes N]\n"
               "                    [--drain-grace-ms N] "
               "[--send-buffer-bytes N] [--shards N]\n"
               "                    [--cache on|off] [--cache-entries N] "
               "[--cache-bytes N]\n"
               "                    [--cache-audit-every N] "
               "[--cache-audit-seed N]\n"
               "                    [--journal-sync full|batch|off] "
               "[--journal-flush-ms N]\n"
               "                    [--journal-failure shed|degrade|abort] "
               "[--journal-reattach-ms N]\n"
               "                    [--upgrade on|off] "
               "[--wedge-threshold-ms N]\n"
               "                    [--standby-of HOST:PORT] "
               "[--repl-ack async|flush|sync]\n"
               "                    [--repl-ack-timeout-ms N] [--epoch N]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

std::atomic<bool> ShutdownRequested{false};
std::atomic<bool> UpgradeRequested{false};

#ifdef JSLICE_HAVE_POSIX_PROCESS
int SelfPipeWrite = -1;

extern "C" void onShutdownSignal(int) {
  // Async-signal-safe by construction: one flag store, one write.
  ShutdownRequested.store(true, std::memory_order_relaxed);
  if (SelfPipeWrite >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(SelfPipeWrite, &B, 1);
  }
}

extern "C" void onUpgradeSignal(int) {
  // One flag store; the upgrade monitor thread polls it, so nothing
  // else needs to happen in handler context.
  UpgradeRequested.store(true, std::memory_order_relaxed);
}

/// Reads stdin line by line with poll() across both stdin and the
/// self-pipe, feeding each line to the server. Returns when stdin hits
/// EOF or a shutdown signal lands — a signal interrupts even an idle
/// blocking read, which plain std::getline cannot guarantee.
void serveSignalAware(Server &S) {
  Pipe Self;
  if (!Self.make()) {
    S.serve(std::cin); // Degraded: signals still set the flag.
    return;
  }
  SelfPipeWrite = Self.WriteFd;

  struct sigaction SA = {};
  SA.sa_handler = onShutdownSignal; // No SA_RESTART: reads must break.
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  std::string Buf;
  char Chunk[4096];
  bool Eof = false;
  bool Discarding = false; // Swallowing the tail of an oversized line.
  while (!Eof && !ShutdownRequested.load(std::memory_order_relaxed)) {
    int Ready = pollReadable2(0, Self.ReadFd, -1);
    if (Ready < 0)
      break;
    if (Ready & 2) // Self-pipe: a signal landed.
      break;
    if (!(Ready & 1))
      continue;
    int64_t N = readSome(0, Chunk, sizeof(Chunk));
    if (N <= 0)
      Eof = true;
    else
      Buf.append(Chunk, static_cast<size_t>(N));
    size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      if (Discarding)
        Discarding = false; // The newline ends the refused line.
      else
        S.serveLine(Buf.substr(0, Pos));
      Buf.erase(0, Pos + 1);
      if (ShutdownRequested.load(std::memory_order_relaxed))
        break;
    }
    // A line past the cap with no newline in sight: refuse it now and
    // swallow the rest as it streams in, so an adversarial input with
    // no newline cannot grow this buffer without limit.
    if (!Discarding && S.maxLineBytes() && Buf.size() > S.maxLineBytes()) {
      S.refuseOversizedLine();
      Buf.clear();
      Discarding = true;
    }
  }
  if (Eof && !Buf.empty() && !Discarding &&
      !ShutdownRequested.load(std::memory_order_relaxed))
    S.serveLine(Buf); // Final unterminated line.

  SelfPipeWrite = -1;
  Self.close();
}

/// Everything the upgrade monitor needs to spawn, supervise, and (on
/// failure) roll back a successor generation.
struct UpgradeContext {
  Server *Srv = nullptr;
  TcpServer *Transport = nullptr;
  std::string Host;     ///< Listen host, for the successor's --listen.
  uint16_t Port = 0;    ///< The *bound* port (never 0).
  uint64_t Generation = 1;
  /// The successor's argv: this process's argv with the generation
  /// plumbing flags stripped and --listen rewritten to the bound port.
  std::vector<std::string> RespawnArgs;
  uint64_t ReadyTimeoutMs = 10000;
  std::atomic<bool> Stop{false};
  bool HandedOff = false;
};

/// The successor's readiness gate: connect to the shared port and send
/// {"health"} until the answer carries *our* generation id. During the
/// overlap window both generations accept from the same port, so a
/// probe can land on the predecessor — that is a retry, not a failure.
bool selfProbeReady(const std::string &Host, uint16_t Port, uint64_t Gen,
                    const std::atomic<bool> &Abort) {
  for (int Attempt = 0; Attempt != 50; ++Attempt) {
    if (Abort.load(std::memory_order_relaxed))
      return false;
    std::string Err;
    int Fd = connectTcp(Host, Port, /*TimeoutMs=*/250, Err);
    if (Fd >= 0) {
      static const char Probe[] = "{\"health\":true}\n";
      size_t Off = 0;
      bool Sent = true;
      while (Off < sizeof(Probe) - 1) {
        int64_t W = sendSome(Fd, Probe + Off, sizeof(Probe) - 1 - Off);
        if (W <= 0) {
          Sent = false;
          break;
        }
        Off += static_cast<size_t>(W);
      }
      std::string Line;
      if (Sent) {
        char C;
        while (Line.size() < 65536) {
          int64_t R = recvSome(Fd, &C, 1);
          if (R <= 0 || C == '\n')
            break;
          Line.push_back(C);
        }
      }
      ::close(Fd);
      std::optional<JsonValue> V = JsonValue::parse(Line, nullptr);
      const JsonValue *G = V ? V->find("generation") : nullptr;
      if (G && G->isNumber() &&
          static_cast<uint64_t>(G->asInt()) == Gen)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One upgrade attempt: fork/exec the successor, pass it the listener
/// fd over SCM_RIGHTS (used only if its own SO_REUSEPORT bind fails),
/// wait bounded for its readiness byte, then either drain this
/// generation or kill the successor and roll back.
void runUpgrade(UpgradeContext &Ctx) {
  uint64_t NextGen = Ctx.Generation + 1;

  // Pin journal rotation for the whole overlap window: the successor
  // opens the same path, and a compaction rewrite-and-rename under its
  // feet would split the journal across two inodes.
  Ctx.Srv->holdJournalRotation(true);

  int ReadyPipe[2];
  if (::pipe(ReadyPipe) != 0) {
    std::fprintf(stderr, "jslice_serve: upgrade failed: cannot create "
                         "readiness pipe\n");
    Ctx.Srv->holdJournalRotation(false);
    return;
  }
  int SP[2] = {-1, -1};
  bool HavePair = makeSocketPair(SP);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::fprintf(stderr, "jslice_serve: upgrade failed: fork failed\n");
    ::close(ReadyPipe[0]);
    ::close(ReadyPipe[1]);
    if (HavePair) {
      ::close(SP[0]);
      ::close(SP[1]);
    }
    Ctx.Srv->holdJournalRotation(false);
    return;
  }

  if (Pid == 0) {
    // Successor. Neither the ready pipe nor the socketpair carries
    // FD_CLOEXEC, so both survive the exec; everything else (listener
    // fds, journal handle) is close-on-exec and the successor reopens
    // or rebinds its own.
    ::close(ReadyPipe[0]);
    if (HavePair)
      ::close(SP[0]);
    std::vector<std::string> Args = Ctx.RespawnArgs;
    Args.push_back("--generation");
    Args.push_back(std::to_string(NextGen));
    Args.push_back("--upgrade-from");
    Args.push_back(std::to_string(static_cast<long>(::getppid())));
    Args.push_back("--ready-fd");
    Args.push_back(std::to_string(ReadyPipe[1]));
    if (HavePair) {
      Args.push_back("--listener-socket");
      Args.push_back(std::to_string(SP[1]));
    }
    std::vector<char *> Argv;
    Argv.reserve(Args.size() + 1);
    for (std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execvp(Argv[0], Argv.data());
    _exit(127); // Exec failed; the parent sees death-before-ready.
  }

  // Predecessor: ship a copy of the listener right away so it is
  // buffered in the socketpair whether or not the successor needs it.
  ::close(ReadyPipe[1]);
  if (HavePair) {
    ::close(SP[1]);
    int Lfd = Ctx.Transport->shardZeroListenerFd();
    if (Lfd >= 0)
      sendFdOverSocket(SP[0], Lfd);
    ::close(SP[0]);
  }
  std::fprintf(stderr,
               "jslice_serve: spawning generation %llu (pid %ld)\n",
               static_cast<unsigned long long>(NextGen),
               static_cast<long>(Pid));

  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(Ctx.ReadyTimeoutMs);
  bool Ready = false;
  bool Reaped = false;
  while (std::chrono::steady_clock::now() < Deadline) {
    // SIGTERM racing the pending handoff: shutdown wins. Abandon the
    // wait so the rollback below kills the unready successor; this
    // generation's drain proceeds exactly once via the shutdown flag.
    if (ShutdownRequested.load(std::memory_order_relaxed))
      break;
    struct pollfd P;
    P.fd = ReadyPipe[0];
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, 50);
    if (N > 0) {
      char B = 0;
      if (::read(ReadyPipe[0], &B, 1) == 1)
        Ready = true;
      break; // A byte means ready; EOF without one means it died.
    }
    int Status = 0;
    if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
      Reaped = true;
      break;
    }
    // A second SIGUSR2 while this handoff is pending: refuse it
    // deterministically rather than queueing a surprise double
    // upgrade.
    if (UpgradeRequested.exchange(false, std::memory_order_relaxed))
      std::fprintf(stderr,
                   "jslice_serve: upgrade already in progress; refusing\n");
  }
  ::close(ReadyPipe[0]);

  if (Ready) {
    std::fprintf(
        stderr,
        "jslice_serve: generation %llu ready; draining generation %llu\n",
        static_cast<unsigned long long>(NextGen),
        static_cast<unsigned long long>(Ctx.Generation));
    Ctx.HandedOff = true;
    // The rotation hold stays armed: this generation is exiting, and
    // the successor holds its own until completeHandoff().
    Ctx.Transport->requestStop();
    return;
  }

  if (!Reaped) {
    ::kill(Pid, SIGKILL);
    ::waitpid(Pid, nullptr, 0);
  }
  std::fprintf(stderr,
               "jslice_serve: generation %llu failed before readiness; "
               "rolling back to generation %llu\n",
               static_cast<unsigned long long>(NextGen),
               static_cast<unsigned long long>(Ctx.Generation));
  Ctx.Srv->holdJournalRotation(false);
}

/// The upgrade monitor thread: polls the SIGUSR2 flag and runs at most
/// one handoff. SIGTERM always wins — a shutdown in progress refuses
/// upgrades, and after a successful handoff this generation only
/// drains.
void upgradeMonitor(UpgradeContext &Ctx) {
  while (!Ctx.Stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (!UpgradeRequested.exchange(false, std::memory_order_relaxed))
      continue;
    if (ShutdownRequested.load(std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "jslice_serve: upgrade refused: shutdown in progress\n");
      continue;
    }
    if (Ctx.HandedOff) {
      std::fprintf(stderr,
                   "jslice_serve: upgrade already in progress; refusing\n");
      continue;
    }
    runUpgrade(Ctx);
  }
}
#endif

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  TcpServerOptions TcpOpts;
  std::string InputPath;
  std::string ListenSpec;
  std::string StandbySpec; // --standby-of HOST:PORT
  bool UpgradeEnabled = true;   // --upgrade on|off
  long ListenerSocketFd = -1;   // --listener-socket (internal plumbing)
  long ReadyFd = -1;            // --ready-fd (internal plumbing)
  uint64_t ReadyDelayMs = 0;    // --ready-delay-ms (test hook)
  Opts.ShutdownFlag = &ShutdownRequested;
  Opts.AbortFlag = &ShutdownRequested;
  TcpOpts.ShutdownFlag = &ShutdownRequested;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--cache") {
      std::optional<std::string> Value = NextValue();
      if (!Value || (*Value != "on" && *Value != "off")) {
        std::fprintf(stderr, "error: --cache expects 'on' or 'off'\n");
        return usage();
      }
      Opts.Cache.Enabled = *Value == "on";
    } else if (Arg == "--upgrade") {
      std::optional<std::string> Value = NextValue();
      if (!Value || (*Value != "on" && *Value != "off")) {
        std::fprintf(stderr, "error: --upgrade expects 'on' or 'off'\n");
        return usage();
      }
      UpgradeEnabled = *Value == "on";
    } else if (Arg == "--journal-sync") {
      std::optional<std::string> Value = NextValue();
      if (!Value || !parseJournalSyncName(*Value, Opts.JournalSyncPolicy)) {
        std::fprintf(stderr,
                     "error: --journal-sync expects 'full', 'batch', or "
                     "'off'\n");
        return usage();
      }
    } else if (Arg == "--journal-failure") {
      std::optional<std::string> Value = NextValue();
      if (!Value ||
          !parseJournalFailureName(*Value, Opts.JournalFailurePolicy)) {
        std::fprintf(stderr,
                     "error: --journal-failure expects 'shed', 'degrade', "
                     "or 'abort'\n");
        return usage();
      }
    } else if (Arg == "--repl-ack") {
      std::optional<std::string> Value = NextValue();
      if (!Value || !parseReplAckPolicyName(*Value, Opts.ReplAck)) {
        std::fprintf(stderr,
                     "error: --repl-ack expects 'async', 'flush', or "
                     "'sync'\n");
        return usage();
      }
    } else if (Arg == "--standby-of") {
      std::optional<std::string> Value = NextValue();
      std::string Host;
      uint16_t Port = 0;
      if (!Value || !parseHostPort(*Value, Host, Port) || !Port) {
        std::fprintf(stderr,
                     "error: --standby-of expects HOST:PORT (port != 0)\n");
        return usage();
      }
      StandbySpec = *Value;
      Opts.Standby = true;
    } else if (Arg == "--input" || Arg == "--listen" || Arg == "--journal" ||
        Arg == "--quarantine" || Arg == "--hang-after-begin" ||
        Arg == "--isolate") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--input")
        InputPath = *Value;
      else if (Arg == "--listen") {
        ListenSpec = *Value;
        if (!parseHostPort(ListenSpec, TcpOpts.Host, TcpOpts.Port)) {
          std::fprintf(stderr,
                       "error: --listen expects HOST:PORT, got '%s'\n",
                       ListenSpec.c_str());
          return usage();
        }
      } else if (Arg == "--journal")
        Opts.JournalPath = *Value;
      else if (Arg == "--quarantine")
        Opts.QuarantineDir = *Value;
      else if (Arg == "--isolate") {
        if (*Value == "process")
          Opts.IsolateProcess = true;
        else if (*Value == "thread")
          Opts.IsolateProcess = false;
        else {
          std::fprintf(stderr,
                       "error: --isolate expects 'thread' or 'process'\n");
          return usage();
        }
      } else
        Opts.HangAfterBeginId = *Value; // Test hook (see Server.h).
    } else if (Arg == "--threads" || Arg == "--budget-ms" ||
               Arg == "--max-steps" || Arg == "--poll-stride" ||
               Arg == "--scale-percent" || Arg == "--backoff-ms" ||
               Arg == "--workers" || Arg == "--max-queue-depth" ||
               Arg == "--queue-deadline-ms" || Arg == "--max-rss-mb" ||
               Arg == "--journal-rotate-bytes" || Arg == "--max-line-bytes" ||
               Arg == "--max-conns" || Arg == "--idle-timeout-ms" ||
               Arg == "--read-deadline-ms" || Arg == "--write-buffer-bytes" ||
               Arg == "--drain-grace-ms" || Arg == "--send-buffer-bytes" ||
               Arg == "--shards" || Arg == "--journal-flush-ms" ||
               Arg == "--wedge-threshold-ms" || Arg == "--generation" ||
               Arg == "--upgrade-from" || Arg == "--ready-fd" ||
               Arg == "--listener-socket" || Arg == "--ready-delay-ms" ||
               Arg == "--cache-entries" || Arg == "--cache-bytes" ||
               Arg == "--cache-audit-every" || Arg == "--cache-audit-seed" ||
               Arg == "--journal-reattach-ms" || Arg == "--epoch" ||
               Arg == "--repl-ack-timeout-ms") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--threads")
        Opts.Threads = static_cast<unsigned>(*N);
      else if (Arg == "--budget-ms")
        Opts.DefaultBudget.DeadlineMs = *N;
      else if (Arg == "--max-steps")
        Opts.DefaultBudget.MaxSteps = *N;
      else if (Arg == "--poll-stride")
        Opts.DefaultBudget.PollStride = *N;
      else if (Arg == "--scale-percent")
        Opts.Ladder.ScalePercent = static_cast<unsigned>(*N);
      else if (Arg == "--workers")
        Opts.Super.Workers = static_cast<unsigned>(*N);
      else if (Arg == "--max-queue-depth")
        Opts.MaxQueueDepth = *N;
      else if (Arg == "--queue-deadline-ms")
        Opts.QueueDeadlineMs = *N;
      else if (Arg == "--max-rss-mb")
        Opts.MaxRssMb = *N;
      else if (Arg == "--journal-rotate-bytes")
        Opts.JournalRotateBytes = *N;
      else if (Arg == "--max-line-bytes")
        Opts.MaxLineBytes = *N;
      else if (Arg == "--max-conns")
        TcpOpts.MaxConnections = static_cast<unsigned>(*N);
      else if (Arg == "--idle-timeout-ms")
        TcpOpts.IdleTimeoutMs = *N;
      else if (Arg == "--read-deadline-ms")
        TcpOpts.ReadDeadlineMs = *N;
      else if (Arg == "--write-buffer-bytes")
        TcpOpts.MaxWriteBufferBytes = *N;
      else if (Arg == "--drain-grace-ms")
        TcpOpts.DrainGraceMs = *N;
      else if (Arg == "--send-buffer-bytes")
        TcpOpts.SendBufferBytes = static_cast<int>(*N);
      else if (Arg == "--shards")
        TcpOpts.Shards = static_cast<unsigned>(*N);
      else if (Arg == "--journal-flush-ms")
        Opts.JournalFlushIntervalMs = *N;
      else if (Arg == "--wedge-threshold-ms")
        TcpOpts.WedgeThresholdMs = *N;
      else if (Arg == "--generation")
        Opts.Generation = *N;
      else if (Arg == "--upgrade-from")
        Opts.PredecessorPid = static_cast<long>(*N);
      else if (Arg == "--ready-fd")
        ReadyFd = static_cast<long>(*N);
      else if (Arg == "--listener-socket")
        ListenerSocketFd = static_cast<long>(*N);
      else if (Arg == "--ready-delay-ms")
        ReadyDelayMs = *N;
      else if (Arg == "--cache-entries")
        Opts.Cache.MaxEntries = static_cast<unsigned>(*N);
      else if (Arg == "--cache-bytes")
        Opts.Cache.MaxBytes = *N;
      else if (Arg == "--cache-audit-every")
        Opts.Cache.AuditEvery = static_cast<unsigned>(*N);
      else if (Arg == "--cache-audit-seed")
        Opts.Cache.AuditSeed = *N;
      else if (Arg == "--journal-reattach-ms")
        Opts.JournalReattachIntervalMs = *N;
      else if (Arg == "--epoch")
        Opts.Epoch = *N;
      else if (Arg == "--repl-ack-timeout-ms")
        Opts.ReplAckTimeoutMs = *N;
      else
        Opts.Ladder.BackoffMs = static_cast<unsigned>(*N);
    } else if (Arg == "--no-degrade") {
      Opts.Ladder.Degrade = false;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  // Zero-downtime restarts are a TCP-transport feature; stdin servers
  // have no port to hand off.
  bool Upgradable = UpgradeEnabled && !ListenSpec.empty();
#ifndef JSLICE_HAVE_POSIX_PROCESS
  Upgradable = false;
#endif
  if (Upgradable) {
    if (!Opts.Generation)
      Opts.Generation = 1;
    Opts.UpgradeFlag = &UpgradeRequested;
    // The kernel admits a second binder on the port only when *every*
    // socket on it carries SO_REUSEPORT — so an upgradable server must
    // opt in from generation 1, even single-sharded.
    TcpOpts.ReusePortAlways = true;
  }
#ifdef JSLICE_HAVE_POSIX_PROCESS
  // The successor's argv: ours minus the per-spawn generation plumbing
  // (fresh values are appended at fork time), with the --listen value
  // rewritten to the actual bound port once known — the original may
  // have asked for port 0.
  std::vector<std::string> RespawnArgs;
  size_t ListenValueIdx = SIZE_MAX;
  for (int I = 0; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--generation" || A == "--upgrade-from" || A == "--ready-fd" ||
        A == "--listener-socket") {
      ++I;
      continue;
    }
    RespawnArgs.push_back(A);
    if (A == "--listen" && I + 1 < argc) {
      RespawnArgs.push_back(argv[++I]);
      ListenValueIdx = RespawnArgs.size() - 1;
    }
  }
#endif

  if (Opts.Standby && Opts.JournalPath.empty()) {
    std::fprintf(stderr,
                 "error: --standby-of requires --journal (the replica "
                 "journal is the warm state)\n");
    return usage();
  }

  Server S(Opts, std::cout, std::cerr);
  if (!Opts.Standby) {
    unsigned Quarantined = S.recover();
    if (Quarantined)
      std::fprintf(stderr,
                   "jslice_serve: recovered journal; %u poisoned request%s "
                   "quarantined under %s\n",
                   Quarantined, Quarantined == 1 ? "" : "s",
                   Opts.QuarantineDir.c_str());
  }

  // Warm standby: tail the primary's replication stream into our
  // journal. The replica starts empty — the subscribe from seq 0 makes
  // the primary send its full backlog (or a snapshot), so a standby
  // restarted mid-life just re-seeds. Recovery happens at promotion,
  // never at standby boot: the replicated unmatched begins are the
  // *primary's* live requests, not casualties.
  std::unique_ptr<StandbyTail> Tail;
  if (Opts.Standby) {
    StandbyTailOptions TailOpts;
    if (!parseHostPort(StandbySpec, TailOpts.Host, TailOpts.Port)) {
      std::fprintf(stderr, "error: bad --standby-of '%s'\n",
                   StandbySpec.c_str());
      return usage();
    }
    if (!S.journal().resetForSnapshot()) {
      std::fprintf(stderr,
                   "error: cannot initialize replica journal %s\n",
                   Opts.JournalPath.c_str());
      return 2;
    }
    Tail = std::make_unique<StandbyTail>(TailOpts, S.journal());
    StandbyTail *TP = Tail.get();
    S.setPromoteHook([TP] { TP->stop(); });
    S.setReplProbe([TP] {
      StandbyTailStats St = TP->stats();
      JsonValue R = JsonValue::object();
      R.set("connected", St.Connected);
      R.set("lag_records", St.PrimarySeq > St.AppliedSeq
                               ? St.PrimarySeq - St.AppliedSeq
                               : 0);
      R.set("applied_seq", St.AppliedSeq);
      R.set("primary_seq", St.PrimarySeq);
      R.set("primary_epoch", St.PrimaryEpoch);
      R.set("connects", St.Connects);
      R.set("snapshots", St.Snapshots);
      R.set("duplicates", St.Duplicates);
      R.set("corrupt_frames", St.CorruptFrames);
      return R;
    });
    std::string TailErr;
    if (!Tail->start(TailErr)) {
      std::fprintf(stderr, "error: standby tail: %s\n", TailErr.c_str());
      return 2;
    }
    std::fprintf(stderr, "jslice_serve: standby of %s\n",
                 StandbySpec.c_str());
  }

  if (!ListenSpec.empty()) {
    if (!InputPath.empty()) {
      std::fprintf(stderr, "error: --listen and --input are exclusive\n");
      return usage();
    }
    std::optional<TcpServer> TOpt;
    TOpt.emplace(S, TcpOpts, std::cerr);
    std::string Err;
    bool Started = TOpt->start(Err);
#ifdef JSLICE_HAVE_POSIX_PROCESS
    if (!Started && ListenerSocketFd >= 0) {
      // Successor fallback: the predecessor shipped its listener over
      // SCM_RIGHTS for exactly this case (no SO_REUSEPORT, or the bind
      // raced a port reuse). Adopt the inherited fd and retry.
      int Lfd = recvFdOverSocket(static_cast<int>(ListenerSocketFd), 5000);
      if (Lfd >= 0) {
        TcpOpts.InheritedListenerFd = Lfd;
        TOpt.emplace(S, TcpOpts, std::cerr);
        std::string InheritErr;
        Started = TOpt->start(InheritErr);
        if (Started)
          std::fprintf(stderr,
                       "jslice_serve: adopted predecessor's listener fd\n");
        else
          Err += "; inherited listener: " + InheritErr;
      } else {
        Err += "; no listener fd received from predecessor";
      }
    }
    if (ListenerSocketFd >= 0)
      ::close(static_cast<int>(ListenerSocketFd));
#endif
    if (!Started) {
      std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                   ListenSpec.c_str(), Err.c_str());
      return usage();
    }
    TcpServer &T = *TOpt;
#ifdef JSLICE_HAVE_POSIX_PROCESS
    struct sigaction SA = {};
    SA.sa_handler = onShutdownSignal; // No SA_RESTART: poll must break.
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGTERM, &SA, nullptr);
    ::sigaction(SIGINT, &SA, nullptr);
    if (Upgradable) {
      struct sigaction UA = {};
      UA.sa_handler = onUpgradeSignal;
      sigemptyset(&UA.sa_mask);
      ::sigaction(SIGUSR2, &UA, nullptr);
    }
#endif
    // Parsable by wrappers (the port matters with --listen HOST:0);
    // keep the port at end of line, scripts anchor on it.
    std::fprintf(stderr, "jslice_serve: listening on %s:%u\n",
                 TcpOpts.Host.c_str(), T.port());
    std::fprintf(stderr, "jslice_serve: transport shards: %u (%s)\n",
                 T.shardCount(),
                 T.usesReusePort() ? "reuseport" : "fd handoff");
#ifdef JSLICE_HAVE_POSIX_PROCESS
    if (Upgradable)
      std::fprintf(stderr, "jslice_serve: generation %llu pid %ld\n",
                   static_cast<unsigned long long>(Opts.Generation),
                   static_cast<long>(::getpid()));

    std::atomic<bool> ThreadsStop{false};

    // Successor readiness gate: probe our own port until the health
    // answer carries our generation, then release the predecessor
    // through the ready pipe. Only then does the old generation drain.
    std::thread ReadyThread;
    if (ReadyFd >= 0) {
      uint64_t Gen = Opts.Generation;
      std::string Host = TcpOpts.Host;
      uint16_t Port = T.port();
      int Fd = static_cast<int>(ReadyFd);
      uint64_t Delay = ReadyDelayMs;
      ReadyThread = std::thread([&ThreadsStop, Gen, Host, Port, Fd, Delay] {
        for (uint64_t Slept = 0;
             Slept < Delay && !ThreadsStop.load(std::memory_order_relaxed);
             Slept += 20)
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (selfProbeReady(Host, Port, Gen, ThreadsStop)) {
          char B = 'R';
          [[maybe_unused]] ssize_t N = ::write(Fd, &B, 1);
          std::fprintf(stderr,
                       "jslice_serve: generation %llu (pid %ld) ready\n",
                       static_cast<unsigned long long>(Gen),
                       static_cast<long>(::getpid()));
        } else {
          std::fprintf(stderr,
                       "jslice_serve: generation %llu readiness "
                       "self-probe failed\n",
                       static_cast<unsigned long long>(Gen));
        }
        ::close(Fd);
      });
    }

    // Successor handoff: once the predecessor is gone, quarantine
    // exactly the in-flight requests it left behind (earlier-generation
    // stamps only — our own begins are not casualties).
    std::thread HandoffThread;
    if (Opts.PredecessorPid > 0) {
      long Pred = Opts.PredecessorPid;
      HandoffThread = std::thread([&S, &ThreadsStop, Pred] {
        while (!ThreadsStop.load(std::memory_order_relaxed)) {
          if (::kill(static_cast<pid_t>(Pred), 0) != 0 && errno == ESRCH) {
            unsigned N = S.completeHandoff();
            std::fprintf(stderr,
                         "jslice_serve: generation predecessor (pid %ld) "
                         "exited; handoff recovery quarantined %u "
                         "request%s\n",
                         Pred, N, N == 1 ? "" : "s");
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
    }

    UpgradeContext Ctx;
    std::thread UpgradeThread;
    if (Upgradable) {
      Ctx.Srv = &S;
      Ctx.Transport = &T;
      Ctx.Host = TcpOpts.Host;
      Ctx.Port = T.port();
      Ctx.Generation = Opts.Generation;
      if (ListenValueIdx != SIZE_MAX)
        RespawnArgs[ListenValueIdx] =
            TcpOpts.Host + ":" + std::to_string(T.port());
      Ctx.RespawnArgs = RespawnArgs;
      UpgradeThread = std::thread([&Ctx] { upgradeMonitor(Ctx); });
    }

    T.run();

    ThreadsStop.store(true, std::memory_order_relaxed);
    Ctx.Stop.store(true, std::memory_order_relaxed);
    if (UpgradeThread.joinable())
      UpgradeThread.join();
    if (HandoffThread.joinable())
      HandoffThread.join();
    if (ReadyThread.joinable())
      ReadyThread.join();
#else
    T.run();
#endif
    S.finish();
    if (S.journalAborted()) {
      std::fprintf(stderr, "jslice_serve: journal failed; drained and "
                           "exiting (--journal-failure=abort)\n");
      return 3;
    }
    if (ShutdownRequested.load(std::memory_order_relaxed))
      std::fprintf(stderr, "jslice_serve: drained and shut down cleanly\n");
    return 0;
  }

  if (!InputPath.empty()) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
    std::signal(SIGTERM, [](int) {
      ShutdownRequested.store(true, std::memory_order_relaxed);
    });
    std::signal(SIGINT, [](int) {
      ShutdownRequested.store(true, std::memory_order_relaxed);
    });
#endif
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", InputPath.c_str());
      return usage();
    }
    S.serve(In);
  } else {
#ifdef JSLICE_HAVE_POSIX_PROCESS
    serveSignalAware(S);
#else
    S.serve(std::cin);
#endif
  }

  S.finish();
  if (S.journalAborted()) {
    std::fprintf(stderr, "jslice_serve: journal failed; drained and "
                         "exiting (--journal-failure=abort)\n");
    return 3;
  }
  if (ShutdownRequested.load(std::memory_order_relaxed))
    std::fprintf(stderr, "jslice_serve: drained and shut down cleanly\n");
  return 0;
}
