//===- tools/jslice_serve.cpp - Long-running slicing server -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The slicing service front end (DESIGN.md, "Serving slices" and
/// "Supervision & overload"): reads JSON-Lines requests from stdin (or
/// --input FILE), answers each with one JSON line on stdout. Requests
/// run concurrently on a worker pool, each under its own resource
/// Budget, through the precision-degradation ladder — the caller
/// always gets a sound slice or a deterministic refusal, never a hang.
///
///   printf '{"id":"r1","program":"read(a);\nwrite(a);\n","line":2,
///            "vars":["a"]}\n' | jslice_serve
///
///   jslice_serve [--input FILE] [--listen HOST:PORT] [--journal FILE]
///                [--quarantine DIR] [--threads N] [--budget-ms N]
///                [--max-steps N] [--poll-stride N] [--scale-percent N]
///                [--backoff-ms N] [--no-degrade] [--isolate MODE]
///                [--workers N] [--max-queue-depth N]
///                [--queue-deadline-ms N] [--max-rss-mb N]
///                [--journal-rotate-bytes N] [--max-line-bytes N]
///                [--max-conns N] [--idle-timeout-ms N]
///                [--read-deadline-ms N] [--write-buffer-bytes N]
///                [--drain-grace-ms N] [--send-buffer-bytes N]
///                [--shards N]
///
///   --input FILE      read requests from FILE instead of stdin
///   --listen HOST:PORT serve over TCP instead of stdin (see
///                     net/TcpServer.h; port 0 binds an ephemeral port,
///                     reported as "listening on HOST:PORT" on stderr).
///                     Per-connection containment: a misbehaving byte
///                     stream costs exactly its own connection
///   --shards N        TCP: reactor shard threads, each owning its
///                     connections outright (default 0 = one per
///                     hardware thread). SO_REUSEPORT listeners when
///                     the platform has them, else round-robin fd
///                     handoff from shard 0
///   --max-line-bytes N refuse request lines longer than N bytes with a
///                     deterministic shed response, on every transport
///                     (default 4 MiB; 0 = unbounded)
///   --max-conns N     TCP: connection cap; accepts beyond it get a
///                     one-line shed refusal (default 256)
///   --idle-timeout-ms N TCP: close connections idle this long
///                     (default 30000; 0 disables)
///   --read-deadline-ms N TCP: a partial line must complete within N ms
///                     (slowloris defense; default 10000; 0 disables)
///   --write-buffer-bytes N TCP: per-connection bound on unsent
///                     response bytes; a stalled reader past it is
///                     disconnected (default 4 MiB)
///   --drain-grace-ms N TCP: how long a drain waits for in-flight
///                     responses before forcing closes (default 10000)
///   --send-buffer-bytes N TCP: shrink each connection's kernel send
///                     buffer (test/ops knob; default 0 = leave alone)
///   --journal FILE    write-ahead request journal; on startup,
///                     requests a crashed predecessor left in flight
///                     are quarantined and refused on resubmission
///   --quarantine DIR  where poisoned reproducers go (default poisoned)
///   --threads N       worker threads (default: JSLICE_THREADS env var,
///                     else hardware concurrency)
///   --budget-ms N     default per-request deadline (requests override)
///   --max-steps N     default per-request step budget
///   --poll-stride N   guard checkpoints between deadline polls
///                     (default 16 — tighter than the library's 256,
///                     because an overshot deadline stalls a worker)
///   --scale-percent N per-rung ladder budget scale (default 50)
///   --backoff-ms N    sleep before each ladder retry, doubling per
///                     rung, capped at 100ms (default 0)
///   --no-degrade      disable the ladder: serve the requested
///                     algorithm or refuse
///   --isolate MODE    `thread` (default) or `process`: run requests in
///                     forked sandbox workers under a self-healing
///                     supervisor — a crash or hang costs one request
///                     (answered `crashed` + quarantined), never the
///                     server
///   --workers N       sandbox processes in process mode (default:
///                     one per dispatcher thread)
///   --max-queue-depth N   shed (refuse) new requests beyond N in
///                     flight (default 0 = unbounded)
///   --queue-deadline-ms N shed admitted requests still queued after
///                     N ms (default 0 = none)
///   --max-rss-mb N    while process RSS exceeds N MiB, evict cached
///                     analyses first and shed only when the cache is
///                     empty (default 0 = no watermark)
///   --journal-rotate-bytes N  rewrite the journal down to its
///                     unmatched begins past N bytes (default 8 MiB)
///   --cache on|off    content-addressed analysis cache: identical
///                     programs share one parsed+analyzed artifact and
///                     coalesce concurrent builds single-flight
///                     (default on; per-worker in process mode)
///   --cache-entries N cache entry cap (default 64)
///   --cache-bytes N   cache cost-estimate cap in bytes (default 256 MiB)
///   --cache-audit-every N  self-audit: re-analyze ~1 in N cache hits
///                     from source and diff the slices; a mismatch
///                     invalidates the entry and serves the fresh
///                     result (default 0 = off)
///   --cache-audit-seed N   seed for the audit sampler (default 1)
///
/// SIGTERM / SIGINT drain gracefully: the server stops accepting,
/// finishes in-flight requests, writes a clean-shutdown journal
/// record, and exits 0. The signal handler only writes one byte to a
/// self-pipe; the serve loop polls it between lines, so the drain
/// happens on a normal thread, never inside a handler.
///
/// Exit codes: 0 — stream served to EOF or drained on signal;
/// 2 — usage error.
///
//===----------------------------------------------------------------------===//

#include "net/Socket.h"
#include "net/TcpServer.h"
#include "service/Server.h"
#include "support/Pipe.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

using namespace jslice;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: jslice_serve [--input FILE] [--listen HOST:PORT] "
               "[--journal FILE]\n"
               "                    [--quarantine DIR] [--threads N] "
               "[--budget-ms N] [--max-steps N]\n"
               "                    [--poll-stride N] [--scale-percent N] "
               "[--backoff-ms N]\n"
               "                    [--no-degrade] [--isolate thread|process] "
               "[--workers N]\n"
               "                    [--max-queue-depth N] "
               "[--queue-deadline-ms N]\n"
               "                    [--max-rss-mb N] "
               "[--journal-rotate-bytes N]\n"
               "                    [--max-line-bytes N] [--max-conns N] "
               "[--idle-timeout-ms N]\n"
               "                    [--read-deadline-ms N] "
               "[--write-buffer-bytes N]\n"
               "                    [--drain-grace-ms N] "
               "[--send-buffer-bytes N] [--shards N]\n"
               "                    [--cache on|off] [--cache-entries N] "
               "[--cache-bytes N]\n"
               "                    [--cache-audit-every N] "
               "[--cache-audit-seed N]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

std::atomic<bool> ShutdownRequested{false};

#ifdef JSLICE_HAVE_POSIX_PROCESS
int SelfPipeWrite = -1;

extern "C" void onShutdownSignal(int) {
  // Async-signal-safe by construction: one flag store, one write.
  ShutdownRequested.store(true, std::memory_order_relaxed);
  if (SelfPipeWrite >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(SelfPipeWrite, &B, 1);
  }
}

/// Reads stdin line by line with poll() across both stdin and the
/// self-pipe, feeding each line to the server. Returns when stdin hits
/// EOF or a shutdown signal lands — a signal interrupts even an idle
/// blocking read, which plain std::getline cannot guarantee.
void serveSignalAware(Server &S) {
  Pipe Self;
  if (!Self.make()) {
    S.serve(std::cin); // Degraded: signals still set the flag.
    return;
  }
  SelfPipeWrite = Self.WriteFd;

  struct sigaction SA = {};
  SA.sa_handler = onShutdownSignal; // No SA_RESTART: reads must break.
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  std::string Buf;
  char Chunk[4096];
  bool Eof = false;
  bool Discarding = false; // Swallowing the tail of an oversized line.
  while (!Eof && !ShutdownRequested.load(std::memory_order_relaxed)) {
    int Ready = pollReadable2(0, Self.ReadFd, -1);
    if (Ready < 0)
      break;
    if (Ready & 2) // Self-pipe: a signal landed.
      break;
    if (!(Ready & 1))
      continue;
    int64_t N = readSome(0, Chunk, sizeof(Chunk));
    if (N <= 0)
      Eof = true;
    else
      Buf.append(Chunk, static_cast<size_t>(N));
    size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      if (Discarding)
        Discarding = false; // The newline ends the refused line.
      else
        S.serveLine(Buf.substr(0, Pos));
      Buf.erase(0, Pos + 1);
      if (ShutdownRequested.load(std::memory_order_relaxed))
        break;
    }
    // A line past the cap with no newline in sight: refuse it now and
    // swallow the rest as it streams in, so an adversarial input with
    // no newline cannot grow this buffer without limit.
    if (!Discarding && S.maxLineBytes() && Buf.size() > S.maxLineBytes()) {
      S.refuseOversizedLine();
      Buf.clear();
      Discarding = true;
    }
  }
  if (Eof && !Buf.empty() && !Discarding &&
      !ShutdownRequested.load(std::memory_order_relaxed))
    S.serveLine(Buf); // Final unterminated line.

  SelfPipeWrite = -1;
  Self.close();
}
#endif

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  TcpServerOptions TcpOpts;
  std::string InputPath;
  std::string ListenSpec;
  Opts.ShutdownFlag = &ShutdownRequested;
  TcpOpts.ShutdownFlag = &ShutdownRequested;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--cache") {
      std::optional<std::string> Value = NextValue();
      if (!Value || (*Value != "on" && *Value != "off")) {
        std::fprintf(stderr, "error: --cache expects 'on' or 'off'\n");
        return usage();
      }
      Opts.Cache.Enabled = *Value == "on";
    } else if (Arg == "--input" || Arg == "--listen" || Arg == "--journal" ||
        Arg == "--quarantine" || Arg == "--hang-after-begin" ||
        Arg == "--isolate") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--input")
        InputPath = *Value;
      else if (Arg == "--listen") {
        ListenSpec = *Value;
        if (!parseHostPort(ListenSpec, TcpOpts.Host, TcpOpts.Port)) {
          std::fprintf(stderr,
                       "error: --listen expects HOST:PORT, got '%s'\n",
                       ListenSpec.c_str());
          return usage();
        }
      } else if (Arg == "--journal")
        Opts.JournalPath = *Value;
      else if (Arg == "--quarantine")
        Opts.QuarantineDir = *Value;
      else if (Arg == "--isolate") {
        if (*Value == "process")
          Opts.IsolateProcess = true;
        else if (*Value == "thread")
          Opts.IsolateProcess = false;
        else {
          std::fprintf(stderr,
                       "error: --isolate expects 'thread' or 'process'\n");
          return usage();
        }
      } else
        Opts.HangAfterBeginId = *Value; // Test hook (see Server.h).
    } else if (Arg == "--threads" || Arg == "--budget-ms" ||
               Arg == "--max-steps" || Arg == "--poll-stride" ||
               Arg == "--scale-percent" || Arg == "--backoff-ms" ||
               Arg == "--workers" || Arg == "--max-queue-depth" ||
               Arg == "--queue-deadline-ms" || Arg == "--max-rss-mb" ||
               Arg == "--journal-rotate-bytes" || Arg == "--max-line-bytes" ||
               Arg == "--max-conns" || Arg == "--idle-timeout-ms" ||
               Arg == "--read-deadline-ms" || Arg == "--write-buffer-bytes" ||
               Arg == "--drain-grace-ms" || Arg == "--send-buffer-bytes" ||
               Arg == "--shards" ||
               Arg == "--cache-entries" || Arg == "--cache-bytes" ||
               Arg == "--cache-audit-every" || Arg == "--cache-audit-seed") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--threads")
        Opts.Threads = static_cast<unsigned>(*N);
      else if (Arg == "--budget-ms")
        Opts.DefaultBudget.DeadlineMs = *N;
      else if (Arg == "--max-steps")
        Opts.DefaultBudget.MaxSteps = *N;
      else if (Arg == "--poll-stride")
        Opts.DefaultBudget.PollStride = *N;
      else if (Arg == "--scale-percent")
        Opts.Ladder.ScalePercent = static_cast<unsigned>(*N);
      else if (Arg == "--workers")
        Opts.Super.Workers = static_cast<unsigned>(*N);
      else if (Arg == "--max-queue-depth")
        Opts.MaxQueueDepth = *N;
      else if (Arg == "--queue-deadline-ms")
        Opts.QueueDeadlineMs = *N;
      else if (Arg == "--max-rss-mb")
        Opts.MaxRssMb = *N;
      else if (Arg == "--journal-rotate-bytes")
        Opts.JournalRotateBytes = *N;
      else if (Arg == "--max-line-bytes")
        Opts.MaxLineBytes = *N;
      else if (Arg == "--max-conns")
        TcpOpts.MaxConnections = static_cast<unsigned>(*N);
      else if (Arg == "--idle-timeout-ms")
        TcpOpts.IdleTimeoutMs = *N;
      else if (Arg == "--read-deadline-ms")
        TcpOpts.ReadDeadlineMs = *N;
      else if (Arg == "--write-buffer-bytes")
        TcpOpts.MaxWriteBufferBytes = *N;
      else if (Arg == "--drain-grace-ms")
        TcpOpts.DrainGraceMs = *N;
      else if (Arg == "--send-buffer-bytes")
        TcpOpts.SendBufferBytes = static_cast<int>(*N);
      else if (Arg == "--shards")
        TcpOpts.Shards = static_cast<unsigned>(*N);
      else if (Arg == "--cache-entries")
        Opts.Cache.MaxEntries = static_cast<unsigned>(*N);
      else if (Arg == "--cache-bytes")
        Opts.Cache.MaxBytes = *N;
      else if (Arg == "--cache-audit-every")
        Opts.Cache.AuditEvery = static_cast<unsigned>(*N);
      else if (Arg == "--cache-audit-seed")
        Opts.Cache.AuditSeed = *N;
      else
        Opts.Ladder.BackoffMs = static_cast<unsigned>(*N);
    } else if (Arg == "--no-degrade") {
      Opts.Ladder.Degrade = false;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  Server S(Opts, std::cout, std::cerr);
  unsigned Quarantined = S.recover();
  if (Quarantined)
    std::fprintf(stderr,
                 "jslice_serve: recovered journal; %u poisoned request%s "
                 "quarantined under %s\n",
                 Quarantined, Quarantined == 1 ? "" : "s",
                 Opts.QuarantineDir.c_str());

  if (!ListenSpec.empty()) {
    if (!InputPath.empty()) {
      std::fprintf(stderr, "error: --listen and --input are exclusive\n");
      return usage();
    }
    TcpServer T(S, TcpOpts, std::cerr);
    std::string Err;
    if (!T.start(Err)) {
      std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                   ListenSpec.c_str(), Err.c_str());
      return usage();
    }
#ifdef JSLICE_HAVE_POSIX_PROCESS
    struct sigaction SA = {};
    SA.sa_handler = onShutdownSignal; // No SA_RESTART: poll must break.
    sigemptyset(&SA.sa_mask);
    ::sigaction(SIGTERM, &SA, nullptr);
    ::sigaction(SIGINT, &SA, nullptr);
#endif
    // Parsable by wrappers (the port matters with --listen HOST:0);
    // keep the port at end of line, scripts anchor on it.
    std::fprintf(stderr, "jslice_serve: listening on %s:%u\n",
                 TcpOpts.Host.c_str(), T.port());
    std::fprintf(stderr, "jslice_serve: transport shards: %u (%s)\n",
                 T.shardCount(),
                 T.usesReusePort() ? "reuseport" : "fd handoff");
    T.run();
    S.finish();
    if (ShutdownRequested.load(std::memory_order_relaxed))
      std::fprintf(stderr, "jslice_serve: drained and shut down cleanly\n");
    return 0;
  }

  if (!InputPath.empty()) {
#ifdef JSLICE_HAVE_POSIX_PROCESS
    std::signal(SIGTERM, [](int) {
      ShutdownRequested.store(true, std::memory_order_relaxed);
    });
    std::signal(SIGINT, [](int) {
      ShutdownRequested.store(true, std::memory_order_relaxed);
    });
#endif
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", InputPath.c_str());
      return usage();
    }
    S.serve(In);
  } else {
#ifdef JSLICE_HAVE_POSIX_PROCESS
    serveSignalAware(S);
#else
    S.serve(std::cin);
#endif
  }

  S.finish();
  if (ShutdownRequested.load(std::memory_order_relaxed))
    std::fprintf(stderr, "jslice_serve: drained and shut down cleanly\n");
  return 0;
}
