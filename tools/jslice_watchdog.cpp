//===- tools/jslice_watchdog.cpp - Process-level liveness supervisor ------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outermost supervision ring (DESIGN.md §16): keeps one
/// `jslice_serve --listen` leader alive across crashes, wedges, and
/// zero-downtime upgrades. Where the in-process Supervisor restarts
/// sandbox *workers* and the transport contains *connections*, the
/// watchdog restarts the server *process* — the one failure domain
/// nothing inside the process can heal.
///
///   jslice_watchdog [options] -- jslice_serve --listen HOST:PORT ...
///
///   --health-interval-ms N   probe cadence (default 1000)
///   --health-failures K      consecutive probe failures before a
///                            managed restart (default 3)
///   --grace-ms N             SIGTERM-to-SIGKILL drain grace on a
///                            managed restart (default 10000)
///   --restart-threshold N    restarts within the window that trip the
///                            storm breaker (default 5)
///   --restart-window-ms N    breaker window (default 30000)
///   --restart-cooldown-ms N  pause before respawning once the breaker
///                            trips (default 5000)
///   --standby HOST:PORT      failover mode: when the leader dies or
///                            fails K consecutive probes, do NOT
///                            restart it — kill whatever is left of
///                            it, send {"promote": true} to the warm
///                            standby at HOST:PORT, and exit 0 once
///                            the promotion is acknowledged. The
///                            kill-before-promote order matters: the
///                            old primary must be dead (or fenced by
///                            the promotion epoch) before the standby
///                            starts serving, so there is no window
///                            where both serve. Exit 1 if the standby
///                            cannot be promoted — the operator's cue
///                            that the service is down for real
///
/// The leader's stderr flows through the watchdog (teed to its own
/// stderr), which scrapes three things from it: the bound port
/// ("listening on HOST:PORT" — the respawn command pins it so a
/// crash-restart keeps the address even when the original asked for
/// port 0), the current leader ("generation G pid P" — a successor
/// generation inherits the same stderr pipe, so an upgrade hands the
/// watchdog the new pid automatically), and handoff progress. When the
/// direct child exits after a handoff, the watchdog keeps watching the
/// successor by pid instead of declaring a death.
///
/// A health probe fails on transport errors or a "wedged":true
/// transport (a reactor shard that stopped making progress); K
/// consecutive failures trigger a managed restart: SIGTERM, bounded
/// drain, SIGKILL if the drain stalls, respawn. Respawns run through a
/// restart-storm circuit breaker (the Supervisor's crash-loop policy
/// at process granularity): more than N restarts inside the window and
/// the watchdog cools down before trying again, so a persistent
/// boot-crash cannot hot-loop.
///
/// SIGTERM / SIGINT shut the tree down: forward SIGTERM to the leader,
/// wait for the drain, exit 0. SIGUSR2 forwards to the leader to
/// trigger an upgrade.
///
/// Exit codes: 0 — shut down on signal, or (--standby) failover
/// complete; 1 — (--standby) the standby could not be promoted;
/// 2 — usage error.
///
//===----------------------------------------------------------------------===//

#include "net/Socket.h"
#include "service/Json.h"
#include "support/Pipe.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: jslice_watchdog [--health-interval-ms N] "
      "[--health-failures K]\n"
      "                       [--grace-ms N] [--restart-threshold N]\n"
      "                       [--restart-window-ms N] "
      "[--restart-cooldown-ms N]\n"
      "                       [--standby HOST:PORT]\n"
      "                       -- jslice_serve --listen HOST:PORT ...\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

std::atomic<bool> ShutdownRequested{false};
std::atomic<bool> UpgradeRequested{false};

#ifdef JSLICE_HAVE_POSIX_PROCESS

extern "C" void onWatchdogShutdown(int) {
  ShutdownRequested.store(true, std::memory_order_relaxed);
}
extern "C" void onWatchdogUpgrade(int) {
  UpgradeRequested.store(true, std::memory_order_relaxed);
}

uint64_t steadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What the stderr-scraper thread learns from the leader's log lines.
/// The scraper owns writes; the main loop reads under the mutex.
struct ScrapedState {
  std::mutex M;
  uint16_t Port = 0;       ///< From "listening on HOST:PORT".
  long LeaderPid = -1;     ///< From "generation G pid P" (latest wins).
  uint64_t LeaderGen = 0;
};

/// Parses one leader stderr line into \p State. The two anchors here
/// are load-bearing across the tool suite — jslice_soak parses the
/// same lines — so neither format may change.
void scrapeLine(ScrapedState &State, const std::string &Line) {
  size_t At = Line.find("listening on ");
  if (At != std::string::npos) {
    size_t Colon = Line.rfind(':');
    if (Colon != std::string::npos) {
      std::optional<uint64_t> P = parseCount(Line.substr(Colon + 1));
      if (P && *P > 0 && *P <= 65535) {
        std::lock_guard<std::mutex> L(State.M);
        State.Port = static_cast<uint16_t>(*P);
      }
    }
    return;
  }
  // "jslice_serve: generation G pid P" (exactly this shape — the
  // "(pid P) ready" and "spawning" lines do not match " pid ").
  At = Line.find("generation ");
  if (At == std::string::npos)
    return;
  size_t GenAt = At + std::strlen("generation ");
  size_t PidAt = Line.find(" pid ", GenAt);
  if (PidAt == std::string::npos)
    return;
  std::optional<uint64_t> Gen = parseCount(Line.substr(GenAt, PidAt - GenAt));
  std::optional<uint64_t> Pid =
      parseCount(Line.substr(PidAt + std::strlen(" pid ")));
  if (!Gen || !Pid)
    return;
  std::lock_guard<std::mutex> L(State.M);
  State.LeaderPid = static_cast<long>(*Pid);
  State.LeaderGen = *Gen;
}

/// Tees the leader's stderr to ours while scraping it. Runs until the
/// read end closes (possible only at watchdog exit — the watchdog
/// keeps a write-end copy so successor generations can inherit it).
void scrapeMain(int ReadFd, ScrapedState &State,
                const std::atomic<bool> &Stop) {
  std::string Buf;
  char Chunk[4096];
  while (!Stop.load(std::memory_order_relaxed)) {
    int Ready = pollReadable2(ReadFd, -1, 200);
    if (Ready < 0)
      break;
    if (!(Ready & 1))
      continue;
    int64_t N = readSome(ReadFd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Pos);
      Buf.erase(0, Pos + 1);
      std::fprintf(stderr, "%s\n", Line.c_str());
      scrapeLine(State, Line);
    }
  }
}

/// One health probe: connect, send {"health"}, require a parseable
/// answer whose transport is not wedged. Drain/breaker degradation is
/// *not* a failure — a leader mid-upgrade is draining by design, and
/// killing it then would turn every upgrade into an outage.
bool probeHealthy(const std::string &Host, uint16_t Port) {
  std::string Err;
  int Fd = connectTcp(Host, Port, /*TimeoutMs=*/1000, Err);
  if (Fd < 0)
    return false;
  static const char Probe[] = "{\"health\":true}\n";
  size_t Off = 0;
  while (Off < sizeof(Probe) - 1) {
    int64_t W = sendSome(Fd, Probe + Off, sizeof(Probe) - 1 - Off);
    if (W <= 0) {
      ::close(Fd);
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  std::string Line;
  char C;
  while (Line.size() < 65536) {
    int64_t R = recvSome(Fd, &C, 1);
    if (R <= 0 || C == '\n')
      break;
    Line.push_back(C);
  }
  ::close(Fd);
  std::optional<JsonValue> V = JsonValue::parse(Line, nullptr);
  if (!V || !V->isObject() || !V->find("status"))
    return false;
  const JsonValue *T = V->find("transport");
  if (T && T->find("wedged"))
    return false;
  return true;
}

struct WatchdogOptions {
  uint64_t HealthIntervalMs = 1000;
  unsigned HealthFailures = 3;
  uint64_t GraceMs = 10000;
  unsigned RestartThreshold = 5;
  uint64_t RestartWindowMs = 30000;
  uint64_t RestartCooldownMs = 5000;
  std::string StandbyHost; ///< --standby: promote instead of restart.
  uint16_t StandbyPort = 0;
};

/// Sends {"promote": true} to the standby and waits for the one-line
/// answer. True when the standby acknowledged with "status":"ok".
bool promoteStandby(const std::string &Host, uint16_t Port) {
  std::string Err;
  int Fd = connectTcp(Host, Port, /*TimeoutMs=*/2000, Err);
  if (Fd < 0)
    return false;
  static const char Line[] = "{\"promote\": true}\n";
  size_t Off = 0;
  while (Off < sizeof(Line) - 1) {
    int64_t W = sendSome(Fd, Line + Off, sizeof(Line) - 1 - Off);
    if (W <= 0) {
      ::close(Fd);
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  std::string Resp;
  char C;
  while (Resp.size() < 65536) {
    int64_t R = recvSome(Fd, &C, 1);
    if (R <= 0 || C == '\n')
      break;
    Resp.push_back(C);
  }
  ::close(Fd);
  std::optional<JsonValue> V = JsonValue::parse(Resp, nullptr);
  const JsonValue *S = V ? V->find("status") : nullptr;
  return S && S->isString() && S->asString() == "ok";
}

/// True when \p Pid still exists (EPERM counts as alive).
bool processAlive(long Pid) {
  return Pid > 0 && (::kill(static_cast<pid_t>(Pid), 0) == 0 ||
                     errno == EPERM);
}

/// SIGTERM, bounded wait for death, then SIGKILL. \p DirectChild pids
/// are reaped; reparented successors just disappear.
void stopProcess(long Pid, uint64_t GraceMs, bool DirectChild) {
  if (!processAlive(Pid))
    return;
  ::kill(static_cast<pid_t>(Pid), SIGTERM);
  uint64_t Deadline = steadyMs() + GraceMs;
  while (steadyMs() < Deadline) {
    if (DirectChild) {
      if (::waitpid(static_cast<pid_t>(Pid), nullptr, WNOHANG) ==
          static_cast<pid_t>(Pid))
        return;
    } else if (!processAlive(Pid)) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::kill(static_cast<pid_t>(Pid), SIGKILL);
  if (DirectChild)
    ::waitpid(static_cast<pid_t>(Pid), nullptr, 0);
}

/// The leader tree the watchdog maintains.
struct Leader {
  long DirectChild = -1; ///< Our fork child; -1 after a handoff.
  long Pid = -1;         ///< Current leader (scraped; may differ).
};

/// Spawns a leader with stderr routed into the scraper pipe.
/// Returns the pid, or -1.
long spawnLeader(const std::vector<std::string> &Args, int StderrFd) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    ::dup2(StderrFd, 2);
    std::vector<char *> Argv;
    Argv.reserve(Args.size() + 1);
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execvp(Argv[0], Argv.data());
    _exit(127);
  }
  return static_cast<long>(Pid);
}

#endif // JSLICE_HAVE_POSIX_PROCESS

} // namespace

#ifdef JSLICE_HAVE_POSIX_PROCESS

int main(int argc, char **argv) {
  WatchdogOptions Opts;
  std::vector<std::string> ServeArgs;

  int I = 1;
  for (; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--") {
      ++I;
      break;
    }
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };
    if (Arg == "--standby") {
      std::optional<std::string> Value = NextValue();
      if (!Value ||
          !parseHostPort(*Value, Opts.StandbyHost, Opts.StandbyPort) ||
          !Opts.StandbyPort) {
        std::fprintf(stderr,
                     "error: --standby expects HOST:PORT (port != 0)\n");
        return usage();
      }
    } else if (Arg == "--health-interval-ms" || Arg == "--health-failures" ||
        Arg == "--grace-ms" || Arg == "--restart-threshold" ||
        Arg == "--restart-window-ms" || Arg == "--restart-cooldown-ms") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--health-interval-ms")
        Opts.HealthIntervalMs = *N;
      else if (Arg == "--health-failures")
        Opts.HealthFailures = static_cast<unsigned>(*N);
      else if (Arg == "--grace-ms")
        Opts.GraceMs = *N;
      else if (Arg == "--restart-threshold")
        Opts.RestartThreshold = static_cast<unsigned>(*N);
      else if (Arg == "--restart-window-ms")
        Opts.RestartWindowMs = *N;
      else
        Opts.RestartCooldownMs = *N;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }
  for (; I < argc; ++I)
    ServeArgs.push_back(argv[I]);
  if (ServeArgs.empty()) {
    std::fprintf(stderr, "error: no server command after --\n");
    return usage();
  }

  // The respawn command pins the listen address once the first leader
  // reports its bound port, so a crash-restart keeps the address even
  // when the original spec asked for HOST:0.
  size_t ListenValueIdx = SIZE_MAX;
  std::string Host = "127.0.0.1";
  for (size_t A = 0; A + 1 < ServeArgs.size(); ++A)
    if (ServeArgs[A] == "--listen") {
      ListenValueIdx = A + 1;
      uint16_t IgnoredPort = 0;
      parseHostPort(ServeArgs[A + 1], Host, IgnoredPort);
      break;
    }

  struct sigaction SA = {};
  SA.sa_handler = onWatchdogShutdown;
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  struct sigaction UA = {};
  UA.sa_handler = onWatchdogUpgrade;
  sigemptyset(&UA.sa_mask);
  ::sigaction(SIGUSR2, &UA, nullptr);

  // One pipe for the whole run: every leader (and every successor it
  // execs — inherited fd 2 crosses the exec) writes here, and the
  // scraper keeps reading across restarts.
  int StderrPipe[2];
  if (::pipe(StderrPipe) != 0) {
    std::fprintf(stderr, "jslice_watchdog: cannot create stderr pipe\n");
    return 2;
  }
  ::fcntl(StderrPipe[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(StderrPipe[1], F_SETFD, FD_CLOEXEC); // dup2 to fd 2 un-cloexecs.

  ScrapedState State;
  std::atomic<bool> ScraperStop{false};
  std::thread Scraper(
      [&] { scrapeMain(StderrPipe[0], State, ScraperStop); });

  Leader L;
  std::deque<uint64_t> RestartTimes;

  auto respawn = [&]() -> bool {
    uint64_t Now = steadyMs();
    while (!RestartTimes.empty() &&
           Now - RestartTimes.front() > Opts.RestartWindowMs)
      RestartTimes.pop_front();
    if (RestartTimes.size() >= Opts.RestartThreshold) {
      std::fprintf(stderr,
                   "jslice_watchdog: restart storm: %zu restarts in %llu "
                   "ms; cooling down %llu ms\n",
                   RestartTimes.size(),
                   static_cast<unsigned long long>(Opts.RestartWindowMs),
                   static_cast<unsigned long long>(Opts.RestartCooldownMs));
      uint64_t Until = steadyMs() + Opts.RestartCooldownMs;
      while (steadyMs() < Until &&
             !ShutdownRequested.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (ShutdownRequested.load(std::memory_order_relaxed))
        return false;
      RestartTimes.clear();
    }
    std::vector<std::string> Args = ServeArgs;
    {
      std::lock_guard<std::mutex> Lock(State.M);
      if (ListenValueIdx != SIZE_MAX && State.Port)
        Args[ListenValueIdx] = Host + ":" + std::to_string(State.Port);
    }
    long Pid = spawnLeader(Args, StderrPipe[1]);
    if (Pid < 0) {
      std::fprintf(stderr, "jslice_watchdog: fork failed\n");
      return false;
    }
    RestartTimes.push_back(steadyMs());
    L.DirectChild = Pid;
    L.Pid = Pid;
    std::fprintf(stderr, "jslice_watchdog: started pid %ld\n", Pid);
    return true;
  };

  if (!respawn()) {
    ScraperStop.store(true, std::memory_order_relaxed);
    Scraper.join();
    return 2;
  }

  unsigned ConsecutiveFailures = 0;
  uint64_t NextProbeAt = steadyMs() + Opts.HealthIntervalMs;

  // Failover mode: the leader is not restarted — whatever is left of
  // it is killed (no split-brain window), the standby is promoted, and
  // the watchdog's job is done. The promotion is retried briefly: a
  // standby mid-reconnect still answers {"promote"} on the next try.
  auto failOver = [&](const char *Why) -> int {
    std::fprintf(stderr,
                 "jslice_watchdog: %s; failing over to standby %s:%u\n",
                 Why, Opts.StandbyHost.c_str(), Opts.StandbyPort);
    if (L.Pid > 0)
      stopProcess(L.Pid, Opts.GraceMs, L.Pid == L.DirectChild);
    bool Promoted = false;
    for (int A = 0; A < 10 && !Promoted; ++A) {
      Promoted = promoteStandby(Opts.StandbyHost, Opts.StandbyPort);
      if (!Promoted)
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    ScraperStop.store(true, std::memory_order_relaxed);
    Scraper.join();
    ::close(StderrPipe[0]);
    ::close(StderrPipe[1]);
    if (Promoted) {
      std::fprintf(stderr,
                   "jslice_watchdog: standby %s:%u promoted; failover "
                   "complete\n",
                   Opts.StandbyHost.c_str(), Opts.StandbyPort);
      return 0;
    }
    std::fprintf(stderr,
                 "jslice_watchdog: standby %s:%u could not be promoted; "
                 "service is down\n",
                 Opts.StandbyHost.c_str(), Opts.StandbyPort);
    return 1;
  };

  while (!ShutdownRequested.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // The scraper may have learned of a successor generation: adopt it
    // as the watched leader.
    long ScrapedPid;
    {
      std::lock_guard<std::mutex> Lock(State.M);
      ScrapedPid = State.LeaderPid;
    }
    if (ScrapedPid > 0 && ScrapedPid != L.Pid) {
      std::fprintf(stderr,
                   "jslice_watchdog: now watching leader pid %ld\n",
                   ScrapedPid);
      L.Pid = ScrapedPid;
    }

    if (UpgradeRequested.exchange(false, std::memory_order_relaxed) &&
        L.Pid > 0)
      ::kill(static_cast<pid_t>(L.Pid), SIGUSR2);

    // Direct-child exit: a handoff leaves a live successor behind (not
    // a death); anything else is a crash to respawn from.
    bool LeaderDied = false;
    if (L.DirectChild > 0) {
      int Status = 0;
      if (::waitpid(static_cast<pid_t>(L.DirectChild), &Status, WNOHANG) ==
          static_cast<pid_t>(L.DirectChild)) {
        if (L.Pid != L.DirectChild && processAlive(L.Pid)) {
          std::fprintf(stderr,
                       "jslice_watchdog: pid %ld handed off to pid %ld\n",
                       L.DirectChild, L.Pid);
          L.DirectChild = -1; // Successor is not our child; watch by pid.
        } else {
          std::fprintf(stderr,
                       "jslice_watchdog: leader pid %ld died (%s)\n",
                       L.DirectChild, describeWaitStatus(Status).c_str());
          LeaderDied = true;
        }
      }
    } else if (!processAlive(L.Pid)) {
      std::fprintf(stderr, "jslice_watchdog: leader pid %ld died\n", L.Pid);
      LeaderDied = true;
    }
    if (LeaderDied) {
      if (Opts.StandbyPort)
        return failOver("leader died");
      if (!respawn())
        break;
      ConsecutiveFailures = 0;
      NextProbeAt = steadyMs() + Opts.HealthIntervalMs;
      continue;
    }

    // Liveness probing: a wedged or unreachable leader gets a managed
    // restart after K consecutive failures.
    uint16_t Port;
    {
      std::lock_guard<std::mutex> Lock(State.M);
      Port = State.Port;
    }
    if (Port && steadyMs() >= NextProbeAt) {
      NextProbeAt = steadyMs() + Opts.HealthIntervalMs;
      if (probeHealthy(Host, Port)) {
        ConsecutiveFailures = 0;
      } else if (++ConsecutiveFailures >= Opts.HealthFailures) {
        if (Opts.StandbyPort)
          return failOver("health probe failed repeatedly");
        std::fprintf(stderr,
                     "jslice_watchdog: health probe failed %u times; "
                     "restarting leader pid %ld\n",
                     ConsecutiveFailures, L.Pid);
        stopProcess(L.Pid, Opts.GraceMs, L.Pid == L.DirectChild);
        L.DirectChild = -1;
        L.Pid = -1;
        ConsecutiveFailures = 0;
        if (!respawn())
          break;
        NextProbeAt = steadyMs() + Opts.HealthIntervalMs;
      }
    }
  }

  // Shutdown: drain the leader, then the scraper.
  if (L.Pid > 0) {
    std::fprintf(stderr,
                 "jslice_watchdog: shutting down leader pid %ld\n", L.Pid);
    stopProcess(L.Pid, Opts.GraceMs, L.Pid == L.DirectChild);
  }
  ScraperStop.store(true, std::memory_order_relaxed);
  Scraper.join();
  ::close(StderrPipe[0]);
  ::close(StderrPipe[1]);
  std::fprintf(stderr, "jslice_watchdog: shut down cleanly\n");
  return 0;
}

#else // !JSLICE_HAVE_POSIX_PROCESS

int main() {
  std::fprintf(stderr,
               "jslice_watchdog: process supervision unavailable on this "
               "platform\n");
  return 2;
}

#endif
